//! Vendored, offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: a deterministic, seedable
//! [`rngs::SmallRng`] plus the [`Rng::gen_range`] convenience. The generator
//! is a xoshiro256++ variant seeded through SplitMix64 — statistically solid
//! for simulation purposes and fully reproducible from a `u64` seed.
//!
//! The bit streams do NOT match the real `rand` crate's `SmallRng`; any
//! seed-sensitive expectations in tests are calibrated against this
//! implementation.

/// Low-level random-number source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable random-number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (either `a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a uniform value from an RNG.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// An integer type that can be sampled uniformly. Implemented through a
/// single blanket `SampleRange` impl (rather than one impl per integer
/// type) so that `rng.gen_range(0..n) < some_u32` still infers the
/// literal's type from the surrounding expression, as with real rand.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[start, end)` or `[start, end]`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                // Work in u128 two's complement so signed ranges wrap
                // correctly; the final `as` cast truncates back.
                let lo = start as u128;
                let span = (end as u128)
                    .wrapping_sub(lo)
                    .wrapping_add(u128::from(inclusive));
                assert!(span != 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128) % span;
                lo.wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ variant).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through SplitMix64, as the reference xoshiro
            // implementations recommend, so that nearby seeds diverge.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = SmallRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn seeds_diverge() {
            let mut a = SmallRng::seed_from_u64(1);
            let mut b = SmallRng::seed_from_u64(2);
            assert_ne!(a.next_u64(), b.next_u64());
        }

        #[test]
        fn gen_range_in_bounds() {
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x: u64 = rng.gen_range(10..20);
                assert!((10..20).contains(&x));
                let y: usize = rng.gen_range(0..=5);
                assert!(y <= 5);
                let z: i64 = rng.gen_range(-5..5);
                assert!((-5..5).contains(&z));
            }
        }
    }
}
