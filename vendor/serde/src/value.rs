//! The self-describing value tree shared by `serde` and `serde_json`.

use std::fmt;

/// A serialized value: the stand-in for serde's data model.
///
/// Maps preserve insertion order (struct field order, sorted order for
/// hash maps) so rendered output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered key → value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Looks up a key in a map value; `None` for misses and non-maps.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// One-word description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Shared `Null` for `Index` misses, mirroring `serde_json`'s behavior of
/// indexing absent keys as `null` instead of panicking.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_seq().and_then(|s| s.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::U64(n) => <$t>::try_from(*n).is_ok_and(|n| n == *other),
                    Value::I64(n) => <$t>::try_from(*n).is_ok_and(|n| n == *other),
                    _ => false,
                }
            }
        }
    )*};
}

impl_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Looks up `key` among map `entries` (helper used by derived code).
pub fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X, found Y"-style error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }

    /// Unknown enum variant error (used by derived code).
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}
