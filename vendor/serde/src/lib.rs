//! Vendored, offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the real `serde` cannot be fetched. This crate reproduces the subset of
//! its API the workspace uses: the `Serialize`/`Deserialize` traits and the
//! corresponding derive macros, routed through a self-describing [`Value`]
//! tree (the analogue of `serde`'s data model) that `serde_json` renders to
//! and parses from JSON text.
//!
//! Deliberate simplifications versus real serde:
//! - serialization is infallible and eager (`to_value`), not visitor-based;
//! - map keys must serialize to strings, integers, or booleans;
//! - no `#[serde(...)]` attributes (the workspace uses none);
//! - enums use the externally-tagged representation, like serde's default.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Error, Value};

/// A type that can render itself into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent from the input map. Mirrors
    /// serde's behavior of defaulting missing `Option` fields to `None`
    /// while erroring for any other type.
    fn missing_field(name: &str) -> Result<Self, Error> {
        Err(Error::new(format!("missing field `{name}`")))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 {
                    Value::I64(v as i64)
                } else {
                    Value::U64(v as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range"))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(x) => Value::Map(vec![("Ok".into(), x.to_value())]),
            Err(e) => Value::Map(vec![("Err".into(), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::expected("map", v))?;
        match entries {
            [(k, inner)] if k == "Ok" => T::from_value(inner).map(Ok),
            [(k, inner)] if k == "Err" => E::from_value(inner).map(Err),
            _ => Err(Error::new("expected {\"Ok\": ..} or {\"Err\": ..}")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", v))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::expected("tuple", v))?;
                let mut it = seq.iter();
                let out = ($(
                    {
                        let _ = $n; // positional marker
                        $t::from_value(
                            it.next().ok_or_else(|| Error::new("tuple too short"))?,
                        )?
                    },
                )+);
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

/// Renders a map key. JSON requires string keys, so scalar keys are
/// stringified the way `serde_json` does for integer-keyed maps.
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

/// Reconstructs a key from its string form: integer-looking keys are
/// offered as integers first, falling back to the raw string.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    K::from_value(&Value::Str(s.to_owned()))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::expected("map", v))?;
        entries
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sorted by rendered key so serialized output is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::expected("map", v))?;
        entries
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", v))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", v))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", v))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
