//! Vendored, offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use: `Criterion`,
//! `Bencher::iter`, `black_box`, `criterion_group!`, and `criterion_main!`.
//! Instead of criterion's statistical machinery it takes a simple
//! wall-clock mean over a bounded measurement window, which is enough to
//! compare orders of magnitude and feed the repo's bench reports.
//!
//! Environment knobs:
//! - `WAFFLE_BENCH_MS`: per-benchmark measurement window in milliseconds
//!   (default 300).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to each registered bench function.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Runs `f` under a [`Bencher`] and prints the mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            window: measure_window(),
            mean_ns: None,
        };
        f(&mut b);
        let mean = b.mean_ns.unwrap_or(f64::NAN);
        println!("{name:<50} {:>14} ns/iter", format_ns(mean));
        self.results.push((name.to_owned(), mean));
        self
    }

    /// All `(name, mean ns/iter)` pairs measured so far.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

fn measure_window() -> Duration {
    let ms = std::env::var("WAFFLE_BENCH_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_owned()
    } else if ns >= 1_000_000.0 {
        format!("{:.1}M", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.1}k", ns / 1_000.0)
    } else {
        format!("{ns:.1}")
    }
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    window: Duration,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly for the measurement window and records the
    /// mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to warm caches and reach steady state.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.window && iters >= 10 {
                break;
            }
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

/// Declares a bench group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the `main` function running one or more bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
