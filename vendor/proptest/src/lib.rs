//! Vendored, offline stand-in for the `proptest` crate.
//!
//! Reproduces the subset the workspace's property tests use: the
//! [`Strategy`] trait over integer ranges, tuples, `Just`, `prop_map`,
//! `prop_oneof!`, the `collection::{vec, btree_map}` strategies, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: sampling is purely random (no shrinking
//! on failure), and each test's case stream is seeded deterministically
//! from the test's path, so runs are reproducible. Case count comes from
//! `PROPTEST_CASES` (default 64).

use rand::Rng;

pub mod test_runner {
    //! Deterministic per-test RNG plumbing.

    use rand::{RngCore, SeedableRng};

    /// The RNG handed to strategies while sampling one test case.
    pub struct TestRng(rand::rngs::SmallRng);

    impl TestRng {
        /// Seeds a generator for case number `case` of the named test.
        /// The seed depends only on `(test path, case)`, so failures
        /// reproduce across runs.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(rand::rngs::SmallRng::seed_from_u64(
                h ^ (u64::from(case) << 1),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Object-safe mirror of [`Strategy`] so strategies can be boxed.
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

pub mod strategy {
    //! Combinator strategies referenced by the macros.

    pub use super::{BoxedStrategy, Just, Map, Strategy};
    use super::{Rng, TestRng};

    /// Uniform choice among boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].sample(rng)
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+),)*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
}

pub mod collection {
    //! Collection strategies.

    use super::{Rng, Strategy, TestRng};

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `BTreeMap`s with up to `size` entries (duplicate keys
    /// collapse, as in real proptest's minimum-size-0 maps).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: std::ops::Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    /// The strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: std::ops::Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::Union;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs `PROPTEST_CASES` cases (default 64) with a per-test
/// deterministic RNG. No shrinking is performed on failure.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases: u32 = ::std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            for __case in 0..__cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Builds a [`strategy::Union`] choosing uniformly among the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::Strategy::boxed($arm)),+
        ])
    };
}
