//! Vendored, offline stand-in for `parking_lot`.
//!
//! Wraps the standard-library locks behind `parking_lot`'s API: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered transparently instead of propagating panics
//! as errors. The std locks are heavier than real parking_lot's, but the
//! call sites stay identical if the real crate is ever substituted back.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// The guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// The guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
