//! Vendored, offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available offline, so this crate parses the item's token stream by hand
//! (attributes, visibility, name, generics, fields/variants) and emits the
//! `Serialize`/`Deserialize` impls as formatted source text routed through
//! the vendored `serde` value tree.
//!
//! Supported shapes — everything this workspace derives on:
//! - structs with named fields (including generic parameters with bounds),
//! - tuple structs (newtypes serialize transparently),
//! - unit structs,
//! - enums with unit, tuple, and struct variants (externally tagged).
//!
//! `#[serde(...)]` attributes are NOT supported (the workspace uses none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    /// Generic type parameters: `(name, bounds-text)`.
    generics: Vec<(String, String)>,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum keyword, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    let generics = parse_generics(&tokens, &mut i);
    // Skip a where-clause if present (none in this workspace, but cheap):
    // advance to the body group or the terminating semicolon.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive supports struct/enum only, found `{other}`"),
    };
    Item {
        name,
        generics,
        shape,
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Parses `<...>` after the type name (if any) into `(param, bounds)`
/// pairs. Only type parameters are supported — the workspace's derived
/// types use no lifetimes or const generics.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<(String, String)> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        let t = tokens.get(*i).expect("unbalanced generics").clone();
        *i += 1;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        inner.push(t);
    }
    split_top_level(&inner)
        .into_iter()
        .filter(|param| !param.is_empty())
        .map(|param| {
            let name = match &param[0] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("unsupported generic parameter starting with {other}"),
            };
            // Everything after `name:` is the bound text, kept verbatim.
            let bounds = if param.len() > 2 {
                tokens_to_string(&param[2..])
            } else {
                String::new()
            };
            (name, bounds)
        })
        .collect()
}

/// Splits tokens on commas at angle-bracket depth zero (groups are atomic).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    let mut depth = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(t.clone());
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let ts: TokenStream = tokens.iter().cloned().collect();
    ts.to_string()
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // `:`
        // Consume the type up to the next top-level comma.
        let mut depth = 0usize;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    split_top_level(&tokens).len()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

/// `impl<K: Ord + Tr> Tr for Name<K>` header pieces for a required trait.
fn impl_header(item: &Item, trait_bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let params: Vec<String> = item
        .generics
        .iter()
        .map(|(name, bounds)| {
            if bounds.is_empty() {
                format!("{name}: {trait_bound}")
            } else {
                format!("{name}: {bounds} + {trait_bound}")
            }
        })
        .collect();
    let names: Vec<String> = item.generics.iter().map(|(n, _)| n.clone()).collect();
    (
        format!("<{}>", params.join(", ")),
        format!("<{}>", names.join(", ")),
    )
}

fn gen_serialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::value::Value::Map(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Seq(::std::vec![{}])",
                elems.join(", ")
            )
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::value::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::value::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::value::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::value::Value::Seq(::std::vec![{}]))]),",
                                binders.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binders} }} => \
                                 ::serde::value::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::value::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{ig} ::serde::Serialize for {name}{tg} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

/// Generates the `f: <lookup>` initializer for one named field.
fn named_field_init(f: &str, map_var: &str) -> String {
    format!(
        "{f}: match ::serde::value::get({map_var}, \"{f}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => ::serde::Deserialize::missing_field(\"{f}\")?,\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(f, "__m")).collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::value::Error::expected(\"map\", __v))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::value::Error::expected(\"sequence\", __v))?;\n\
                 if __s.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::value::Error::new(\
                     \"wrong tuple length\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{ig} ::serde::Deserialize for {name}{tg} {{\n\
             fn from_value(__v: &::serde::value::Value) -> \
             ::std::result::Result<Self, ::serde::value::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__val)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let __s = __val.as_seq().ok_or_else(|| \
                             ::serde::value::Error::expected(\"sequence\", __val))?;\n\
                             if __s.len() != {n} {{\n\
                                 return ::std::result::Result::Err(\
                                 ::serde::value::Error::new(\"wrong tuple length\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                         }}",
                        elems.join(", ")
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits: Vec<String> =
                        fields.iter().map(|f| named_field_init(f, "__fm")).collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let __fm = __val.as_map().ok_or_else(|| \
                             ::serde::value::Error::expected(\"map\", __val))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                         }}",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    let str_arm = format!(
        "::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
             {}\n\
             __other => ::std::result::Result::Err(\
             ::serde::value::Error::unknown_variant(__other, \"{name}\")),\n\
         }},",
        unit_arms.join("\n")
    );
    let map_arm = if data_arms.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::value::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __val) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(\
                     ::serde::value::Error::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
             }},",
            data_arms.join("\n")
        )
    };
    format!(
        "match __v {{\n\
             {str_arm}\n\
             {map_arm}\n\
             __other => ::std::result::Result::Err(\
             ::serde::value::Error::expected(\"enum value\", __other)),\n\
         }}"
    )
}
