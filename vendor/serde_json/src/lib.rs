//! Vendored, offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] tree to JSON text and parses JSON
//! text back into it. Covers the subset the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Value`] indexing, and [`Error`].

pub use serde::value::{Error, Value};

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` keeps a trailing `.0` on integral floats, so the value
        // round-trips as a float rather than reparsing as an integer.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a valid &str, so the
                    // continuation bytes are present; re-decode from it.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else {
            Err(Error::new(format!("invalid number `{text}`")))
        }
    }
}
