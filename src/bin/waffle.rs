//! `waffle` — command-line front end for the detection workflow.
//!
//! ```text
//! waffle list                         # applications and test inputs
//! waffle bugs                         # the 18 seeded Table 4 bugs
//! waffle analyze <test> [--stats]     # preparation run + trace analysis only
//! waffle analyze <test> --spill DIR   # same, out-of-core over an on-disk
//!                                     # segment file under a resident budget
//! waffle detect <test> [options]      # run a tool on one test input
//! waffle step <test> --session DIR    # one process-step of the workflow
//! waffle scan <app> [options]         # run a tool on an app's whole suite
//! waffle report <bug-id> [options]    # expose a seeded bug, full report
//! waffle stats <dir> [--json]         # aggregate saved telemetry journals
//! waffle dot <test>                   # render a workload as Graphviz
//! waffle serve --socket S --dir D     # streaming trace ingestion server
//! waffle ingest --socket S --test T   # stream one test's trace to a server
//! waffle campaign init DIR [options]  # lay out a crash-safe campaign grid
//! waffle campaign run DIR [options]   # run/resume it (checkpoint per cell)
//! waffle campaign work DIR [options]  # join as one coordinator-free worker
//! waffle campaign status DIR [--json] # per-cell state, claims, quarantine
//! waffle bench --all [--out DIR]      # refresh the BENCH_*.json reports
//! waffle fuzz [options]               # differential fuzzing vs the oracle
//! waffle fuzz --repair [options]      # + synthesize a certified repair
//!                                     # for every oracle-confirmed bug
//! waffle fix <test> [options]         # oracle-certified fix synthesis
//!                                     # for one test input
//!
//! options:
//!   --tool waffle|basic|noprep|no-parent-child|fixed-delay|no-interference
//!   --max-runs N     detection-run budget (default 10)
//!   --seed N         attempt seed (default 1)
//!   --attempts N     repetition attempts, summarized per §6.1 (default 1)
//!   --jobs N         worker threads for --attempts and scan (default 1)
//!   --session DIR    persist plan/decay/reports to a session directory
//!   --telemetry DIR  write per-attempt telemetry journals (JSON) to DIR
//!   --json           machine-readable output
//! ```
//!
//! Repetition attempts use the fixed seed ladder 1..=N (see
//! `waffle_core::attempt_seed`), so `--jobs` changes wall-clock time only:
//! the summary is identical at any worker count.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use waffle_repro::apps::{all_apps, all_bugs};
use waffle_repro::core::{
    attempt_seed, summarize, Campaign, CampaignConfig, CellSpec, CellStatus, CheckpointState,
    Detector, DetectorConfig, DetectionOutcome, ExperimentEngine, GridCell, RunOptions, Session,
    Tool, WorkOptions,
};
use waffle_repro::sim::{MemoryConfig, MemoryModel, Workload};
use waffle_repro::telemetry::{AttemptJournal, MetricsRegistry};

struct Options {
    tool: Tool,
    tool_name: String,
    max_runs: u32,
    seed: u64,
    attempts: u32,
    jobs: usize,
    session: Option<String>,
    telemetry: Option<PathBuf>,
    json: bool,
    memory: MemoryModel,
}

fn parse_memory_model(v: &str) -> Result<MemoryModel, String> {
    MemoryModel::parse(v).ok_or_else(|| format!("--memory-model: unknown model {v} (sc|tso|pso)"))
}

fn parse_tool(name: &str) -> Option<Tool> {
    Tool::by_name(name)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        tool: Tool::waffle(),
        tool_name: "waffle".into(),
        max_runs: 10,
        seed: 1,
        attempts: 1,
        jobs: 1,
        session: None,
        telemetry: None,
        json: false,
        memory: MemoryModel::Sc,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tool" => {
                let v = it.next().ok_or("--tool needs a value")?;
                opts.tool = parse_tool(v).ok_or_else(|| format!("unknown tool {v}"))?;
                opts.tool_name = v.clone();
            }
            "--max-runs" => {
                opts.max_runs = it
                    .next()
                    .ok_or("--max-runs needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-runs: {e}"))?;
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--attempts" => {
                opts.attempts = it
                    .next()
                    .ok_or("--attempts needs a value")?
                    .parse()
                    .map_err(|e| format!("--attempts: {e}"))?;
                if opts.attempts == 0 {
                    return Err("--attempts must be at least 1".into());
                }
            }
            "--jobs" => {
                opts.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--session" => {
                opts.session = Some(it.next().ok_or("--session needs a value")?.clone());
            }
            "--telemetry" => {
                opts.telemetry =
                    Some(PathBuf::from(it.next().ok_or("--telemetry needs a value")?));
            }
            "--memory-model" => {
                opts.memory = parse_memory_model(it.next().ok_or("--memory-model needs a value")?)?;
            }
            "--json" => opts.json = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn find_test(name: &str) -> Option<Workload> {
    all_apps()
        .into_iter()
        .flat_map(|a| a.tests)
        .find(|t| t.workload.name == name)
        .map(|t| t.workload)
        .or_else(|| waffle_repro::apps::weak_scenario(name).map(|s| s.workload))
}

fn detector(opts: &Options) -> Detector {
    Detector::with_config(
        opts.tool.clone(),
        DetectorConfig {
            max_detection_runs: opts.max_runs,
            // Per-decision event logs are worth recording only when the
            // journals are actually being written out.
            telemetry_events: opts.telemetry.is_some(),
            memory: MemoryConfig::from_model(opts.memory),
            ..DetectorConfig::default()
        },
    )
}

/// Writes one attempt's telemetry journal into `dir` as
/// `<workload>-<tool>-attempt-<seed>.json`; returns the file path.
fn write_attempt_journal(
    dir: &Path,
    w: &Workload,
    opts: &Options,
    seed: u64,
    outcome: &DetectionOutcome,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let journal = AttemptJournal {
        workload: w.name.clone(),
        tool: opts.tool_name.clone(),
        attempt_seed: seed,
        runs: outcome.telemetry.clone(),
    };
    let path = dir.join(format!("{}-{}-attempt-{seed}.json", w.name, opts.tool_name));
    std::fs::write(&path, journal.to_json().map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    Ok(path)
}

/// `detect` with `--attempts N > 1`: the §6.1 repetition methodology,
/// fanned over `--jobs` workers.
fn detect_experiment(w: &Workload, opts: &Options) -> Result<bool, String> {
    let det = detector(opts);
    let outcomes = ExperimentEngine::new(opts.jobs).run_attempts(&det, w, opts.attempts);
    let summary = summarize(&det, w, &outcomes);
    if let Some(dir) = &opts.telemetry {
        // One journal file per attempt, keyed by its fixed seed, so the
        // set of files is identical at any --jobs.
        for (i, outcome) in outcomes.iter().enumerate() {
            write_attempt_journal(dir, w, opts, attempt_seed(i as u32), outcome)?;
        }
        if !opts.json {
            println!(
                "{} telemetry journal(s) written to {}",
                outcomes.len(),
                dir.display()
            );
        }
    }
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{} [{}]: {}/{} attempts exposed the bug",
            w.name, opts.tool_name, summary.exposed_attempts, summary.attempts
        );
        match summary.reported_runs() {
            Some(runs) => println!(
                "typical exposure in {runs} runs, median slowdown {:.1}x",
                summary.median_slowdown.unwrap_or(1.0)
            ),
            None => println!("no attempt exposed a bug"),
        }
        if summary.tsv_attempts > 0 {
            println!(
                "{} attempts exposed a thread-safety violation",
                summary.tsv_attempts
            );
        }
    }
    Ok(summary.exposed_attempts > 0 || summary.tsv_attempts > 0)
}

fn detect_one(w: &Workload, opts: &Options) -> Result<bool, String> {
    if opts.attempts > 1 {
        return detect_experiment(w, opts);
    }
    let det = detector(opts);
    let outcome = det.detect(w, opts.seed);
    let session = opts
        .session
        .as_ref()
        .map(|d| Session::open(d).map_err(|e| e.to_string()))
        .transpose()?;
    if let Some(dir) = &opts.telemetry {
        let path = write_attempt_journal(dir, w, opts, opts.seed, &outcome)?;
        if !opts.json {
            println!("telemetry journal written to {}", path.display());
        }
    }
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{} [{}]: base {}, {} runs",
            w.name,
            opts.tool_name,
            outcome.base_time,
            outcome.total_runs()
        );
        match (&outcome.exposed, &outcome.tsv_exposed) {
            (Some(r), _) => {
                print!("{}", r.render(&w.sites));
                println!("slowdown {:.1}x vs uninstrumented", outcome.slowdown());
            }
            (None, Some(v)) => println!(
                "thread-safety violation: {} overlaps {} on {} (run {})",
                v.first_site, v.second_site, v.obj, v.exposed_in_run
            ),
            (None, None) => println!(
                "no bug exposed ({} delays injected across the detection runs)",
                outcome.total_delays()
            ),
        }
    }
    if let (Some(session), Some(report)) = (&session, &outcome.exposed) {
        let path = session
            .save_report(report, &report.render(&w.sites))
            .map_err(|e| e.to_string())?;
        if !opts.json {
            println!("report written to {}", path.display());
        }
    }
    Ok(outcome.exposed.is_some() || outcome.tsv_exposed.is_some())
}

/// `waffle analyze` — run the delay-free preparation run, build the
/// columnar trace index once, and run the fused analysis pipeline over it;
/// `--stats` adds index/scan timings, size statistics and the telemetry
/// counters they feed. With `--spill DIR` the index is written to an
/// on-disk segment file and analyzed out-of-core under a resident-bytes
/// budget (`--budget-mb`, default 64) — the plans are byte-identical to
/// the in-memory path at every budget.
struct AnalyzeOptions {
    jobs: usize,
    seed: u64,
    stats: bool,
    json: bool,
    plan_only: bool,
    spill: Option<PathBuf>,
    budget_mb: Option<u64>,
    memory: MemoryModel,
}

fn analyze_cmd(w: &Workload, opts: &AnalyzeOptions) -> Result<(), String> {
    let AnalyzeOptions {
        jobs,
        seed,
        stats,
        json,
        plan_only,
        ref spill,
        budget_mb,
        memory,
    } = *opts;
    let spill = spill.as_deref();
    use std::time::Instant;
    use waffle_repro::analysis::{
        analyze_indexed, analyze_segments, analyze_tsv_indexed, analyze_tsv_segments, ooc_stats,
        AnalyzerConfig, DEFAULT_RESIDENT_BYTES,
    };
    use waffle_repro::sim::{time::ms, SimConfig, Simulator};
    use waffle_repro::trace::{SegmentReader, TraceIndex, TraceRecorder};

    let mut rec = TraceRecorder::new(w);
    let sim_cfg = SimConfig::with_seed(seed).with_memory(MemoryConfig::from_model(memory));
    let _ = Simulator::run(w, sim_cfg, &mut rec);
    let trace = rec.into_trace();

    let t0 = Instant::now();
    let index = TraceIndex::build(&trace);
    let build_us = (t0.elapsed().as_micros() as u64).max(1);
    let istats = index.stats();

    let config = AnalyzerConfig::default().with_memory(memory);
    let t1 = Instant::now();
    let mut spill_note = None;
    let (plan, tsv) = match spill {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = dir.join(format!("{}.seg", w.name));
            let wstats = index.write_segments(&path).map_err(|e| e.to_string())?;
            let budget = match budget_mb {
                None => DEFAULT_RESIDENT_BYTES,
                // `m << 20` would silently wrap for m > 2^44 and turn a
                // typo into a near-zero budget; reject instead.
                Some(m) => m.checked_mul(1 << 20).ok_or_else(|| {
                    format!("--budget-mb {m} overflows (max {})", u64::MAX >> 20)
                })?,
            };
            let mut reader = SegmentReader::open(&path).map_err(|e| e.to_string())?;
            let ostats = ooc_stats(&reader, budget);
            let plan =
                analyze_segments(&mut reader, &config, jobs, budget).map_err(|e| e.to_string())?;
            let tsv = analyze_tsv_segments(&mut reader, config.delta, ms(1), jobs, budget)
                .map_err(|e| e.to_string())?;
            spill_note = Some((path, wstats, ostats, budget));
            (plan, tsv)
        }
        None => (
            analyze_indexed(&index, &config, jobs),
            analyze_tsv_indexed(&index, config.delta, ms(1), jobs),
        ),
    };
    let scan_us = (t1.elapsed().as_micros() as u64).max(1);

    let mut registry = MetricsRegistry::new();
    registry.observe_us("analysis/index_build", build_us);
    registry.observe_us("analysis/scan", scan_us);

    if plan_only {
        // Exactly the serve-session report shape, for byte-diffing a
        // streamed session's report against the batch path in CI.
        println!(
            "{}",
            waffle_repro::core::session_report_json(&plan, &tsv).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if json {
        // Composite object: the deterministic plans plus the index shape.
        // Timings are intentionally excluded — they vary run to run.
        println!(
            "{{\n\"index\": {},\n\"plan\": {},\n\"tsv\": {}\n}}",
            serde_json::to_string(&istats).map_err(|e| e.to_string())?,
            plan.to_json().map_err(|e| e.to_string())?,
            tsv.to_json().map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "{}: {} events indexed ({} MemOrder over {} objects, {} TSV over {})",
        w.name, istats.events, istats.mem_events, istats.mem_objects, istats.tsv_events,
        istats.tsv_objects
    );
    println!(
        "plan: {} candidate pair(s), {} delay site(s), {} interference pair(s), {} TSV candidate(s)",
        plan.candidates.len(),
        plan.delay_len.len(),
        plan.interference.len(),
        tsv.candidates.len()
    );
    for c in &plan.candidates {
        println!(
            "  {} {} -> {} on {} (gap {}, {} obs) delay {}",
            c.kind.label(),
            w.sites.name(c.delay_site),
            w.sites.name(c.other_site),
            c.obj,
            c.max_gap,
            c.observations,
            plan.delay_for(c.delay_site)
        );
    }
    if let Some((path, wstats, ostats, budget)) = &spill_note {
        println!(
            "spill: {} ({} segment(s), {} bytes)",
            path.display(),
            wstats.segments,
            wstats.file_bytes
        );
        println!(
            "out-of-core scan: budget {} MiB -> {} batch(es), max {} resident bytes",
            budget >> 20,
            ostats.batches,
            ostats.max_batch_bytes
        );
    }
    if stats {
        let dedup = istats.events.max(1) as f64 / istats.distinct_clocks.max(1) as f64;
        println!("\nindex: {} distinct clock snapshot(s), {dedup:.1} events/snapshot", istats.distinct_clocks);
        println!(
            "index build: {build_us} µs ({:.0} events/sec)",
            istats.events as f64 / (build_us as f64 / 1e6)
        );
        println!(
            "scan (--jobs {jobs}): {scan_us} µs, {} window pair(s) swept ({:.0} pairs/sec), {} examined, {} pruned",
            plan.stats.window_pairs,
            plan.stats.window_pairs as f64 / (scan_us as f64 / 1e6),
            plan.stats.examined,
            plan.stats.pruned_ordered
        );
        println!("\ntelemetry counters:");
        for (name, value) in registry.counters() {
            println!("  {name:<40} {value}");
        }
    }
    Ok(())
}

/// `waffle campaign <init|run|status>` — the crash-safe, resumable
/// campaign workflow. A campaign directory holds a fingerprinted manifest
/// plus one atomically-written checkpoint per finished cell; `run
/// --resume` skips checkpointed cells and the final report is
/// byte-identical to an uninterrupted run at any `--jobs`.
fn campaign_cmd(args: &[String]) -> Result<(), String> {
    let sub = args
        .first()
        .ok_or("campaign: missing subcommand (init|run|work|status)")?;
    let dir = args.get(1).ok_or("campaign: missing campaign directory")?;
    let rest = &args[2..];
    match sub.as_str() {
        "init" => {
            let mut tests: Vec<String> = Vec::new();
            let mut app: Option<String> = None;
            let mut tools: Vec<String> = vec!["waffle".into()];
            let mut attempts: u32 = 5;
            let mut config = CampaignConfig::default();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--tests" => {
                        tests = it
                            .next()
                            .ok_or("--tests needs a comma-separated list")?
                            .split(',')
                            .map(str::to_owned)
                            .collect();
                    }
                    "--app" => app = Some(it.next().ok_or("--app needs a value")?.clone()),
                    "--tools" => {
                        tools = it
                            .next()
                            .ok_or("--tools needs a comma-separated list")?
                            .split(',')
                            .map(str::to_owned)
                            .collect();
                    }
                    "--attempts" => {
                        attempts = it
                            .next()
                            .ok_or("--attempts needs a value")?
                            .parse()
                            .map_err(|e| format!("--attempts: {e}"))?;
                    }
                    "--max-runs" => {
                        config.max_detection_runs = it
                            .next()
                            .ok_or("--max-runs needs a value")?
                            .parse()
                            .map_err(|e| format!("--max-runs: {e}"))?;
                    }
                    "--retries" => {
                        config.max_retries = it
                            .next()
                            .ok_or("--retries needs a value")?
                            .parse()
                            .map_err(|e| format!("--retries: {e}"))?;
                    }
                    other => return Err(format!("campaign init: unknown option {other}")),
                }
            }
            if let Some(app) = app {
                let app = all_apps()
                    .into_iter()
                    .find(|a| a.name == app)
                    .ok_or_else(|| format!("unknown app {app}"))?;
                tests.extend(app.tests.iter().map(|t| t.workload.name.clone()));
            }
            if tests.is_empty() {
                return Err("campaign init: pass --tests a,b,c and/or --app NAME".into());
            }
            for t in &tests {
                if find_test(t).is_none() {
                    return Err(format!("unknown test {t}"));
                }
            }
            let cells: Vec<CellSpec> = tests
                .iter()
                .flat_map(|w| tools.iter().map(|t| CellSpec::new(w.clone(), t.clone(), attempts)))
                .collect();
            let campaign = Campaign::create(dir, config, cells).map_err(|e| e.to_string())?;
            println!(
                "campaign initialized: {} cells ({} inputs × {} tools, {} attempts each)",
                campaign.manifest().cells.len(),
                tests.len(),
                tools.len(),
                attempts
            );
            println!("manifest fingerprint {:016x}", campaign.manifest().fingerprint);
            println!("run it with: waffle campaign run {dir}");
            Ok(())
        }
        "run" => {
            let mut opts = RunOptions {
                jobs: 1,
                resume: false,
                max_cells: None,
            };
            let mut fresh = false;
            let mut json = false;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--jobs" => {
                        opts.jobs = it
                            .next()
                            .ok_or("--jobs needs a value")?
                            .parse()
                            .map_err(|e| format!("--jobs: {e}"))?;
                        if opts.jobs == 0 {
                            return Err("--jobs must be at least 1".into());
                        }
                    }
                    "--resume" => opts.resume = true,
                    "--fresh" => fresh = true,
                    "--max-cells" => {
                        opts.max_cells = Some(
                            it.next()
                                .ok_or("--max-cells needs a value")?
                                .parse()
                                .map_err(|e| format!("--max-cells: {e}"))?,
                        );
                    }
                    "--json" => json = true,
                    other => return Err(format!("campaign run: unknown option {other}")),
                }
            }
            if opts.resume && fresh {
                return Err("campaign run: --resume and --fresh are mutually exclusive".into());
            }
            let campaign = Campaign::open(dir).map_err(|e| e.to_string())?;
            let done = campaign.manifest().cells.len() - campaign.outstanding().len();
            if done > 0 && !opts.resume && !fresh {
                return Err(format!(
                    "campaign run: {done} checkpointed cell(s) exist; pass --resume to \
                     continue where the last run stopped or --fresh to discard them"
                ));
            }
            let progress = campaign
                .run(&opts, find_test)
                .map_err(|e| e.to_string())?;
            if !json {
                if progress.skipped > 0 {
                    println!(
                        "resume: skipped {} checkpointed cell(s)",
                        progress.skipped
                    );
                }
                for (i, status) in &progress.ran {
                    let spec = &campaign.manifest().cells[*i];
                    println!(
                        "cell [{i:04}] {} / {} -> {}",
                        spec.workload,
                        spec.tool,
                        match status {
                            CellStatus::Completed => "completed",
                            CellStatus::TimedOut => "completed (TimeOut)",
                            CellStatus::Failed => "FAILED (quarantined)",
                        }
                    );
                }
            }
            match progress.report {
                Some(report) => {
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
                        );
                    } else {
                        print!("{}", report.render());
                        println!("report written to {}/report.json", dir);
                    }
                }
                None => {
                    if json {
                        println!(
                            "{{\"outstanding\": {}, \"ran\": {}}}",
                            progress.outstanding,
                            progress.ran.len()
                        );
                    } else {
                        println!(
                            "{} cell(s) still outstanding; continue with: waffle campaign run {dir} --resume",
                            progress.outstanding
                        );
                    }
                }
            }
            Ok(())
        }
        "work" => {
            let mut opts = WorkOptions::default();
            let mut json = false;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--worker" => {
                        opts.worker = it.next().ok_or("--worker needs a name")?.clone();
                    }
                    "--lease-secs" => {
                        opts.lease_secs = it
                            .next()
                            .ok_or("--lease-secs needs a value")?
                            .parse()
                            .map_err(|e| format!("--lease-secs: {e}"))?;
                    }
                    "--max-cells" => {
                        opts.max_cells = Some(
                            it.next()
                                .ok_or("--max-cells needs a value")?
                                .parse()
                                .map_err(|e| format!("--max-cells: {e}"))?,
                        );
                    }
                    "--poll-ms" => {
                        opts.poll_ms = it
                            .next()
                            .ok_or("--poll-ms needs a value")?
                            .parse()
                            .map_err(|e| format!("--poll-ms: {e}"))?;
                    }
                    "--no-wait" => opts.wait = false,
                    "--json" => json = true,
                    other => return Err(format!("campaign work: unknown option {other}")),
                }
            }
            let campaign = Campaign::open(dir).map_err(|e| e.to_string())?;
            let progress = campaign.work(&opts, find_test).map_err(|e| e.to_string())?;
            if !json {
                for (i, status) in &progress.ran {
                    let spec = &campaign.manifest().cells[*i];
                    println!(
                        "cell [{i:04}] {} / {} -> {}",
                        spec.workload,
                        spec.tool,
                        match status {
                            CellStatus::Completed => "completed",
                            CellStatus::TimedOut => "completed (TimeOut)",
                            CellStatus::Failed => "FAILED (quarantined)",
                        }
                    );
                }
                if progress.recovered > 0 {
                    println!("recovered {} stale claim(s)", progress.recovered);
                }
            }
            match progress.report {
                Some(report) => {
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
                        );
                    } else {
                        print!("{}", report.render());
                        println!("report written to {dir}/report.json");
                    }
                }
                None => {
                    if json {
                        println!(
                            "{{\"ran\": {}, \"recovered\": {}, \"outstanding\": {}}}",
                            progress.ran.len(),
                            progress.recovered,
                            progress.outstanding
                        );
                    } else {
                        println!(
                            "{} cell(s) still outstanding (held by other workers or --no-wait/--max-cells)",
                            progress.outstanding
                        );
                    }
                }
            }
            Ok(())
        }
        "status" => {
            let json = rest.iter().any(|a| a == "--json");
            let campaign = Campaign::open(dir).map_err(|e| e.to_string())?;
            let status = campaign.status().map_err(|e| e.to_string())?;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&status).map_err(|e| e.to_string())?
                );
                return Ok(());
            }
            let mut registry = MetricsRegistry::new();
            for (i, spec) in campaign.manifest().cells.iter().enumerate() {
                let ckpt = campaign.checkpoint_state(i);
                if let CheckpointState::Ready(c) = &ckpt {
                    if let Some(s) = &c.summary {
                        registry.absorb_summary(&spec.workload, &spec.tool, &s.telemetry);
                    }
                }
                let line = &status.cells[i];
                let state = match line.state.as_str() {
                    "completed" => "completed".to_owned(),
                    "timed_out" => "completed (TimeOut)".to_owned(),
                    "failed" => format!(
                        "FAILED (quarantined): {}",
                        line.last_failure.as_deref().unwrap_or("no panic recorded")
                    ),
                    "claimed" => {
                        let c = line.claim.as_ref().expect("claimed cells carry a claim");
                        format!("claimed by {} (pid {}, {}s ago)", c.worker, c.pid, c.age_secs)
                    }
                    _ if matches!(ckpt, CheckpointState::Invalid) => {
                        "invalid checkpoint (will re-run)".to_owned()
                    }
                    _ => "outstanding".to_owned(),
                };
                println!(
                    "[{i:04}] {} / {} ({} attempts): {state}",
                    spec.workload, spec.tool, spec.attempts
                );
            }
            println!(
                "{}/{} cells checkpointed ({} completed, {} timed out, {} quarantined); \
                 {} live claim(s){}",
                status.done,
                status.total,
                status.completed,
                status.timed_out,
                status.quarantined.len(),
                status.claims.len(),
                if status.report_written {
                    "; report.json written"
                } else {
                    ""
                }
            );
            println!(
                "telemetry so far: {} runs, {} delays injected",
                registry.counter("total/runs"),
                registry.counter("total/injected"),
            );
            Ok(())
        }
        other => Err(format!("campaign: unknown subcommand {other}")),
    }
}

/// `waffle fuzz` — run a block of generated workloads through the bounded
/// schedule oracle and all detector configurations, failing (non-zero
/// exit) on any ground-truth disagreement. With `--corpus DIR`, each
/// disagreeing workload is delta-debugged to a minimal op sequence and
/// persisted as a replayable corpus case.
fn fuzz_cmd(args: &[String]) -> Result<(), String> {
    use waffle_repro::fuzz::{classify_case, run_fuzz, shrink_case, CorpusCase, FuzzCase, FuzzConfig};

    let mut cfg = FuzzConfig::default();
    let mut corpus: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                cfg.seeds = it
                    .next()
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--seed-base" => {
                cfg.seed_base = it
                    .next()
                    .ok_or("--seed-base needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed-base: {e}"))?;
            }
            "--jobs" => {
                cfg.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if cfg.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--preemption-bound" => {
                cfg.preemption_bound = it
                    .next()
                    .ok_or("--preemption-bound needs a value")?
                    .parse()
                    .map_err(|e| format!("--preemption-bound: {e}"))?;
                if cfg.preemption_bound == 0 {
                    return Err(
                        "--preemption-bound must be at least 1: at bound 0 no access can be \
                         reordered, so every planted bug is vacuously unexposable"
                            .into(),
                    );
                }
            }
            "--max-runs" => {
                cfg.max_detection_runs = it
                    .next()
                    .ok_or("--max-runs needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-runs: {e}"))?;
            }
            "--corpus" => {
                corpus = Some(PathBuf::from(it.next().ok_or("--corpus needs a value")?));
            }
            "--memory-model" => {
                cfg.memory = parse_memory_model(it.next().ok_or("--memory-model needs a value")?)?;
            }
            "--no-reduction" => cfg.reduction = false,
            "--repair" => cfg.repair = true,
            "--json" => json = true,
            other => return Err(format!("fuzz: unknown option {other}")),
        }
    }

    let report = run_fuzz(&cfg);

    if let Some(dir) = &corpus {
        if !report.disagreements.is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        // One minimized corpus case per disagreeing seed. Shrink while the
        // same disagreement kind reproduces under the sweep config AND the
        // case stays clean under the replay config (defaults at the same
        // bound) — without the second conjunct the shrinker can collapse a
        // run-budget miss into a degenerate workload that errors in the
        // preparation run itself and fails replay at any budget.
        let replay_cfg = FuzzConfig {
            preemption_bound: cfg.preemption_bound,
            memory: cfg.memory,
            ..FuzzConfig::default()
        };
        let mut seeds_done: Vec<u64> = Vec::new();
        for d in &report.disagreements {
            if seeds_done.contains(&d.seed) {
                continue;
            }
            seeds_done.push(d.seed);
            let case = waffle_repro::fuzz::generate_case_for_model(d.seed, cfg.memory);
            let kind = d.kind;
            let still_fails = |c: &FuzzCase| {
                classify_case(c, &cfg)
                    .disagreements
                    .iter()
                    .any(|x| x.kind == kind)
                    && classify_case(c, &replay_cfg).disagreements.is_empty()
            };
            let minimized = shrink_case(&case, &still_fails);
            let entry = CorpusCase {
                label: format!("seed {} [{}]: {}", d.seed, d.kind.label(), d.detail),
                preemption_bound: cfg.preemption_bound,
                memory: cfg.memory,
                case: minimized,
            };
            let path = dir.join(format!("s{}-{}.json", d.seed, d.kind.label()));
            std::fs::write(&path, entry.to_json().map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            if !json {
                println!("minimized corpus case written to {}", path.display());
            }
        }
    }

    if json {
        println!("{}", report.to_json().map_err(|e| e.to_string())?);
    } else {
        print!("{}", report.render());
    }
    if report.disagreements.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "fuzz: {} oracle/detector disagreement(s)",
            report.disagreements.len()
        ))
    }
}

/// `waffle fix <test>` — oracle-certified fix synthesis for one test
/// input: confirm the bug with the bounded schedule oracle, enumerate
/// candidate patches (fence, event edge, lock scope) from the analysis
/// plan, and report the cheapest patch the oracle certifies unexposable
/// at the same preemption bound under the same memory model. A test with
/// no exposable bug within the bound needs no repair; a confirmed bug
/// whose fix lies outside the grammar is reported unrepairable rather
/// than patched with an uncertified guess.
fn fix_cmd(args: &[String]) -> Result<(), String> {
    use waffle_repro::fuzz::{
        derive_plan, explore, synthesize_with_oracle, OracleConfig, OracleVerdict,
    };

    let mut name: Option<String> = None;
    let mut cfg = OracleConfig::default();
    let mut seed: u64 = 1;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--memory-model" => {
                cfg.memory = parse_memory_model(it.next().ok_or("--memory-model needs a value")?)?;
            }
            "--preemption-bound" => {
                cfg.preemption_bound = it
                    .next()
                    .ok_or("--preemption-bound needs a value")?
                    .parse()
                    .map_err(|e| format!("--preemption-bound: {e}"))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--json" => json = true,
            other if name.is_none() && !other.starts_with("--") => {
                name = Some(other.to_owned());
            }
            other => return Err(format!("fix: unknown option {other}")),
        }
    }
    let name = name.ok_or("fix: missing test name")?;
    let w = find_test(&name).ok_or_else(|| format!("unknown test {name}"))?;

    let oracle = explore(&w, &cfg);
    let (kind, obj) = match oracle.verdict {
        OracleVerdict::Exposable { kind, obj, .. } => (kind, obj),
        OracleVerdict::CleanWithinBound => {
            if json {
                println!("{{\"workload\": {:?}, \"exposable\": false}}", w.name);
            } else {
                println!(
                    "{}: no exposable bug within preemption bound {} under {}; nothing to repair",
                    w.name, cfg.preemption_bound, cfg.memory
                );
            }
            return Ok(());
        }
        OracleVerdict::Truncated => {
            return Err(format!(
                "fix: oracle exploration truncated at {} states; raise the state budget \
                 before trusting any certificate",
                oracle.states_explored
            ));
        }
    };
    let plan = derive_plan(&w, seed, cfg.memory);
    let report = synthesize_with_oracle(&w, &plan, kind, obj, &cfg);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", report.render());
    }
    if report.certified() {
        Ok(())
    } else {
        Err(format!(
            "fix: no certified repair within the candidate grammar ({} candidate(s) tried)",
            report.candidates_tried
        ))
    }
}

/// `waffle bench --all [--out DIR]` — refresh the committed throughput
/// reports by shelling out to the three `waffle-bench` rate harnesses
/// (`engine_rate`, `analysis_rate`, `scale`), steering each one's output
/// into `DIR` (default: the current directory) via its `WAFFLE_BENCH_*`
/// environment variable. The scale harness defaults to a 10M-event trace;
/// set `WAFFLE_SCALE_EVENTS` to shrink it for smoke runs.
fn bench_cmd(args: &[String]) -> Result<(), String> {
    let mut all = false;
    let mut out = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a directory")?),
            other => return Err(format!("bench: unknown option {other}")),
        }
    }
    if !all {
        return Err(
            "bench: pass --all to refresh BENCH_core.json, BENCH_analysis.json and \
             BENCH_scale.json (optionally --out DIR)"
                .into(),
        );
    }
    std::fs::create_dir_all(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    let targets = [
        ("engine_rate", "WAFFLE_BENCH_OUT", "BENCH_core.json"),
        ("analysis_rate", "WAFFLE_BENCH_ANALYSIS_OUT", "BENCH_analysis.json"),
        ("scale", "WAFFLE_BENCH_SCALE_OUT", "BENCH_scale.json"),
        ("serve", "WAFFLE_BENCH_SERVE_OUT", "BENCH_serve.json"),
        ("oracle", "WAFFLE_BENCH_ORACLE_OUT", "BENCH_oracle.json"),
    ];
    for (bench, env, file) in targets {
        let path = out.join(file);
        println!("bench {bench} -> {}", path.display());
        let status = std::process::Command::new("cargo")
            .args(["bench", "-p", "waffle-bench", "--bench", bench])
            .env(env, &path)
            .status()
            .map_err(|e| format!("cargo bench --bench {bench}: {e}"))?;
        if !status.success() {
            return Err(format!("bench {bench} failed ({status})"));
        }
    }
    Ok(())
}

/// `waffle serve --socket PATH --dir DIR` — the streaming ingestion
/// server: accepts concurrent client sessions over a Unix socket, builds
/// each session's columnar index incrementally (sealing generation
/// segment files every `--seal-events`), folds sealed generations into a
/// running analysis, and answers each session's Finish with the same
/// report a one-shot `waffle analyze --plan-only` would print for the
/// concatenated trace. Bounded per-session queues (`--queue-events`)
/// provide backpressure: `--policy block` (default) throttles the client
/// through socket flow control, `--policy shed` drops event batches under
/// overload and counts them.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    use waffle_repro::core::{serve, QueuePolicy, ServeOptions};
    let mut socket: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    let mut seal_events: Option<usize> = None;
    let mut queue_events: Option<usize> = None;
    let mut policy = QueuePolicy::Block;
    let mut jobs = 1usize;
    let mut max_sessions: Option<usize> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(PathBuf::from(it.next().ok_or("--socket needs a path")?)),
            "--dir" => dir = Some(PathBuf::from(it.next().ok_or("--dir needs a directory")?)),
            "--seal-events" => {
                let n: usize = it
                    .next()
                    .ok_or("--seal-events needs a value")?
                    .parse()
                    .map_err(|e| format!("--seal-events: {e}"))?;
                if n == 0 {
                    return Err("--seal-events must be at least 1".into());
                }
                seal_events = Some(n);
            }
            "--queue-events" => {
                let n: usize = it
                    .next()
                    .ok_or("--queue-events needs a value")?
                    .parse()
                    .map_err(|e| format!("--queue-events: {e}"))?;
                if n == 0 {
                    return Err("--queue-events must be at least 1".into());
                }
                queue_events = Some(n);
            }
            "--policy" => {
                policy = match it.next().ok_or("--policy needs block|shed")?.as_str() {
                    "block" => QueuePolicy::Block,
                    "shed" => QueuePolicy::Shed,
                    other => return Err(format!("--policy: unknown policy {other}")),
                };
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--max-sessions" => {
                max_sessions = Some(
                    it.next()
                        .ok_or("--max-sessions needs a value")?
                        .parse()
                        .map_err(|e| format!("--max-sessions: {e}"))?,
                );
            }
            "--json" => json = true,
            other => return Err(format!("serve: unknown option {other}")),
        }
    }
    let socket = socket.ok_or("serve: --socket PATH is required")?;
    let dir = dir.ok_or("serve: --dir DIR is required")?;
    let mut opts = ServeOptions::new(socket, dir);
    if let Some(n) = seal_events {
        opts.seal_events = n;
    }
    if let Some(n) = queue_events {
        opts.queue_events = n;
    }
    opts.policy = policy;
    opts.jobs = jobs;
    opts.max_sessions = max_sessions;
    if !json {
        println!(
            "serve: listening on {} (reports under {})",
            opts.socket.display(),
            opts.dir.display()
        );
    }
    let report = serve(&opts).map_err(|e| e.to_string())?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.metrics).map_err(|e| e.to_string())?
        );
    } else {
        println!("serve: {} session(s) handled", report.sessions);
        for (name, value) in report.metrics.counters() {
            println!("  {name:<32} {value}");
        }
    }
    Ok(())
}

/// `waffle ingest --socket PATH --test NAME` — the reference client:
/// records the test's preparation-run trace, streams it to a running
/// `waffle serve` as one session (Events frames of `--batch` events), and
/// prints the server's report JSON.
fn ingest_cmd(args: &[String]) -> Result<(), String> {
    use waffle_repro::core::replay_trace;
    use waffle_repro::sim::{SimConfig, Simulator};
    use waffle_repro::trace::TraceRecorder;
    let mut socket: Option<PathBuf> = None;
    let mut test: Option<String> = None;
    let mut batch = 4096usize;
    let mut seed = 1u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(PathBuf::from(it.next().ok_or("--socket needs a path")?)),
            "--test" => test = Some(it.next().ok_or("--test needs a test name")?.clone()),
            "--batch" => {
                batch = it
                    .next()
                    .ok_or("--batch needs a value")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                if batch == 0 {
                    return Err("--batch must be at least 1".into());
                }
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            other => return Err(format!("ingest: unknown option {other}")),
        }
    }
    let socket = socket.ok_or("ingest: --socket PATH is required")?;
    let name = test.ok_or("ingest: --test NAME is required")?;
    let w = find_test(&name).ok_or_else(|| format!("unknown test {name}"))?;
    let mut rec = TraceRecorder::new(&w);
    let _ = Simulator::run(&w, SimConfig::with_seed(seed), &mut rec);
    let trace = rec.into_trace();
    let json = replay_trace(&socket, &trace, batch).map_err(|e| e.to_string())?;
    println!("{json}");
    // A report carrying a "shed" member means the server (under
    // --policy shed) dropped some of this session's Events batches; the
    // plan above was computed over an incomplete trace.
    if json.contains("\n\"shed\": ") {
        eprintln!("ingest: note: server shed part of this session; the report is lossy");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err("usage: waffle <list|bugs|detect|scan|report|campaign> …".into());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("waffle — active delay injection for MemOrder bugs\n");
            println!("commands:");
            println!("  list                        applications and test inputs");
            println!("  bugs                        the 18 seeded Table 4 bugs");
            println!("  analyze <test> [--jobs N] [--seed N] [--stats] [--json] [--plan-only]");
            println!("          [--spill DIR [--budget-mb N]]");
            println!("                              preparation run + trace analysis only;");
            println!("                              --spill analyzes out-of-core from an on-disk");
            println!("                              segment file under a resident-bytes budget;");
            println!("                              --plan-only prints the serve-session report");
            println!("  serve --socket PATH --dir DIR [--seal-events N] [--queue-events N]");
            println!("        [--policy block|shed] [--jobs N] [--max-sessions N] [--json]");
            println!("                              streaming ingestion server: sessions stream");
            println!("                              trace events, reports match batch analyze");
            println!("  ingest --socket PATH --test NAME [--batch N] [--seed N]");
            println!("                              stream one test's trace to a serve socket");
            println!("  detect <test> [options]     run a tool on one test input");
            println!("  step <test> --session DIR   one process-step of the workflow");
            println!("  scan <app> [options]        run a tool on an app's whole suite");
            println!("  report <bug-id> [options]   expose a seeded bug, full report");
            println!("  stats <dir> [--json]        aggregate saved telemetry journals");
            println!("  campaign init DIR [--tests a,b|--app NAME] [--tools t1,t2]");
            println!("                    [--attempts N] [--max-runs N] [--retries N]");
            println!("  campaign run DIR [--jobs N] [--resume|--fresh] [--max-cells N] [--json]");
            println!("  campaign work DIR [--worker NAME] [--lease-secs N] [--max-cells N]");
            println!("                    [--poll-ms N] [--no-wait] [--json]");
            println!("                              join DIR as one coordinator-free worker;");
            println!("                              run several processes to share the grid");
            println!("  campaign status DIR [--json]");
            println!("                              per-cell state, live claims, quarantine");
            println!("  bench --all [--out DIR]     refresh the BENCH_*.json throughput reports");
            println!("  fuzz [--seeds N] [--seed-base N] [--jobs N] [--preemption-bound K]");
            println!("       [--max-runs N] [--corpus DIR] [--memory-model sc|tso|pso]");
            println!("       [--no-reduction] [--json]");
            println!("                              generated workloads vs the schedule oracle;");
            println!("                              non-zero exit on any disagreement");
            println!("\noptions:");
            println!("  --tool waffle|basic|noprep|no-parent-child|fixed-delay|no-interference");
            println!("  --max-runs N     detection-run budget (default 10)");
            println!("  --seed N         attempt seed (default 1)");
            println!("  --attempts N     repetition attempts, summarized (default 1)");
            println!("  --jobs N         worker threads for --attempts/scan (default 1)");
            println!("  --session DIR    persist plan/decay/reports");
            println!("  --telemetry DIR  write per-attempt telemetry journals (JSON)");
            println!("  --memory-model sc|tso|pso");
            println!("                   simulated consistency model (default sc); tso/pso put");
            println!("                   a store buffer under every thread and let injected");
            println!("                   delays stretch store drains (detect/step/analyze/fuzz)");
            println!("  --json           machine-readable output");
            Ok(())
        }
        "list" => {
            for app in all_apps() {
                println!("{} ({} tests)", app.name, app.tests.len());
                for t in &app.tests {
                    let tag = match t.seeded_bug {
                        Some(id) => format!("  [Bug-{id}]"),
                        None => String::new(),
                    };
                    println!("  {}{}", t.workload.name, tag);
                }
            }
            println!("weak-memory scenarios (run with --memory-model):");
            for s in waffle_repro::apps::weak_scenarios() {
                let tag = match s.expected {
                    Some(k) => format!("  [{} under {}]", k.label(), s.model),
                    None => "  [control]".into(),
                };
                println!("  {}{}", s.name, tag);
            }
            Ok(())
        }
        "bugs" => {
            for b in all_bugs() {
                println!(
                    "Bug-{:<3} {:<20} issue {:<6} {:<8} {}",
                    b.id,
                    b.app,
                    b.issue,
                    if b.known { "known" } else { "unknown" },
                    b.summary
                );
            }
            Ok(())
        }
        "analyze" => {
            let name = args.get(1).ok_or("analyze: missing test name")?;
            let mut jobs = 1usize;
            let mut seed = 1u64;
            let mut stats = false;
            let mut json = false;
            let mut plan_only = false;
            let mut spill: Option<PathBuf> = None;
            let mut budget_mb: Option<u64> = None;
            let mut memory = MemoryModel::Sc;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--jobs" => {
                        jobs = it
                            .next()
                            .ok_or("--jobs needs a value")?
                            .parse()
                            .map_err(|e| format!("--jobs: {e}"))?;
                        if jobs == 0 {
                            return Err("--jobs must be at least 1".into());
                        }
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?;
                    }
                    "--stats" => stats = true,
                    "--json" => json = true,
                    "--plan-only" => plan_only = true,
                    "--spill" => {
                        spill = Some(PathBuf::from(it.next().ok_or("--spill needs a directory")?));
                    }
                    "--budget-mb" => {
                        let mb: u64 = it
                            .next()
                            .ok_or("--budget-mb needs a value")?
                            .parse()
                            .map_err(|e| format!("--budget-mb: {e}"))?;
                        if mb == 0 {
                            return Err("--budget-mb must be at least 1".into());
                        }
                        budget_mb = Some(mb);
                    }
                    "--memory-model" => {
                        memory = parse_memory_model(
                            it.next().ok_or("--memory-model needs a value")?,
                        )?;
                    }
                    other => return Err(format!("analyze: unknown option {other}")),
                }
            }
            if budget_mb.is_some() && spill.is_none() {
                return Err("analyze: --budget-mb only applies with --spill DIR".into());
            }
            let w = find_test(name).ok_or_else(|| format!("unknown test {name}"))?;
            analyze_cmd(
                &w,
                &AnalyzeOptions {
                    jobs,
                    seed,
                    stats,
                    json,
                    plan_only,
                    spill,
                    budget_mb,
                    memory,
                },
            )
        }
        "serve" => serve_cmd(&args[1..]),
        "ingest" => ingest_cmd(&args[1..]),
        "detect" => {
            let name = args.get(1).ok_or("detect: missing test name")?;
            let opts = parse_options(&args[2..])?;
            let w = find_test(name).ok_or_else(|| format!("unknown test {name}"))?;
            detect_one(&w, &opts)?;
            Ok(())
        }
        "step" => {
            // The real tool's process model: each invocation is one run.
            // The first step (no plan in the session yet) is the
            // preparation run; later steps are detection runs resuming the
            // persisted probabilities.
            let name = args.get(1).ok_or("step: missing test name")?;
            let opts = parse_options(&args[2..])?;
            let dir = opts
                .session
                .clone()
                .ok_or("step requires --session DIR")?;
            let session = Session::open(dir).map_err(|e| e.to_string())?;
            let w = find_test(name).ok_or_else(|| format!("unknown test {name}"))?;
            let det = Detector::with_config(
                opts.tool.clone(),
                DetectorConfig {
                    memory: MemoryConfig::from_model(opts.memory),
                    ..DetectorConfig::default()
                },
            );
            let outcome = det
                .step_with_session(&w, opts.seed, &session)
                .map_err(|e| e.to_string())?;
            if opts.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?
                );
            } else if outcome.prep.is_some() {
                println!(
                    "preparation run complete; plan saved to {}",
                    session.path().display()
                );
            } else {
                match &outcome.exposed {
                    Some(r) => print!("{}", r.render(&w.sites)),
                    None => println!("detection run complete; no bug this run"),
                }
            }
            Ok(())
        }
        "dot" => {
            let name = args.get(1).ok_or("dot: missing test name")?;
            let w = find_test(name).ok_or_else(|| format!("unknown test {name}"))?;
            print!("{}", waffle_repro::sim::dot::to_dot(&w));
            Ok(())
        }
        "stats" => {
            let dir = args.get(1).ok_or("stats: missing journal directory")?;
            let json = args.iter().any(|a| a == "--json");
            let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
                .map_err(|e| format!("{dir}: {e}"))?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            if names.is_empty() {
                return Err(format!("{dir}: no .json telemetry journals found"));
            }
            // Sorted paths + commutative counters: the aggregate does not
            // depend on directory iteration order.
            names.sort();
            let mut registry = MetricsRegistry::new();
            for path in &names {
                let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
                let attempt = AttemptJournal::from_json(&text)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                registry.absorb_attempt(&attempt);
            }
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&registry).map_err(|e| e.to_string())?
                );
                return Ok(());
            }
            println!("{} journal(s) aggregated\n", names.len());
            for (name, value) in registry.counters() {
                println!("{name:<50} {value}");
            }
            if let Some(h) = registry.histogram("total/delay") {
                if !h.is_empty() {
                    println!("\ninjected delay lengths (log2 µs buckets):");
                    for (lo, hi, n) in h.nonzero_buckets() {
                        println!("  [{lo:>9}µs, {hi:>9}µs)  {n}");
                    }
                    println!(
                        "  count {}, mean {:.1}µs, max {}µs",
                        h.count(),
                        h.mean_us(),
                        h.max_us()
                    );
                }
            }
            Ok(())
        }
        "campaign" => campaign_cmd(&args[1..]),
        "bench" => bench_cmd(&args[1..]),
        "fuzz" => fuzz_cmd(&args[1..]),
        "fix" => fix_cmd(&args[1..]),
        "scan" => {
            let name = args.get(1).ok_or("scan: missing app name")?;
            let opts = parse_options(&args[2..])?;
            let app = all_apps()
                .into_iter()
                .find(|a| a.name == *name)
                .ok_or_else(|| format!("unknown app {name}"))?;
            if opts.jobs > 1 {
                // Parallel scan: one grid cell per test input, fanned over
                // the worker pool. Attempt seeds are fixed per index, so
                // the per-input summaries match a sequential scan.
                let det = detector(&opts);
                let cells: Vec<GridCell> = app
                    .tests
                    .iter()
                    .map(|t| GridCell {
                        workload: t.workload.clone(),
                        detector: det.clone(),
                        attempts: opts.attempts,
                    })
                    .collect();
                let summaries = ExperimentEngine::new(opts.jobs).run_grid(&cells);
                let mut found = 0;
                for s in &summaries {
                    if s.exposed_attempts > 0 || s.tsv_attempts > 0 {
                        found += 1;
                    }
                    let runs = s
                        .reported_runs()
                        .map(|r| format!(", typical exposure in {r} runs"))
                        .unwrap_or_default();
                    let tsv = if s.tsv_attempts > 0 {
                        format!(" ({} thread-safety violations)", s.tsv_attempts)
                    } else {
                        String::new()
                    };
                    println!(
                        "{} [{}]: {}/{} attempts exposed{runs}{tsv}",
                        s.workload, opts.tool_name, s.exposed_attempts, s.attempts
                    );
                }
                println!("{found} bug(s) exposed across {} inputs", app.tests.len());
                return Ok(());
            }
            let mut found = 0;
            for t in &app.tests {
                if detect_one(&t.workload, &opts)? {
                    found += 1;
                }
                println!();
            }
            println!("{found} bug(s) exposed across {} inputs", app.tests.len());
            Ok(())
        }
        "report" => {
            let id: u32 = args
                .get(1)
                .ok_or("report: missing bug id")?
                .parse()
                .map_err(|e| format!("bug id: {e}"))?;
            let opts = parse_options(&args[2..])?;
            let spec = all_bugs()
                .into_iter()
                .find(|b| b.id == id)
                .ok_or_else(|| format!("unknown bug id {id}"))?;
            let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
            let w = app
                .bug_workload(id)
                .ok_or("bug workload missing")?
                .clone();
            println!("Bug-{id} ({} issue {}): {}\n", spec.app, spec.issue, spec.summary);
            detect_one(&w, &opts)?;
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("waffle: {e}");
            ExitCode::FAILURE
        }
    }
}
