//! `waffle` — command-line front end for the detection workflow.
//!
//! ```text
//! waffle list                         # applications and test inputs
//! waffle bugs                         # the 18 seeded Table 4 bugs
//! waffle detect <test> [options]      # run a tool on one test input
//! waffle step <test> --session DIR    # one process-step of the workflow
//! waffle scan <app> [options]         # run a tool on an app's whole suite
//! waffle report <bug-id> [options]    # expose a seeded bug, full report
//! waffle stats <dir> [--json]         # aggregate saved telemetry journals
//! waffle dot <test>                   # render a workload as Graphviz
//!
//! options:
//!   --tool waffle|basic|noprep|no-parent-child|fixed-delay|no-interference
//!   --max-runs N     detection-run budget (default 10)
//!   --seed N         attempt seed (default 1)
//!   --attempts N     repetition attempts, summarized per §6.1 (default 1)
//!   --jobs N         worker threads for --attempts and scan (default 1)
//!   --session DIR    persist plan/decay/reports to a session directory
//!   --telemetry DIR  write per-attempt telemetry journals (JSON) to DIR
//!   --json           machine-readable output
//! ```
//!
//! Repetition attempts use the fixed seed ladder 1..=N (see
//! `waffle_core::attempt_seed`), so `--jobs` changes wall-clock time only:
//! the summary is identical at any worker count.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use waffle_repro::apps::{all_apps, all_bugs};
use waffle_repro::core::{
    attempt_seed, summarize, Detector, DetectorConfig, DetectionOutcome, ExperimentEngine,
    GridCell, Session, Tool,
};
use waffle_repro::sim::Workload;
use waffle_repro::telemetry::{AttemptJournal, MetricsRegistry};

struct Options {
    tool: Tool,
    tool_name: String,
    max_runs: u32,
    seed: u64,
    attempts: u32,
    jobs: usize,
    session: Option<String>,
    telemetry: Option<PathBuf>,
    json: bool,
}

fn parse_tool(name: &str) -> Option<Tool> {
    Some(match name {
        "waffle" => Tool::waffle(),
        "basic" | "waffle-basic" => Tool::waffle_basic(),
        "tsvd" => Tool::Tsvd,
        "noprep" | "no-prep" => Tool::waffle_no_prep(),
        "no-parent-child" => Tool::waffle_no_parent_child(),
        "fixed-delay" => Tool::waffle_fixed_delay(),
        "no-interference" => Tool::waffle_no_interference(),
        _ => return None,
    })
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        tool: Tool::waffle(),
        tool_name: "waffle".into(),
        max_runs: 10,
        seed: 1,
        attempts: 1,
        jobs: 1,
        session: None,
        telemetry: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tool" => {
                let v = it.next().ok_or("--tool needs a value")?;
                opts.tool = parse_tool(v).ok_or_else(|| format!("unknown tool {v}"))?;
                opts.tool_name = v.clone();
            }
            "--max-runs" => {
                opts.max_runs = it
                    .next()
                    .ok_or("--max-runs needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-runs: {e}"))?;
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--attempts" => {
                opts.attempts = it
                    .next()
                    .ok_or("--attempts needs a value")?
                    .parse()
                    .map_err(|e| format!("--attempts: {e}"))?;
                if opts.attempts == 0 {
                    return Err("--attempts must be at least 1".into());
                }
            }
            "--jobs" => {
                opts.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--session" => {
                opts.session = Some(it.next().ok_or("--session needs a value")?.clone());
            }
            "--telemetry" => {
                opts.telemetry =
                    Some(PathBuf::from(it.next().ok_or("--telemetry needs a value")?));
            }
            "--json" => opts.json = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn find_test(name: &str) -> Option<Workload> {
    all_apps()
        .into_iter()
        .flat_map(|a| a.tests)
        .find(|t| t.workload.name == name)
        .map(|t| t.workload)
}

fn detector(opts: &Options) -> Detector {
    Detector::with_config(
        opts.tool.clone(),
        DetectorConfig {
            max_detection_runs: opts.max_runs,
            // Per-decision event logs are worth recording only when the
            // journals are actually being written out.
            telemetry_events: opts.telemetry.is_some(),
            ..DetectorConfig::default()
        },
    )
}

/// Writes one attempt's telemetry journal into `dir` as
/// `<workload>-<tool>-attempt-<seed>.json`; returns the file path.
fn write_attempt_journal(
    dir: &Path,
    w: &Workload,
    opts: &Options,
    seed: u64,
    outcome: &DetectionOutcome,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let journal = AttemptJournal {
        workload: w.name.clone(),
        tool: opts.tool_name.clone(),
        attempt_seed: seed,
        runs: outcome.telemetry.clone(),
    };
    let path = dir.join(format!("{}-{}-attempt-{seed}.json", w.name, opts.tool_name));
    std::fs::write(&path, journal.to_json().map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    Ok(path)
}

/// `detect` with `--attempts N > 1`: the §6.1 repetition methodology,
/// fanned over `--jobs` workers.
fn detect_experiment(w: &Workload, opts: &Options) -> Result<bool, String> {
    let det = detector(opts);
    let outcomes = ExperimentEngine::new(opts.jobs).run_attempts(&det, w, opts.attempts);
    let summary = summarize(&det, w, &outcomes);
    if let Some(dir) = &opts.telemetry {
        // One journal file per attempt, keyed by its fixed seed, so the
        // set of files is identical at any --jobs.
        for (i, outcome) in outcomes.iter().enumerate() {
            write_attempt_journal(dir, w, opts, attempt_seed(i as u32), outcome)?;
        }
        if !opts.json {
            println!(
                "{} telemetry journal(s) written to {}",
                outcomes.len(),
                dir.display()
            );
        }
    }
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{} [{}]: {}/{} attempts exposed the bug",
            w.name, opts.tool_name, summary.exposed_attempts, summary.attempts
        );
        match summary.reported_runs() {
            Some(runs) => println!(
                "typical exposure in {runs} runs, median slowdown {:.1}x",
                summary.median_slowdown.unwrap_or(1.0)
            ),
            None => println!("no attempt exposed a bug"),
        }
        if summary.tsv_attempts > 0 {
            println!(
                "{} attempts exposed a thread-safety violation",
                summary.tsv_attempts
            );
        }
    }
    Ok(summary.exposed_attempts > 0 || summary.tsv_attempts > 0)
}

fn detect_one(w: &Workload, opts: &Options) -> Result<bool, String> {
    if opts.attempts > 1 {
        return detect_experiment(w, opts);
    }
    let det = detector(opts);
    let outcome = det.detect(w, opts.seed);
    let session = opts
        .session
        .as_ref()
        .map(|d| Session::open(d).map_err(|e| e.to_string()))
        .transpose()?;
    if let Some(dir) = &opts.telemetry {
        let path = write_attempt_journal(dir, w, opts, opts.seed, &outcome)?;
        if !opts.json {
            println!("telemetry journal written to {}", path.display());
        }
    }
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{} [{}]: base {}, {} runs",
            w.name,
            opts.tool_name,
            outcome.base_time,
            outcome.total_runs()
        );
        match (&outcome.exposed, &outcome.tsv_exposed) {
            (Some(r), _) => {
                print!("{}", r.render(&w.sites));
                println!("slowdown {:.1}x vs uninstrumented", outcome.slowdown());
            }
            (None, Some(v)) => println!(
                "thread-safety violation: {} overlaps {} on {} (run {})",
                v.first_site, v.second_site, v.obj, v.exposed_in_run
            ),
            (None, None) => println!(
                "no bug exposed ({} delays injected across the detection runs)",
                outcome.total_delays()
            ),
        }
    }
    if let (Some(session), Some(report)) = (&session, &outcome.exposed) {
        let path = session
            .save_report(report, &report.render(&w.sites))
            .map_err(|e| e.to_string())?;
        if !opts.json {
            println!("report written to {}", path.display());
        }
    }
    Ok(outcome.exposed.is_some() || outcome.tsv_exposed.is_some())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err("usage: waffle <list|bugs|detect|scan|report> …".into());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("waffle — active delay injection for MemOrder bugs\n");
            println!("commands:");
            println!("  list                        applications and test inputs");
            println!("  bugs                        the 18 seeded Table 4 bugs");
            println!("  detect <test> [options]     run a tool on one test input");
            println!("  step <test> --session DIR   one process-step of the workflow");
            println!("  scan <app> [options]        run a tool on an app's whole suite");
            println!("  report <bug-id> [options]   expose a seeded bug, full report");
            println!("  stats <dir> [--json]        aggregate saved telemetry journals");
            println!("\noptions:");
            println!("  --tool waffle|basic|noprep|no-parent-child|fixed-delay|no-interference");
            println!("  --max-runs N     detection-run budget (default 10)");
            println!("  --seed N         attempt seed (default 1)");
            println!("  --attempts N     repetition attempts, summarized (default 1)");
            println!("  --jobs N         worker threads for --attempts/scan (default 1)");
            println!("  --session DIR    persist plan/decay/reports");
            println!("  --telemetry DIR  write per-attempt telemetry journals (JSON)");
            println!("  --json           machine-readable output");
            Ok(())
        }
        "list" => {
            for app in all_apps() {
                println!("{} ({} tests)", app.name, app.tests.len());
                for t in &app.tests {
                    let tag = match t.seeded_bug {
                        Some(id) => format!("  [Bug-{id}]"),
                        None => String::new(),
                    };
                    println!("  {}{}", t.workload.name, tag);
                }
            }
            Ok(())
        }
        "bugs" => {
            for b in all_bugs() {
                println!(
                    "Bug-{:<3} {:<20} issue {:<6} {:<8} {}",
                    b.id,
                    b.app,
                    b.issue,
                    if b.known { "known" } else { "unknown" },
                    b.summary
                );
            }
            Ok(())
        }
        "detect" => {
            let name = args.get(1).ok_or("detect: missing test name")?;
            let opts = parse_options(&args[2..])?;
            let w = find_test(name).ok_or_else(|| format!("unknown test {name}"))?;
            detect_one(&w, &opts)?;
            Ok(())
        }
        "step" => {
            // The real tool's process model: each invocation is one run.
            // The first step (no plan in the session yet) is the
            // preparation run; later steps are detection runs resuming the
            // persisted probabilities.
            let name = args.get(1).ok_or("step: missing test name")?;
            let opts = parse_options(&args[2..])?;
            let dir = opts
                .session
                .clone()
                .ok_or("step requires --session DIR")?;
            let session = Session::open(dir).map_err(|e| e.to_string())?;
            let w = find_test(name).ok_or_else(|| format!("unknown test {name}"))?;
            let det = Detector::new(opts.tool.clone());
            let outcome = det
                .step_with_session(&w, opts.seed, &session)
                .map_err(|e| e.to_string())?;
            if opts.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?
                );
            } else if outcome.prep.is_some() {
                println!(
                    "preparation run complete; plan saved to {}",
                    session.path().display()
                );
            } else {
                match &outcome.exposed {
                    Some(r) => print!("{}", r.render(&w.sites)),
                    None => println!("detection run complete; no bug this run"),
                }
            }
            Ok(())
        }
        "dot" => {
            let name = args.get(1).ok_or("dot: missing test name")?;
            let w = find_test(name).ok_or_else(|| format!("unknown test {name}"))?;
            print!("{}", waffle_repro::sim::dot::to_dot(&w));
            Ok(())
        }
        "stats" => {
            let dir = args.get(1).ok_or("stats: missing journal directory")?;
            let json = args.iter().any(|a| a == "--json");
            let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
                .map_err(|e| format!("{dir}: {e}"))?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            if names.is_empty() {
                return Err(format!("{dir}: no .json telemetry journals found"));
            }
            // Sorted paths + commutative counters: the aggregate does not
            // depend on directory iteration order.
            names.sort();
            let mut registry = MetricsRegistry::new();
            for path in &names {
                let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
                let attempt = AttemptJournal::from_json(&text)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                registry.absorb_attempt(&attempt);
            }
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&registry).map_err(|e| e.to_string())?
                );
                return Ok(());
            }
            println!("{} journal(s) aggregated\n", names.len());
            for (name, value) in registry.counters() {
                println!("{name:<50} {value}");
            }
            if let Some(h) = registry.histogram("total/delay") {
                if !h.is_empty() {
                    println!("\ninjected delay lengths (log2 µs buckets):");
                    for (lo, hi, n) in h.nonzero_buckets() {
                        println!("  [{lo:>9}µs, {hi:>9}µs)  {n}");
                    }
                    println!(
                        "  count {}, mean {:.1}µs, max {}µs",
                        h.count(),
                        h.mean_us(),
                        h.max_us()
                    );
                }
            }
            Ok(())
        }
        "scan" => {
            let name = args.get(1).ok_or("scan: missing app name")?;
            let opts = parse_options(&args[2..])?;
            let app = all_apps()
                .into_iter()
                .find(|a| a.name == *name)
                .ok_or_else(|| format!("unknown app {name}"))?;
            if opts.jobs > 1 {
                // Parallel scan: one grid cell per test input, fanned over
                // the worker pool. Attempt seeds are fixed per index, so
                // the per-input summaries match a sequential scan.
                let det = detector(&opts);
                let cells: Vec<GridCell> = app
                    .tests
                    .iter()
                    .map(|t| GridCell {
                        workload: t.workload.clone(),
                        detector: det.clone(),
                        attempts: opts.attempts,
                    })
                    .collect();
                let summaries = ExperimentEngine::new(opts.jobs).run_grid(&cells);
                let mut found = 0;
                for s in &summaries {
                    if s.exposed_attempts > 0 || s.tsv_attempts > 0 {
                        found += 1;
                    }
                    let runs = s
                        .reported_runs()
                        .map(|r| format!(", typical exposure in {r} runs"))
                        .unwrap_or_default();
                    let tsv = if s.tsv_attempts > 0 {
                        format!(" ({} thread-safety violations)", s.tsv_attempts)
                    } else {
                        String::new()
                    };
                    println!(
                        "{} [{}]: {}/{} attempts exposed{runs}{tsv}",
                        s.workload, opts.tool_name, s.exposed_attempts, s.attempts
                    );
                }
                println!("{found} bug(s) exposed across {} inputs", app.tests.len());
                return Ok(());
            }
            let mut found = 0;
            for t in &app.tests {
                if detect_one(&t.workload, &opts)? {
                    found += 1;
                }
                println!();
            }
            println!("{found} bug(s) exposed across {} inputs", app.tests.len());
            Ok(())
        }
        "report" => {
            let id: u32 = args
                .get(1)
                .ok_or("report: missing bug id")?
                .parse()
                .map_err(|e| format!("bug id: {e}"))?;
            let opts = parse_options(&args[2..])?;
            let spec = all_bugs()
                .into_iter()
                .find(|b| b.id == id)
                .ok_or_else(|| format!("unknown bug id {id}"))?;
            let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
            let w = app
                .bug_workload(id)
                .ok_or("bug workload missing")?
                .clone();
            println!("Bug-{id} ({} issue {}): {}\n", spec.app, spec.issue, spec.summary);
            detect_one(&w, &opts)?;
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("waffle: {e}");
            ExitCode::FAILURE
        }
    }
}
