//! Umbrella crate for the Waffle (EuroSys '23) reproduction.
//!
//! This crate re-exports the workspace's public surface so examples and
//! integration tests can depend on a single name. The actual implementation
//! lives in the `crates/` members:
//!
//! - [`waffle_mem`] — managed-heap model (the MemOrder bug class substrate)
//! - [`waffle_sim`] — deterministic virtual-time concurrency simulator
//! - [`waffle_vclock`] — vector clocks and the inheritable-TLS fork protocol
//! - [`waffle_trace`] — execution traces and statistics
//! - [`waffle_analysis`] — Waffle's preparation-run trace analyzer
//! - [`waffle_inject`] — delay-injection policies (Waffle, WaffleBasic, TSVD,
//!   ablations and baselines)
//! - [`waffle_telemetry`] — run-telemetry journals, counters and histograms
//! - [`waffle_core`] — the orchestrator and experiment drivers
//! - [`waffle_apps`] — the synthetic benchmark suite with the 18 seeded bugs
//! - [`waffle_fuzz`] — ground-truth workload fuzzer and bounded schedule
//!   oracle for differential detector testing

pub use waffle_analysis as analysis;
pub use waffle_apps as apps;
pub use waffle_core as core;
pub use waffle_fuzz as fuzz;
pub use waffle_inject as inject;
pub use waffle_mem as mem;
pub use waffle_sim as sim;
pub use waffle_telemetry as telemetry;
pub use waffle_trace as trace;
pub use waffle_vclock as vclock;
