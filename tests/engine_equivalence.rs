//! The parallel experiment engine's contract: results are bit-identical
//! to the sequential path at every worker count, and `run_grid` returns
//! summaries in input order regardless of which worker finishes first.

use waffle_repro::apps::{all_apps, bug};
use waffle_repro::core::{
    run_experiment, Campaign, CampaignConfig, CellSpec, Detector, DetectorConfig,
    ExperimentEngine, GridCell, RunOptions, Tool,
};
use waffle_repro::sim::Workload;

const ATTEMPTS: u32 = 4;
const JOB_COUNTS: [usize; 3] = [1, 2, 8];

fn bug_workload(id: u32) -> Workload {
    let spec = bug(id).expect("bug exists");
    all_apps()
        .into_iter()
        .find(|a| a.name == spec.app)
        .unwrap()
        .bug_workload(id)
        .unwrap()
        .clone()
}

/// Three differently-shaped inputs: a single-instance race (Bug-1), a
/// Fig. 4a interference race (Bug-10), and a clean input that never
/// exposes anything.
fn workloads() -> Vec<Workload> {
    let clean = all_apps()
        .into_iter()
        .flat_map(|a| a.tests)
        .find(|t| t.seeded_bug.is_none())
        .expect("a clean test input exists")
        .workload;
    vec![bug_workload(1), bug_workload(10), clean]
}

fn detector() -> Detector {
    Detector::with_config(
        Tool::waffle(),
        DetectorConfig {
            max_detection_runs: 6,
            ..DetectorConfig::default()
        },
    )
}

#[test]
fn engine_summary_matches_sequential_on_every_workload() {
    let det = detector();
    for w in workloads() {
        let sequential = run_experiment(&det, &w, ATTEMPTS);
        for jobs in JOB_COUNTS {
            let parallel = ExperimentEngine::new(jobs).run_experiment(&det, &w, ATTEMPTS);
            assert_eq!(
                parallel, sequential,
                "{}: summary must not depend on jobs = {jobs}",
                w.name
            );
        }
    }
}

/// The tentpole guarantee for telemetry: per-attempt journals and the
/// aggregated summary are bit-identical at `--jobs 1` and `--jobs 4`,
/// with per-decision event recording on.
#[test]
fn aggregated_telemetry_is_identical_at_jobs_1_and_4() {
    let det = Detector::with_config(
        Tool::waffle(),
        DetectorConfig {
            max_detection_runs: 6,
            telemetry_events: true,
            ..DetectorConfig::default()
        },
    );
    for w in workloads() {
        let seq = ExperimentEngine::new(1).run_attempts(&det, &w, ATTEMPTS);
        let par = ExperimentEngine::new(4).run_attempts(&det, &w, ATTEMPTS);
        for (a, (s, p)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                s.telemetry, p.telemetry,
                "{}: attempt {a} journals must match",
                w.name
            );
            assert!(
                !s.telemetry.is_empty(),
                "{}: attempt {a} recorded no journals",
                w.name
            );
        }
        let summarize_all = |outcomes: &[waffle_repro::core::DetectionOutcome]| {
            let mut t = waffle_repro::telemetry::TelemetrySummary::default();
            for o in outcomes {
                for j in &o.telemetry {
                    t.absorb_run(j);
                }
            }
            t
        };
        assert_eq!(
            summarize_all(&seq),
            summarize_all(&par),
            "{}: aggregated telemetry must not depend on the worker count",
            w.name
        );
    }
}

#[test]
fn grid_order_and_content_are_stable_across_job_counts() {
    let cells: Vec<GridCell> = workloads()
        .into_iter()
        .flat_map(|w| {
            [Tool::waffle(), Tool::waffle_basic()].map(|tool| GridCell {
                workload: w.clone(),
                detector: Detector::with_config(
                    tool,
                    DetectorConfig {
                        max_detection_runs: 6,
                        ..DetectorConfig::default()
                    },
                ),
                attempts: ATTEMPTS,
            })
        })
        .collect();
    let reference = ExperimentEngine::new(1).run_grid(&cells);
    assert_eq!(reference.len(), cells.len());
    for (cell, summary) in cells.iter().zip(&reference) {
        assert_eq!(summary.workload, cell.workload.name, "input order preserved");
        assert_eq!(summary.tool, cell.detector.tool().name());
    }
    for jobs in JOB_COUNTS {
        let summaries = ExperimentEngine::new(jobs).run_grid(&cells);
        assert_eq!(summaries, reference, "grid must not depend on jobs = {jobs}");
    }
}

/// The campaign runner is an `ExperimentEngine::run_grid` that survives
/// crashes: a cell that never panics must produce the *same*
/// `ExperimentSummary` as the engine, and an interrupted-then-resumed
/// campaign must match an uninterrupted one bit-for-bit at any `--jobs`.
#[test]
fn campaign_cells_match_run_grid_even_across_interrupt_and_resume() {
    let named: Vec<Workload> = workloads()
        .into_iter()
        .filter(|w| resolvable(&w.name))
        .collect();
    assert!(named.len() >= 2, "suite workloads resolve by name");
    let cells: Vec<GridCell> = named
        .iter()
        .flat_map(|w| {
            [Tool::waffle(), Tool::waffle_basic()].map(|tool| GridCell {
                workload: w.clone(),
                detector: Detector::with_config(
                    tool,
                    DetectorConfig {
                        max_detection_runs: 6,
                        ..DetectorConfig::default()
                    },
                ),
                attempts: ATTEMPTS,
            })
        })
        .collect();
    let engine_reference = ExperimentEngine::new(2).run_grid(&cells);

    let specs: Vec<CellSpec> = cells
        .iter()
        .map(|c| CellSpec::new(&c.workload.name, c.detector.tool().name(), c.attempts))
        .collect();
    let config = CampaignConfig {
        max_detection_runs: 6,
        ..CampaignConfig::default()
    };

    let mut report_files = Vec::new();
    for jobs in JOB_COUNTS {
        let dir = std::env::temp_dir().join(format!(
            "waffle-engine-equiv-campaign-j{jobs}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::create(&dir, config.clone(), specs.clone()).unwrap();
        // Interrupt after one checkpoint, then resume at this job count.
        campaign
            .run(
                &RunOptions {
                    jobs,
                    max_cells: Some(1),
                    ..RunOptions::default()
                },
                resolve_by_name,
            )
            .unwrap();
        let report = campaign
            .run(
                &RunOptions {
                    jobs,
                    resume: true,
                    ..RunOptions::default()
                },
                resolve_by_name,
            )
            .unwrap()
            .report
            .expect("resume completes the campaign");
        for (cell, engine_summary) in report.cells.iter().zip(&engine_reference) {
            assert_eq!(
                cell.summary.as_ref(),
                Some(engine_summary),
                "campaign cell must match run_grid at jobs = {jobs}"
            );
        }
        report_files.push(std::fs::read_to_string(dir.join("report.json")).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
    for bytes in &report_files[1..] {
        assert_eq!(bytes, &report_files[0], "report must not depend on the job count");
    }
}

fn resolvable(name: &str) -> bool {
    resolve_by_name(name).is_some()
}

fn resolve_by_name(name: &str) -> Option<Workload> {
    all_apps()
        .into_iter()
        .flat_map(|a| a.tests)
        .find(|t| t.workload.name == name)
        .map(|t| t.workload)
}
