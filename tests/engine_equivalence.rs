//! The parallel experiment engine's contract: results are bit-identical
//! to the sequential path at every worker count, and `run_grid` returns
//! summaries in input order regardless of which worker finishes first.

use waffle_repro::apps::{all_apps, bug};
use waffle_repro::core::{
    run_experiment, Detector, DetectorConfig, ExperimentEngine, GridCell, Tool,
};
use waffle_repro::sim::Workload;

const ATTEMPTS: u32 = 4;
const JOB_COUNTS: [usize; 3] = [1, 2, 8];

fn bug_workload(id: u32) -> Workload {
    let spec = bug(id).expect("bug exists");
    all_apps()
        .into_iter()
        .find(|a| a.name == spec.app)
        .unwrap()
        .bug_workload(id)
        .unwrap()
        .clone()
}

/// Three differently-shaped inputs: a single-instance race (Bug-1), a
/// Fig. 4a interference race (Bug-10), and a clean input that never
/// exposes anything.
fn workloads() -> Vec<Workload> {
    let clean = all_apps()
        .into_iter()
        .flat_map(|a| a.tests)
        .find(|t| t.seeded_bug.is_none())
        .expect("a clean test input exists")
        .workload;
    vec![bug_workload(1), bug_workload(10), clean]
}

fn detector() -> Detector {
    Detector::with_config(
        Tool::waffle(),
        DetectorConfig {
            max_detection_runs: 6,
            ..DetectorConfig::default()
        },
    )
}

#[test]
fn engine_summary_matches_sequential_on_every_workload() {
    let det = detector();
    for w in workloads() {
        let sequential = run_experiment(&det, &w, ATTEMPTS);
        for jobs in JOB_COUNTS {
            let parallel = ExperimentEngine::new(jobs).run_experiment(&det, &w, ATTEMPTS);
            assert_eq!(
                parallel, sequential,
                "{}: summary must not depend on jobs = {jobs}",
                w.name
            );
        }
    }
}

/// The tentpole guarantee for telemetry: per-attempt journals and the
/// aggregated summary are bit-identical at `--jobs 1` and `--jobs 4`,
/// with per-decision event recording on.
#[test]
fn aggregated_telemetry_is_identical_at_jobs_1_and_4() {
    let det = Detector::with_config(
        Tool::waffle(),
        DetectorConfig {
            max_detection_runs: 6,
            telemetry_events: true,
            ..DetectorConfig::default()
        },
    );
    for w in workloads() {
        let seq = ExperimentEngine::new(1).run_attempts(&det, &w, ATTEMPTS);
        let par = ExperimentEngine::new(4).run_attempts(&det, &w, ATTEMPTS);
        for (a, (s, p)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                s.telemetry, p.telemetry,
                "{}: attempt {a} journals must match",
                w.name
            );
            assert!(
                !s.telemetry.is_empty(),
                "{}: attempt {a} recorded no journals",
                w.name
            );
        }
        let summarize_all = |outcomes: &[waffle_repro::core::DetectionOutcome]| {
            let mut t = waffle_repro::telemetry::TelemetrySummary::default();
            for o in outcomes {
                for j in &o.telemetry {
                    t.absorb_run(j);
                }
            }
            t
        };
        assert_eq!(
            summarize_all(&seq),
            summarize_all(&par),
            "{}: aggregated telemetry must not depend on the worker count",
            w.name
        );
    }
}

#[test]
fn grid_order_and_content_are_stable_across_job_counts() {
    let cells: Vec<GridCell> = workloads()
        .into_iter()
        .flat_map(|w| {
            [Tool::waffle(), Tool::waffle_basic()].map(|tool| GridCell {
                workload: w.clone(),
                detector: Detector::with_config(
                    tool,
                    DetectorConfig {
                        max_detection_runs: 6,
                        ..DetectorConfig::default()
                    },
                ),
                attempts: ATTEMPTS,
            })
        })
        .collect();
    let reference = ExperimentEngine::new(1).run_grid(&cells);
    assert_eq!(reference.len(), cells.len());
    for (cell, summary) in cells.iter().zip(&reference) {
        assert_eq!(summary.workload, cell.workload.name, "input order preserved");
        assert_eq!(summary.tool, cell.detector.tool().name());
    }
    for jobs in JOB_COUNTS {
        let summaries = ExperimentEngine::new(jobs).run_grid(&cells);
        assert_eq!(summaries, reference, "grid must not depend on jobs = {jobs}");
    }
}
