//! Smoke tests for the `waffle` command-line front end.

use std::process::Command;

fn waffle(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_waffle"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn list_names_all_apps_and_bug_tags() {
    let out = waffle(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for app in ["ApplicationInsights", "NetMQ", "NpgSQL", "SSH.Net"] {
        assert!(text.contains(app), "missing {app}");
    }
    assert!(text.contains("[Bug-11]"));
}

#[test]
fn bugs_lists_all_eighteen() {
    let out = waffle(&["bugs"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 18);
    assert!(text.contains("Bug-18"));
}

#[test]
fn detect_exposes_a_seeded_bug_with_json_output() {
    let out = waffle(&[
        "detect",
        "SshNet.channel_disconnect",
        "--tool",
        "waffle",
        "--json",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
    assert_eq!(v["exposed"]["site"], "Channel.OnData:94");
    assert_eq!(v["exposed"]["total_runs"], 2);
}

#[test]
fn step_workflow_persists_and_resumes() {
    let dir = std::env::temp_dir().join(format!("waffle-cli-step-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().to_string();
    // Step 1: preparation.
    let out = waffle(&["step", "SshNet.channel_disconnect", "--session", &dir_s]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("preparation run complete"));
    assert!(dir.join("plan.json").exists());
    // Step 2: detection (a new "process") exposes the bug and writes the
    // report file.
    let out = waffle(&[
        "step",
        "SshNet.channel_disconnect",
        "--session",
        &dir_s,
        "--seed",
        "2",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("use-after-free"));
    assert!(dir.join("bug-001.txt").exists());
    assert!(dir.join("decay.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `detect --telemetry` writes a per-attempt journal whose counters
/// reconcile exactly with the outcome's run summaries, and `stats`
/// aggregates the directory.
#[test]
fn telemetry_journal_reconciles_with_outcome_and_stats_reads_it() {
    let dir = std::env::temp_dir().join(format!("waffle-cli-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().to_string();
    let out = waffle(&[
        "detect",
        "SshNet.channel_disconnect",
        "--telemetry",
        &dir_s,
        "--json",
    ]);
    assert!(out.status.success());
    let outcome: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid json");

    let journal_path = dir.join("SshNet.channel_disconnect-waffle-attempt-1.json");
    let journal: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&journal_path).unwrap()).unwrap();
    let runs = journal["runs"].as_seq().expect("runs array");
    let detection_runs = outcome["detection_runs"].as_seq().unwrap();
    assert_eq!(runs.len(), detection_runs.len(), "one journal per run");
    let sum = |field: &str| -> u64 {
        runs.iter()
            .map(|r| r["counters"][field].as_u64().unwrap())
            .sum()
    };
    let outcome_sum = |field: &str| -> u64 {
        detection_runs
            .iter()
            .map(|r| r[field].as_u64().unwrap())
            .sum()
    };
    assert_eq!(sum("injected"), outcome_sum("delays"));
    assert_eq!(sum("instrumented_ops"), outcome_sum("instrumented_ops"));
    assert!(
        runs.iter().any(|r| !r["events"].as_seq().unwrap().is_empty()),
        "--telemetry records per-decision events"
    );

    let out = waffle(&["stats", &dir_s]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total/injected"));
    assert!(text.contains("SshNet.channel_disconnect/waffle/injected"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_inputs_fail_cleanly() {
    let out = waffle(&["detect", "No.such_test"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown test"));
    let out = waffle(&["frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn analyze_rejects_unknown_test() {
    let out = waffle(&["analyze", "No.such_test"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown test"));
}

/// Bound 0 means no access can ever be reordered, so every verdict would
/// be vacuous — the CLI refuses it with an explanation instead of
/// silently reporting "no bugs".
#[test]
fn fuzz_rejects_a_meaningless_preemption_bound() {
    let out = waffle(&["fuzz", "--preemption-bound", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr)
        .contains("--preemption-bound must be at least 1"));
}

/// A small fuzz sweep succeeds end-to-end and emits parseable JSON with
/// the aggregate counters.
#[test]
fn fuzz_smoke_emits_json_report() {
    let out = waffle(&["fuzz", "--seeds", "4", "--jobs", "2", "--json"]);
    assert!(
        out.status.success(),
        "fuzz failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid json");
    assert_eq!(v["seeds"], 4);
    assert_eq!(v["disagreements"].as_seq().map(|d| d.len()), Some(0));
    assert_eq!(v["metrics"]["counters"]["fuzz/workloads"], 4);
}

/// `analyze --spill` streams the analysis out-of-core from the on-disk
/// segment file it writes, and the `--json` output (index shape + plans)
/// is byte-identical to the in-memory path even at a 1 MiB budget.
#[test]
fn analyze_spill_matches_the_in_memory_json() {
    let dir = std::env::temp_dir().join(format!("waffle-cli-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().to_string();
    let mem = waffle(&["analyze", "SshNet.channel_disconnect", "--json"]);
    assert!(mem.status.success());
    let ooc = waffle(&[
        "analyze",
        "SshNet.channel_disconnect",
        "--json",
        "--spill",
        &dir_s,
        "--budget-mb",
        "1",
    ]);
    assert!(
        ooc.status.success(),
        "spill analyze failed:\n{}",
        String::from_utf8_lossy(&ooc.stderr)
    );
    assert_eq!(mem.stdout, ooc.stdout, "out-of-core plans must match in-memory");
    assert!(dir.join("SshNet.channel_disconnect.seg").exists());
    // --budget-mb without --spill is meaningless and refused.
    let out = waffle(&["analyze", "SshNet.channel_disconnect", "--budget-mb", "1"]);
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `campaign work` drains cells through the coordinator-free claim
/// protocol, and `campaign status --json` surfaces per-cell state, live
/// claims and quarantine machine-readably at every stage.
#[test]
fn campaign_work_and_status_json_track_the_claim_protocol() {
    let dir = std::env::temp_dir().join(format!("waffle-cli-work-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().to_string();
    let out = waffle(&[
        "campaign",
        "init",
        &dir_s,
        "--tests",
        "SshNet.channel_disconnect,ApplicationInsights.telemetry_pool",
        "--attempts",
        "1",
        "--max-runs",
        "4",
    ]);
    assert!(out.status.success());

    let status_json = || -> serde_json::Value {
        let out = waffle(&["campaign", "status", &dir_s, "--json"]);
        assert!(out.status.success());
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid status json")
    };
    let v = status_json();
    assert_eq!(v["total"], 2);
    assert_eq!(v["outstanding"], 2);
    assert_eq!(v["report_written"], false);
    assert_eq!(v["cells"].as_seq().unwrap().len(), 2);
    assert_eq!(v["cells"][0]["state"], "outstanding");

    // Worker 1 takes exactly one cell and stops.
    let out = waffle(&[
        "campaign", "work", &dir_s, "--worker", "w1", "--max-cells", "1",
    ]);
    assert!(
        out.status.success(),
        "work failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("cell [0000]"));
    let v = status_json();
    assert_eq!(v["done"], 1);
    assert_eq!(v["cells"][0]["state"], "completed");
    assert_eq!(v["claims"].as_seq().map(|c| c.len()), Some(0), "claim released");
    assert_eq!(v["quarantined"].as_seq().map(|q| q.len()), Some(0));

    // Worker 2 finishes the grid and assembles the report.
    let out = waffle(&["campaign", "work", &dir_s, "--worker", "w2", "--json"]);
    assert!(out.status.success());
    let report: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid report json");
    assert_eq!(report["cells"].as_seq().map(|c| c.len()), Some(2));
    let v = status_json();
    assert_eq!(v["done"], 2);
    assert_eq!(v["outstanding"], 0);
    assert_eq!(v["report_written"], true);
    assert!(dir.join("report.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-running a campaign over existing checkpoints without an explicit
/// `--resume`/`--fresh` decision refuses rather than clobbering them.
#[test]
fn campaign_bare_rerun_refuses_existing_checkpoints() {
    let dir = std::env::temp_dir().join(format!("waffle-cli-rerun-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().to_string();
    let out = waffle(&[
        "campaign",
        "init",
        &dir_s,
        "--tests",
        "SshNet.channel_disconnect",
        "--attempts",
        "1",
        "--max-runs",
        "4",
    ]);
    assert!(out.status.success());
    let out = waffle(&["campaign", "run", &dir_s, "--max-cells", "1"]);
    assert!(out.status.success());
    let out = waffle(&["campaign", "run", &dir_s]);
    assert!(!out.status.success(), "bare rerun must refuse");
    assert!(String::from_utf8_lossy(&out.stderr).contains("pass --resume"));
    let _ = std::fs::remove_dir_all(&dir);
}
