//! Minimality of synthesized repairs, pinned by property testing: for
//! any certified patch over the weak-memory generator population (and
//! the sc population's ordering edges), *weakening* the patch in any
//! grammar-defined way — dropping the fence, removing the ordering edge
//! or its signal half, covering only one script with the lock — flips
//! the bounded oracle back to exposable. The certified patch therefore
//! contains no removable part: it is minimal within the grammar.

use proptest::prelude::*;
use waffle_repro::fuzz::{
    derive_plan, explore, generate_case_for_model, synthesize_with_oracle, GroundTruth,
    OracleConfig, OracleVerdict,
};
use waffle_repro::sim::MemoryModel;

/// Synthesizes a repair for the seed's case when it is an
/// oracle-exposable plant, then asserts every weakening of the certified
/// patch re-exposes the bug. Returns whether a certified patch was
/// actually exercised (so callers can require a nonzero hit count).
fn weakenings_all_flip(seed: u64, model: MemoryModel) -> bool {
    let case = generate_case_for_model(seed, model);
    if !matches!(case.truth, GroundTruth::Planted { .. }) {
        return false;
    }
    let cfg = OracleConfig {
        memory: model,
        ..OracleConfig::default()
    };
    let OracleVerdict::Exposable { kind, obj, .. } = explore(&case.workload, &cfg).verdict else {
        return false;
    };
    let plan = derive_plan(&case.workload, 1, model);
    let rep = synthesize_with_oracle(&case.workload, &plan, kind, obj, &cfg);
    let Some(patch) = rep.patch else {
        panic!("{model} seed {seed}: exposable plant not repaired");
    };
    let weakenings = patch.weakenings(&case.workload);
    assert!(
        !weakenings.is_empty(),
        "{model} seed {seed}: certified {} patch has no weakenings to test",
        patch.kind().label()
    );
    for (label, weakened) in weakenings {
        let verdict = explore(&weakened, &cfg).verdict;
        assert!(
            matches!(verdict, OracleVerdict::Exposable { .. }),
            "{model} seed {seed}: weakening `{label}` of the certified {} patch \
             still passes the oracle ({verdict:?}) — the patch is not minimal",
            patch.kind().label()
        );
    }
    true
}

proptest! {
    /// Random weak-population seeds: every certified fence (or costlier
    /// production) loses certification under every weakening.
    #[test]
    fn weak_population_repairs_are_minimal(
        seed in 0u64..4_294_967_296u64,
        pso in 0u8..2u8,
    ) {
        let model = if pso == 1 { MemoryModel::Pso } else { MemoryModel::Tso };
        weakenings_all_flip(seed, model);
    }
}

/// Deterministic sweep over the first seeds of all three populations, so
/// the property is exercised on a known-nonempty set of certified
/// patches (the proptest above may draw mostly controls in a short run).
#[test]
fn first_seeds_of_every_population_have_minimal_repairs() {
    for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
        let n = if model.is_sc() { 40 } else { 16 };
        let exercised = (0..n).filter(|&s| weakenings_all_flip(s, model)).count();
        assert!(
            exercised >= 4,
            "{model}: only {exercised} certified patches exercised"
        );
    }
}
