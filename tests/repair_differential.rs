//! The fix-synthesis contract: every oracle-exposable planted bug in both
//! generator populations gets an oracle-certified repair, bug-free
//! controls never get one, repaired workloads replay clean under all four
//! detectors, the repair-bearing report stays byte-identical at every
//! worker count, the curated `weak.*` and Table 3/4 expected-repair
//! annotations match what synthesis actually produces, and the crafted
//! repair corpus (a lock-requiring case and a grammar-escaping case)
//! replays forever.

use std::fs;
use std::path::PathBuf;

use waffle_repro::apps::{all_apps, weak_scenarios};
use waffle_repro::core::{Detector, DetectorConfig, Tool};
use waffle_repro::fuzz::{
    derive_plan, explore, generate_case_for_model, run_fuzz, synthesize_with_oracle, FuzzCase,
    FuzzConfig, FuzzReport, GroundTruth, OracleConfig, OracleVerdict, RepairCorpusCase,
};
use waffle_repro::mem::NullRefKind;
use waffle_repro::sim::{
    Cond, MemoryConfig, MemoryModel, RepairKind, SimTime, WorkloadBuilder,
};

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

fn repair_sweep(seeds: u64, model: MemoryModel, jobs: usize) -> (FuzzConfig, FuzzReport) {
    let cfg = FuzzConfig {
        seeds,
        seed_base: 0,
        jobs,
        memory: model,
        repair: true,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg);
    (cfg, report)
}

/// Checks the per-population repair invariants on a finished sweep and
/// returns the certified (seed, patch) pairs for replay:
/// every oracle-exposable planted case carries a certified repair of the
/// population's expected production, and no control (nor unexposable
/// plant) carries any repair attempt at all.
fn check_population(report: &FuzzReport, expected: RepairKind) -> Vec<u64> {
    assert!(
        report.disagreements.is_empty(),
        "oracle/detector disagreements: {:?}",
        report.disagreements
    );
    let mut certified_seeds = Vec::new();
    for case in &report.cases {
        let planted = matches!(case.truth, GroundTruth::Planted { .. });
        if planted && case.oracle.exposable {
            let rep = case
                .repair
                .as_ref()
                .unwrap_or_else(|| panic!("seed {}: exposable plant without repair", case.seed));
            assert!(
                rep.certified(),
                "seed {}: repair not certified after {} candidates",
                case.seed,
                rep.candidates_tried
            );
            assert_eq!(
                rep.repair_kind(),
                Some(expected),
                "seed {}: unexpected production {:?}",
                case.seed,
                rep.repair_kind()
            );
            assert!(rep.certified_states > 0, "seed {}: empty certificate", case.seed);
            certified_seeds.push(case.seed);
        } else {
            assert!(
                case.repair.is_none(),
                "seed {}: {} case must not carry a repair",
                case.seed,
                if planted { "unexposable planted" } else { "control" }
            );
        }
    }
    assert!(
        !certified_seeds.is_empty(),
        "population produced no exposable plant to repair"
    );
    // Aggregate counters cross-check the per-case reports.
    let attempted = report.metrics.counter("repair/attempted");
    assert_eq!(attempted, certified_seeds.len() as u64);
    assert_eq!(report.metrics.counter("repair/certified"), attempted);
    assert_eq!(report.metrics.counter("repair/unrepairable"), 0);
    certified_seeds
}

/// Applies each certified patch and replays the patched workload under
/// all four detectors at the default budget: no tool may expose a
/// MemOrder bug (or see a spontaneous manifestation) on a repaired case.
fn replay_repaired(report: &FuzzReport, seeds: &[u64], model: MemoryModel) {
    let detector_cfg = DetectorConfig {
        memory: MemoryConfig::from_model(model),
        ..DetectorConfig::default()
    };
    for &seed in seeds {
        let case = report
            .cases
            .iter()
            .find(|c| c.seed == seed)
            .expect("seed present in report");
        let patch = case
            .repair
            .as_ref()
            .and_then(|r| r.patch.as_ref())
            .expect("certified patch");
        let workload = generate_case_for_model(seed, model).workload;
        let patched = patch.apply(&workload).expect("certified patch applies");
        for name in ["waffle", "basic", "tsvd", "noprep"] {
            let tool = Tool::by_name(name).expect("known tool");
            let outcome =
                Detector::with_config(tool, detector_cfg.clone()).detect(&patched, 1);
            assert!(
                outcome.exposed.is_none(),
                "seed {seed}: {name} exposed a bug on the repaired workload: {:?}",
                outcome.exposed
            );
            assert!(
                !outcome.spontaneous,
                "seed {seed}: spontaneous manifestation on the repaired workload under {name}"
            );
        }
    }
}

/// The sc generator population: every oracle-exposable plant is repaired
/// with a certified ordering edge (fences are no-ops under sc), controls
/// get nothing, and the repaired workloads replay clean under all four
/// detectors.
#[test]
fn sc_population_repairs_are_certified_event_edges() {
    let (_, report) = repair_sweep(60, MemoryModel::Sc, 2);
    let seeds = check_population(&report, RepairKind::EventEdge);
    replay_repaired(&report, &seeds, MemoryModel::Sc);
}

/// The weak-memory populations: every oracle-exposable tso/pso plant is
/// repaired with a certified fence — the cheapest production, tried
/// before any ordering edge — and the repaired workloads replay clean.
#[test]
fn weak_populations_repair_with_certified_fences() {
    for model in [MemoryModel::Tso, MemoryModel::Pso] {
        let (_, report) = repair_sweep(16, model, 2);
        let seeds = check_population(&report, RepairKind::Fence);
        replay_repaired(&report, &seeds, model);
    }
}

/// `waffle fuzz --repair` output is byte-identical at any `--jobs`, like
/// the repair-free report (`tests/fuzz_differential.rs`).
#[test]
fn repair_report_is_bit_identical_at_every_job_count() {
    let reports: Vec<String> = JOB_COUNTS
        .iter()
        .map(|&jobs| {
            let (_, report) = repair_sweep(16, MemoryModel::Sc, jobs);
            report.to_json().expect("serializable report")
        })
        .collect();
    assert_eq!(reports[0], reports[1], "jobs 1 vs 2 diverge");
    assert_eq!(reports[0], reports[2], "jobs 1 vs 8 diverge");
}

/// The curated `weak.*` scenarios carry expected-repair annotations;
/// synthesis must reproduce them exactly: each planted reordering is
/// fixed by a certified fence, and the fenced controls are unexposable
/// (nothing to repair).
#[test]
fn weak_scenario_annotations_match_synthesis() {
    for sc in weak_scenarios() {
        let cfg = OracleConfig {
            memory: sc.model,
            ..OracleConfig::default()
        };
        let r = explore(&sc.workload, &cfg);
        match sc.expected_repair {
            Some(expected) => {
                let OracleVerdict::Exposable { kind, obj, .. } = r.verdict else {
                    panic!("weak.{}: annotated but not exposable ({:?})", sc.name, r.verdict);
                };
                let plan = derive_plan(&sc.workload, 1, sc.model);
                let rep = synthesize_with_oracle(&sc.workload, &plan, kind, obj, &cfg);
                assert_eq!(
                    rep.repair_kind(),
                    Some(expected),
                    "weak.{}: synthesis produced {:?}",
                    sc.name,
                    rep.repair_kind()
                );
            }
            None => assert!(
                !matches!(r.verdict, OracleVerdict::Exposable { .. }),
                "weak.{}: control is exposable",
                sc.name
            ),
        }
    }
}

/// The 18 curated Table 4 bugs carry expected-repair annotations;
/// synthesis must reproduce them: 15 certify an ordering edge, and the
/// three whose real fix lies outside the grammar (Bug-3, Bug-6, Bug-9 —
/// recurring per-dispatch races no single edge or scoped lock closes)
/// are reported unrepairable with a nonzero tried count, never patched.
#[test]
fn curated_bug_annotations_match_synthesis() {
    let cfg = OracleConfig::default();
    for app in all_apps() {
        for bug in &app.bugs {
            let w = app.bug_workload(bug.id).expect("bug workload");
            let OracleVerdict::Exposable { kind, obj, .. } = explore(w, &cfg).verdict else {
                panic!("Bug-{}: not oracle-exposable", bug.id);
            };
            let plan = derive_plan(w, 1, MemoryModel::Sc);
            let rep = synthesize_with_oracle(w, &plan, kind, obj, &cfg);
            assert_eq!(
                rep.repair_kind(),
                bug.expected_repair,
                "Bug-{} ({}): synthesis produced {:?}, annotation says {:?}",
                bug.id,
                bug.test_name,
                rep.repair_kind(),
                bug.expected_repair
            );
            if bug.expected_repair.is_none() {
                assert!(!rep.certified(), "Bug-{}: bogus certificate", bug.id);
                assert!(rep.patch.is_none(), "Bug-{}: uncertified patch", bug.id);
                assert!(
                    rep.candidates_tried > 0,
                    "Bug-{}: unrepairable verdict without trying the grammar",
                    bug.id
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Crafted corpus: a case only the lock production can repair, and a case
// no production can.
// ---------------------------------------------------------------------

/// Two readers of distinct scripts race one late initialization. Each
/// event edge orders only one reader; a lock cannot impose any order at
/// all (main's access region spans `join_children`, so it is not even
/// lockable). The real fix — e.g. initializing before forking — lies
/// outside the grammar, so synthesis must report the case unrepairable.
fn grammar_escaping_workload() -> FuzzCase {
    let mut b = WorkloadBuilder::new("repair.two_readers");
    let racy = b.object("racy");
    let r1 = b.script("r1", move |s| {
        s.compute(SimTime::from_ms(12))
            .use_(racy, "r1.use", SimTime::from_us(50));
    });
    let r2 = b.script("r2", move |s| {
        s.compute(SimTime::from_ms(14))
            .use_(racy, "r2.use", SimTime::from_us(50));
    });
    let main = b.script("main", move |s| {
        s.fork(r1)
            .fork(r2)
            .compute(SimTime::from_ms(10))
            .init(racy, "racy.init", SimTime::from_us(100))
            .join_children()
            .dispose(racy, "racy.dispose", SimTime::from_us(50));
    });
    b.main(main);
    FuzzCase {
        seed: 0,
        workload: b.build(),
        truth: GroundTruth::Planted {
            kind: NullRefKind::UseBeforeInit,
            obj: racy,
        },
    }
}

/// Two instances of the *same* guarded-reader script race a dispose
/// behind a check-then-act window. Events are sticky — one signal
/// releases every current and future waiter — so no event edge can count
/// readers: the closer proceeds after the first signal while the second
/// reader sits between its guard and its use. Only the lock production
/// (check and use atomic against the dispose) certifies.
fn lock_requiring_workload() -> FuzzCase {
    let mut b = WorkloadBuilder::new("repair.guarded_readers");
    let slot = b.object("slot");
    let reader = b.script("reader", move |s| {
        s.compute(SimTime::from_ms(3))
            .skip_if(slot, Cond::IsDisposed, 1)
            .use_(slot, "slot.use", SimTime::from_us(50));
    });
    let closer = b.script("closer", move |s| {
        s.compute(SimTime::from_ms(10))
            .dispose(slot, "slot.dispose", SimTime::from_us(50));
    });
    let main = b.script("main", move |s| {
        s.init(slot, "slot.init", SimTime::from_us(100))
            .fork(reader)
            .fork(reader)
            .fork(closer)
            .join_children();
    });
    b.main(main);
    FuzzCase {
        seed: 0,
        workload: b.build(),
        truth: GroundTruth::Planted {
            kind: NullRefKind::UseAfterFree,
            obj: slot,
        },
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/repair")
}

/// Every checked-in repair corpus case replays to exactly its pinned
/// outcome: the lock-requiring case re-certifies a lock, and the
/// grammar-escaping case stays unrepairable — with candidates actually
/// tried and no patch ever attached.
#[test]
fn repair_corpus_replays_forever() {
    let mut replayed = 0;
    for entry in fs::read_dir(corpus_dir()).expect("tests/corpus/repair exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().map(|e| e != "json").unwrap_or(true) {
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable corpus case");
        let case = RepairCorpusCase::from_json(&text).expect("valid corpus JSON");
        let rep = case.replay().expect("case still oracle-exposable");
        assert_eq!(
            rep.repair_kind(),
            case.expected,
            "{} ({}): synthesis drifted to {:?}",
            path.display(),
            case.label,
            rep.repair_kind()
        );
        assert!(
            rep.candidates_tried > 0,
            "{}: verdict reached without trying the grammar",
            path.display()
        );
        if case.expected.is_none() {
            assert!(rep.patch.is_none(), "{}: uncertified patch", path.display());
            assert_eq!(rep.certified_states, 0, "{}: phantom certificate", path.display());
        }
        replayed += 1;
    }
    assert!(replayed >= 2, "repair corpus must hold both crafted cases");
}

/// The lock-requiring corpus case is also a deterministic minimality
/// witness: weakening the certified lock in any grammar-defined way
/// (covering only one script, or dropping it) flips the oracle back to
/// exposable.
#[test]
fn lock_repair_is_minimal() {
    let case = lock_requiring_workload();
    let cfg = OracleConfig::default();
    let OracleVerdict::Exposable { kind, obj, .. } = explore(&case.workload, &cfg).verdict else {
        panic!("lock corpus case not exposable");
    };
    let plan = derive_plan(&case.workload, 1, MemoryModel::Sc);
    let rep = synthesize_with_oracle(&case.workload, &plan, kind, obj, &cfg);
    let patch = rep.patch.expect("lock case certifies");
    assert_eq!(patch.kind(), RepairKind::LockScope);
    for (label, weakened) in patch.weakenings(&case.workload) {
        let verdict = explore(&weakened, &cfg).verdict;
        assert!(
            matches!(verdict, OracleVerdict::Exposable { .. }),
            "weakening {label} still certifies: {verdict:?}"
        );
    }
}

/// Mints the two crafted corpus cases. Ignored by default: run with
/// `WAFFLE_WRITE_REPAIR_CORPUS=1 cargo test -- --ignored mint_repair`
/// after changing the synthesis grammar, then review the diff.
#[test]
#[ignore = "writes tests/corpus/repair/; set WAFFLE_WRITE_REPAIR_CORPUS=1"]
fn mint_repair_corpus() {
    if std::env::var("WAFFLE_WRITE_REPAIR_CORPUS").is_err() {
        return;
    }
    let entries = [
        (
            "guarded-readers.json",
            RepairCorpusCase {
                label: "two same-script guarded readers vs dispose: sticky events cannot \
                        count waiters, only the lock production certifies"
                    .into(),
                preemption_bound: OracleConfig::default().preemption_bound,
                memory: MemoryModel::Sc,
                expected: Some(RepairKind::LockScope),
                case: lock_requiring_workload(),
            },
        ),
        (
            "two-readers-unrepairable.json",
            RepairCorpusCase {
                label: "two distinct readers vs late init: each edge orders one reader, \
                        no lockable region orders init — unrepairable within the grammar"
                    .into(),
                preemption_bound: OracleConfig::default().preemption_bound,
                memory: MemoryModel::Sc,
                expected: None,
                case: grammar_escaping_workload(),
            },
        ),
    ];
    let dir = corpus_dir();
    fs::create_dir_all(&dir).expect("create corpus dir");
    for (file, entry) in entries {
        let rep = entry.replay().expect("crafted case oracle-exposable");
        assert_eq!(
            rep.repair_kind(),
            entry.expected,
            "{file}: crafted case does not behave as designed ({:?}, tried {})",
            rep.repair_kind(),
            rep.candidates_tried
        );
        fs::write(dir.join(file), entry.to_json().expect("serializable")).expect("write corpus");
    }
}

/// The crafted cases exercise real workloads, so keep their oracle truth
/// honest even without the JSON files: the lock case and the escape case
/// are both exposable within the default bound. (The full pinned
/// behavior is covered by `repair_corpus_replays_forever`.)
#[test]
fn crafted_cases_are_exposable() {
    let cfg = OracleConfig::default();
    for case in [lock_requiring_workload(), grammar_escaping_workload()] {
        let GroundTruth::Planted { kind, .. } = case.truth else {
            unreachable!()
        };
        match explore(&case.workload, &cfg).verdict {
            OracleVerdict::Exposable { kind: k, .. } => assert_eq!(k, kind),
            v => panic!("{}: not exposable ({v:?})", case.workload.name),
        }
    }
}
