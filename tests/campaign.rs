//! The campaign runner's crash-safety contract, exercised on the real
//! benchmark suite: a campaign killed between cells (or mid-checkpoint)
//! and rerun with `--resume` produces a `report.json` byte-identical to
//! an uninterrupted run at `--jobs 1` and `--jobs 4`, and a panicking
//! cell is quarantined without disturbing its neighbours.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use waffle_repro::apps::all_apps;
use waffle_repro::core::{
    Campaign, CampaignConfig, CellFault, CellSpec, CellStatus, RunOptions,
};
use waffle_repro::sim::Workload;

fn resolve(name: &str) -> Option<Workload> {
    all_apps()
        .into_iter()
        .flat_map(|a| a.tests)
        .find(|t| t.workload.name == name)
        .map(|t| t.workload)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("waffle-camp-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config() -> CampaignConfig {
    CampaignConfig {
        max_detection_runs: 6,
        ..CampaignConfig::default()
    }
}

/// A 2×2 grid over real suite inputs: one seeded bug, one cleanup-heavy
/// input, under Waffle and the WaffleBasic ablation.
fn grid() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for test in ["SshNet.channel_disconnect", "NetMQ.runtime_cleanup"] {
        for tool in ["waffle", "basic"] {
            cells.push(CellSpec::new(test, tool, 3));
        }
    }
    cells
}

fn report_bytes(dir: &std::path::Path) -> String {
    fs::read_to_string(dir.join("report.json")).expect("report.json written")
}

#[test]
fn interrupted_campaign_resumes_byte_identical_at_jobs_1_and_4() {
    // Reference: one uninterrupted run.
    let ref_dir = tmpdir("ref");
    let reference = Campaign::create(&ref_dir, config(), grid()).unwrap();
    let ref_report = reference
        .run(&RunOptions { jobs: 2, ..RunOptions::default() }, resolve)
        .unwrap()
        .report
        .expect("uninterrupted run completes");
    let ref_bytes = report_bytes(&ref_dir);
    assert!(ref_report.telemetry.runs > 0, "telemetry folded into report");

    for jobs in [1usize, 4] {
        let dir = tmpdir(&format!("resume-j{jobs}"));
        let c = Campaign::create(&dir, config(), grid()).unwrap();
        // "Kill" after the first checkpoint lands.
        let partial = c
            .run(
                &RunOptions { jobs, max_cells: Some(1), ..RunOptions::default() },
                resolve,
            )
            .unwrap();
        assert_eq!(partial.ran.len(), 1);
        assert_eq!(partial.outstanding, 3);
        assert!(partial.report.is_none());
        assert!(!dir.join("report.json").exists());
        // Resume runs only the outstanding cells …
        let resumed = c
            .run(&RunOptions { jobs, resume: true, ..RunOptions::default() }, resolve)
            .unwrap();
        assert_eq!(resumed.skipped, 1);
        assert_eq!(resumed.ran.len(), 3);
        // … and the report — folded telemetry counters included — is
        // byte-identical to the uninterrupted reference.
        let report = resumed.report.expect("resume completes the campaign");
        assert_eq!(report.telemetry, ref_report.telemetry, "jobs = {jobs}");
        assert_eq!(report_bytes(&dir), ref_bytes, "jobs = {jobs}");
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&ref_dir);
}

#[test]
fn checkpoint_truncated_by_a_crash_is_rerun_on_resume() {
    let ref_dir = tmpdir("trunc-ref");
    Campaign::create(&ref_dir, config(), grid())
        .unwrap()
        .run(&RunOptions::default(), resolve)
        .unwrap();
    let ref_bytes = report_bytes(&ref_dir);

    let dir = tmpdir("trunc");
    let c = Campaign::create(&dir, config(), grid()).unwrap();
    c.run(
        &RunOptions { max_cells: Some(2), ..RunOptions::default() },
        resolve,
    )
    .unwrap();
    // A crash mid-write would leave a partial checkpoint only if the write
    // were not atomic; simulate the worst case anyway by truncating one.
    let ckpt = dir.join("cell-0001.json");
    let full = fs::read_to_string(&ckpt).unwrap();
    fs::write(&ckpt, &full[..full.len() / 2]).unwrap();
    let resumed = c
        .run(&RunOptions { resume: true, jobs: 4, ..RunOptions::default() }, resolve)
        .unwrap();
    // The truncated cell is treated as outstanding and recomputed.
    assert_eq!(resumed.skipped, 1);
    assert_eq!(resumed.ran.len(), 3);
    assert_eq!(fs::read_to_string(&ckpt).unwrap(), full, "recomputed bit-identically");
    assert_eq!(report_bytes(&dir), ref_bytes);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&ref_dir);
}

/// The same interrupt/resume cycle driven through the CLI in separate OS
/// processes — the shape a real crash takes.
#[test]
fn cli_resume_across_processes_matches_uninterrupted_report() {
    let waffle = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_waffle"))
            .args(args)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "waffle {args:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let init = |dir: &str| {
        waffle(&[
            "campaign", "init", dir,
            "--tests", "SshNet.channel_disconnect,NetMQ.runtime_cleanup",
            "--tools", "waffle,basic",
            "--attempts", "3",
            "--max-runs", "6",
        ]);
    };
    let ref_dir = tmpdir("cli-ref");
    let dir = tmpdir("cli-resume");
    let ref_s = ref_dir.to_string_lossy().to_string();
    let dir_s = dir.to_string_lossy().to_string();

    init(&ref_s);
    waffle(&["campaign", "run", &ref_s, "--jobs", "2"]);

    init(&dir_s);
    // Process 1 checkpoints one cell and exits (simulated kill).
    waffle(&["campaign", "run", &dir_s, "--max-cells", "1"]);
    let status = waffle(&["campaign", "status", &dir_s]);
    assert!(status.contains("1/4 cells checkpointed"), "status: {status}");
    // Process 2 refuses to clobber the checkpoints without a decision …
    let out = Command::new(env!("CARGO_BIN_EXE_waffle"))
        .args(["campaign", "run", &dir_s])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "bare rerun must refuse existing checkpoints");
    // … and a third process resumes to the byte-identical report.
    waffle(&["campaign", "run", &dir_s, "--resume", "--jobs", "4"]);
    assert_eq!(report_bytes(&dir), report_bytes(&ref_dir));
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&ref_dir);
}

#[test]
fn panicking_cell_on_real_suite_is_quarantined_and_neighbours_stand() {
    let ref_dir = tmpdir("quar-ref");
    let ref_report = Campaign::create(&ref_dir, config(), grid())
        .unwrap()
        .run(&RunOptions::default(), resolve)
        .unwrap()
        .report
        .unwrap();

    let dir = tmpdir("quar");
    let mut cells = grid();
    cells[2].fault = Some(CellFault { attempt: 0, panics: u32::MAX });
    let c = Campaign::create(&dir, config(), cells).unwrap();
    let report = c
        .run(&RunOptions { jobs: 4, ..RunOptions::default() }, resolve)
        .unwrap()
        .report
        .expect("campaign completes despite the panicking cell");
    assert_eq!(report.quarantined, vec![2]);
    assert_eq!(report.cells[2].status, CellStatus::Failed);
    assert!(report.cells[2].summary.is_none());
    for i in [0usize, 1, 3] {
        assert_eq!(
            report.cells[i].summary, ref_report.cells[i].summary,
            "cell {i} must be untouched by its neighbour's panic"
        );
    }
    let rendered = report.render();
    assert!(rendered.contains("quarantine:"));
    assert!(rendered.contains("1 quarantined"));
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&ref_dir);
}
