//! Suite-wide sanity: every workload in the benchmark suite is clean when
//! run delay-free, and the static inventory matches the paper's.

use waffle_repro::apps::{all_apps, all_bugs};
use waffle_repro::sim::{NullMonitor, SimConfig, Simulator};

#[test]
fn every_test_input_is_clean_delay_free() {
    for app in all_apps() {
        for t in &app.tests {
            for seed in [0u64, 7, 99] {
                let cfg = SimConfig {
                    seed,
                    timing_noise_pct: 3,
                    ..SimConfig::default()
                };
                let r = Simulator::run(&t.workload, cfg, &mut NullMonitor);
                assert!(
                    !r.manifested(),
                    "{} manifested delay-free (seed {seed}): {:?}",
                    t.workload.name,
                    r.exceptions
                );
                assert_eq!(
                    r.stranded_threads, 0,
                    "{} stranded threads",
                    t.workload.name
                );
                assert!(!r.timed_out, "{} timed out", t.workload.name);
            }
        }
    }
}

#[test]
fn base_times_follow_table4() {
    // Bug-input base times should be within ±25% of Table 4's numbers.
    for spec in all_bugs() {
        let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
        let w = app.bug_workload(spec.id).unwrap();
        let r = Simulator::run(w, SimConfig::with_seed(0), &mut NullMonitor);
        let measured = r.end_time.as_ms() as f64;
        let paper = spec.paper.base_ms as f64;
        assert!(
            (measured - paper).abs() / paper < 0.25,
            "Bug-{}: base {measured}ms vs paper {paper}ms",
            spec.id
        );
    }
}

#[test]
fn mem_order_sites_dominate_tsv_sites() {
    // The Table 2 shape: MemOrder instrumentation sites far outnumber the
    // thread-unsafe API call sites.
    for app in all_apps() {
        let mo: usize = app.tests.iter().map(|t| t.workload.mem_order_sites()).sum();
        let tsv: usize = app.tests.iter().map(|t| t.workload.tsv_sites()).sum();
        assert!(
            mo >= tsv * 5,
            "{}: MO sites {mo} vs TSV sites {tsv}",
            app.name
        );
    }
}

#[test]
fn suite_accounting_matches_the_paper() {
    let bugs = all_bugs();
    assert_eq!(bugs.len(), 18);
    assert_eq!(bugs.iter().filter(|b| b.known).count(), 12);
    assert_eq!(all_apps().len(), 11);
    // The seven bugs the paper reports WaffleBasic missing.
    let missed: Vec<u32> = bugs
        .iter()
        .filter(|b| b.paper.basic_runs.is_none())
        .map(|b| b.id)
        .collect();
    assert_eq!(missed, vec![8, 10, 12, 13, 15, 16, 17]);
}
