//! Report-content validation: for every seeded bug that Waffle exposes,
//! the report identifies the right site, object class, and context.

use waffle_repro::apps::{all_apps, all_bugs};
use waffle_repro::core::{Detector, DetectorConfig, Tool};
use waffle_repro::mem::NullRefKind;

#[test]
fn every_exposed_report_names_a_real_site_with_context() {
    let det = Detector::with_config(
        Tool::waffle(),
        DetectorConfig {
            max_detection_runs: 10,
            ..DetectorConfig::default()
        },
    );
    for spec in all_bugs() {
        let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
        let w = app.bug_workload(spec.id).unwrap().clone();
        // One attempt suffices here; the shape test covers reliability.
        let Some(report) = det.detect(&w, 1).exposed else {
            // A rare unlucky seed is acceptable for the heavy bugs; the
            // shape test (3 attempts) guards reliability.
            continue;
        };
        // The faulting site exists in the workload's registry.
        assert!(
            w.sites.lookup(&report.site).is_some(),
            "Bug-{}: unknown site {}",
            spec.id,
            report.site
        );
        // Delays were injected, and the report names the delayed sites.
        assert!(report.delays_in_run >= 1, "Bug-{}", spec.id);
        assert!(!report.delayed_sites.is_empty(), "Bug-{}", spec.id);
        for s in &report.delayed_sites {
            assert!(w.sites.lookup(s).is_some(), "Bug-{}: delayed {s}", spec.id);
        }
        // Thread contexts were captured, exactly one thread faulted, and
        // the faulting thread's last recent access is the faulting site.
        assert!(!report.thread_contexts.is_empty(), "Bug-{}", spec.id);
        let faulting: Vec<_> = report
            .thread_contexts
            .iter()
            .filter(|c| c.faulting)
            .collect();
        assert_eq!(faulting.len(), 1, "Bug-{}", spec.id);
        let last = faulting[0]
            .recent
            .last()
            .expect("faulting context has ops");
        assert_eq!(
            w.sites.name(last.site),
            report.site,
            "Bug-{}: context/site mismatch",
            spec.id
        );
        // The bug class is a MemOrder class (never DisposeOnNull, which
        // our workloads cannot produce under injection).
        assert!(
            matches!(
                report.kind,
                NullRefKind::UseBeforeInit | NullRefKind::UseAfterFree
            ),
            "Bug-{}",
            spec.id
        );
        // The render is non-trivial and mentions the site.
        let rendered = report.render(&w.sites);
        assert!(rendered.contains(&report.site), "Bug-{}", spec.id);
        assert!(rendered.lines().count() >= 4, "Bug-{}", spec.id);
    }
}

#[test]
fn fig4a_bugs_manifest_as_use_before_init_and_fig4b_as_use_after_free() {
    let det = Detector::new(Tool::waffle());
    for (id, expected) in [
        (10u32, NullRefKind::UseBeforeInit), // ApplicationInsights #1106
        (8, NullRefKind::UseBeforeInit),     // LiteDB #1028
        (13, NullRefKind::UseBeforeInit),    // SignalR
        (11, NullRefKind::UseAfterFree),     // NetMQ #814
        (15, NullRefKind::UseAfterFree),     // NetMQ #975
    ] {
        let spec = all_bugs().into_iter().find(|b| b.id == id).unwrap();
        let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
        let w = app.bug_workload(id).unwrap().clone();
        let report = det.detect(&w, 1).exposed.expect("exposed");
        assert_eq!(report.kind, expected, "Bug-{id}");
    }
}
