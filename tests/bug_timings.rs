//! Parameter pins: the seeded bugs' timing properties, measured from
//! preparation runs, must stay where the Table 4 tuning put them. These
//! tests guard the workload parameters against accidental regression —
//! the detection shapes (runs, misses) all derive from these gaps.

use waffle_repro::analysis::{analyze, AnalyzerConfig, BugKind, Plan};
use waffle_repro::apps::{all_apps, all_bugs};
use waffle_repro::sim::{SimConfig, SimTime, Simulator, Workload};
use waffle_repro::trace::TraceRecorder;

fn plan_for(id: u32) -> (Workload, Plan) {
    let spec = all_bugs().into_iter().find(|b| b.id == id).unwrap();
    let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
    let w = app.bug_workload(id).unwrap().clone();
    let mut rec = TraceRecorder::new(&w);
    let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
    let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
    (w, plan)
}

fn gap_of(w: &Workload, plan: &Plan, delay_site: &str) -> SimTime {
    let site = w.sites.lookup(delay_site).expect("site exists");
    plan.candidates
        .iter()
        .filter(|c| c.delay_site == site)
        .map(|c| c.max_gap)
        .max()
        .expect("candidate exists")
}

fn assert_ms_range(gap: SimTime, lo_ms: u64, hi_ms: u64, what: &str) {
    assert!(
        gap >= SimTime::from_ms(lo_ms) && gap <= SimTime::from_ms(hi_ms),
        "{what}: gap {gap} outside [{lo_ms}ms, {hi_ms}ms]"
    );
}

#[test]
fn single_instance_bug_gaps_are_pinned() {
    // (bug, delay site, expected gap band in ms)
    for (id, site, lo, hi) in [
        (1u32, "Channel.OnData:94", 35u64, 46u64), // 40ms gap
        (2, "Session.InitSemaphore:12", 22, 30),   // 25ms
        (5, "Generator.Emit:73", 26, 36),          // 30ms
        (7, "AssertionScope.FailWith:52", 54, 68), // 60ms
        (14, "TelemetryBuffer.ctor:14", 7, 10),    // 8ms
        (18, "Informer.GetCached:27", 13, 18),     // 15ms
    ] {
        let (w, plan) = plan_for(id);
        assert_ms_range(gap_of(&w, &plan, site), lo, hi, &format!("Bug-{id}"));
    }
}

#[test]
fn bug_4_has_the_tightest_gap_in_the_suite() {
    // NSubstitute #573: the ~2ms use-before-init.
    let (w, plan) = plan_for(4);
    let gap = gap_of(&w, &plan, "SubstituteBuilder.Build:11");
    assert!(
        gap >= SimTime::from_ms(1) && gap <= SimTime::from_ms(4),
        "Bug-4 gap {gap}"
    );
}

#[test]
fn fig4a_bugs_carry_both_candidate_kinds_and_interference() {
    for (id, init_site, use_site) in [
        (10u32, "DiagnosticsLstnr.ctor:2", "OnEventWritten:8"),
        (8, "TransactionMonitor.Create:21", "Checkpoint.ReadSlot:64"),
        (13, "HubConnection.OnConnected:22", "Hub.InvokeClient:57"),
    ] {
        let (w, plan) = plan_for(id);
        let kinds: Vec<BugKind> = plan.candidates.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&BugKind::UseBeforeInit), "Bug-{id}");
        assert!(kinds.contains(&BugKind::UseAfterFree), "Bug-{id}");
        let a = w.sites.lookup(init_site).unwrap();
        let b = w.sites.lookup(use_site).unwrap();
        assert!(
            plan.interference.interferes(a, b),
            "Bug-{id}: the two delay sites must interfere"
        );
    }
}

#[test]
fn fig4b_bugs_carry_the_self_interference_pair() {
    for (id, check_site) in [
        (11u32, "ChkDisposed:11"),
        (15, "Worker.Dequeue:48"),
        (12, "Command.CheckPrepared:41"),
        (16, "PacketDispatcher.Check:19"),
        (17, "PublishQueue.Peek:44"),
    ] {
        let (w, plan) = plan_for(id);
        let s = w.sites.lookup(check_site).unwrap();
        assert!(
            plan.interference.interferes(s, s),
            "Bug-{id}: missing (ℓ, ℓ) self-interference for {check_site}"
        );
    }
}

#[test]
fn heavy_bugs_have_dense_candidate_sets() {
    // The NpgSQL/MQTT inputs carry the hot churn sites that flood
    // WaffleBasic and interfere with Waffle's critical delay.
    for (id, min_delay_sites) in [(12u32, 20usize), (16, 30), (17, 30)] {
        let (_w, plan) = plan_for(id);
        assert!(
            plan.delay_len.len() >= min_delay_sites,
            "Bug-{id}: only {} delay sites",
            plan.delay_len.len()
        );
    }
    // The light single-instance bugs stay sparse.
    for id in [1u32, 5, 7] {
        let (_w, plan) = plan_for(id);
        assert!(
            plan.delay_len.len() <= 10,
            "Bug-{id}: {} delay sites is no longer sparse",
            plan.delay_len.len()
        );
    }
}

#[test]
fn recurring_bugs_expose_multiple_dynamic_instances() {
    for (id, site) in [
        (3u32, "CallRouter.Route:42"),
        (6, "Formatter.ToString:88"),
        (9, "Watcher.OnEvent:71"),
    ] {
        let spec = all_bugs().into_iter().find(|b| b.id == id).unwrap();
        let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
        let w = app.bug_workload(id).unwrap().clone();
        let r = Simulator::run(
            &w,
            SimConfig::with_seed(1),
            &mut waffle_repro::sim::NullMonitor,
        );
        let s = w.sites.lookup(site).unwrap();
        assert!(
            r.site_dyn_counts[&s] >= 4,
            "Bug-{id}: {site} must recur (got {})",
            r.site_dyn_counts[&s]
        );
    }
}
