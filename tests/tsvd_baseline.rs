//! The TSVD comparison tooling: thread-safety-violation detection over the
//! same simulator.

use waffle_repro::inject::{TsvdPolicy, TsvdState};
use waffle_repro::sim::time::{ms, us};
use waffle_repro::sim::{NullMonitor, SimConfig, Simulator, Workload, WorkloadBuilder};

/// Two threads make staggered thread-unsafe calls on a dictionary — never
/// overlapping without delays, always near misses.
fn tsv_workload() -> Workload {
    let mut b = WorkloadBuilder::new("it.tsv");
    let dict = b.object("dict");
    let started = b.event("s");
    let worker = b.script("worker", move |s| {
        s.wait(started);
        s.repeat(4, |s, r| {
            s.unsafe_call(dict, &format!("Worker.Add:{r}"), us(500))
                .pad(ms(90));
        });
    });
    let main = b.script("main", move |s| {
        s.init(dict, "M.ctor:1", us(30))
            .fork(worker)
            .signal(started)
            .pad(ms(45));
        s.repeat(4, |s, r| {
            s.unsafe_call(dict, &format!("Main.Get:{r}"), us(500))
                .pad(ms(90));
        });
        s.join_children();
    });
    b.main(main);
    b.build()
}

#[test]
fn no_violation_without_delays() {
    let w = tsv_workload();
    let r = Simulator::run(&w, SimConfig::with_seed(0), &mut NullMonitor);
    assert!(r.tsv_violations.is_empty());
}

#[test]
fn tsvd_exposes_the_overlap_within_two_runs() {
    let w = tsv_workload();
    let mut state = TsvdState::default();
    let mut exposed_in = None;
    for run in 1..=3u64 {
        let mut p = TsvdPolicy::new(state, run);
        let r = Simulator::run(&w, SimConfig::with_seed(run), &mut p);
        state = p.into_state();
        if !r.tsv_violations.is_empty() {
            exposed_in = Some(run);
            break;
        }
    }
    assert!(
        matches!(exposed_in, Some(1) | Some(2)),
        "TSVD should expose within two runs, got {exposed_in:?}"
    );
}

#[test]
fn tsvd_candidates_are_bidirectional() {
    let w = tsv_workload();
    let mut p = TsvdPolicy::new(TsvdState::default(), 1);
    let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut p);
    let st = p.into_state();
    // Near-missing calls produce delay candidates in both directions.
    let worker_site = w.sites.lookup("Worker.Add:0");
    let main_site = w.sites.lookup("Main.Get:0");
    assert!(worker_site.is_some() && main_site.is_some());
    assert!(st.delay_sites() >= 2, "sites: {:?}", st.candidates);
}

#[test]
fn tsvd_overlap_stays_low_on_staggered_schedules() {
    // The §3.3 claim: TSVD's sparse candidate sites keep delay overlap low.
    let w = tsv_workload();
    let mut state = TsvdState::default();
    let mut ratios = Vec::new();
    for run in 1..=4u64 {
        let mut p = TsvdPolicy::new(state, run);
        let r = Simulator::run(&w, SimConfig::with_seed(run * 17), &mut p);
        state = p.into_state();
        if !r.delays.is_empty() {
            ratios.push(r.delay_overlap_ratio());
        }
    }
    assert!(!ratios.is_empty());
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg < 0.2, "TSVD overlap too high: {avg:.2}");
}
