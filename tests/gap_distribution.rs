//! §4.3 fidelity: "for the 12 known bugs in our evaluation, measurements
//! reveal that these time gaps range from less than 1 to around 100
//! milliseconds." The seeded bugs' preparation-run gaps must span that
//! range.

use waffle_repro::analysis::{analyze, AnalyzerConfig};
use waffle_repro::apps::{all_apps, all_bugs};
use waffle_repro::sim::{SimConfig, SimTime, Simulator};
use waffle_repro::trace::TraceRecorder;

/// The racing candidate's measured gap for one bug, from a preparation run.
fn bug_gap(id: u32) -> SimTime {
    let spec = all_bugs().into_iter().find(|b| b.id == id).unwrap();
    let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
    let w = app.bug_workload(id).unwrap().clone();
    let mut rec = TraceRecorder::new(&w);
    let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
    let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
    // The bug's own candidate is the one whose partner or delay site names
    // the seeded racing site; fall back to the largest gap.
    plan.candidates
        .iter()
        .map(|c| c.max_gap)
        .max()
        .expect("bug input has candidates")
}

#[test]
fn known_bug_gaps_span_sub_millisecond_to_hundred_milliseconds() {
    let known: Vec<u32> = all_bugs()
        .into_iter()
        .filter(|b| b.known)
        .map(|b| b.id)
        .collect();
    assert_eq!(known.len(), 12);
    let gaps: Vec<SimTime> = known.iter().map(|&id| bug_gap(id)).collect();
    // Every gap sits inside the near-miss window with headroom.
    for (id, gap) in known.iter().zip(&gaps) {
        assert!(
            *gap >= SimTime::from_us(500) && *gap <= SimTime::from_ms(110),
            "Bug-{id}: gap {gap} outside the paper's 1–100ms band"
        );
    }
    // The band is actually *used*: some gap at or below ~2 ms, some at or
    // above ~40 ms (the paper's "less than 1 to around 100 ms" spread).
    let min = gaps.iter().min().unwrap();
    let max = gaps.iter().max().unwrap();
    assert!(*min <= SimTime::from_ms(3), "smallest gap {min} too large");
    assert!(*max >= SimTime::from_ms(40), "largest gap {max} too small");
}

#[test]
fn planned_delays_exceed_their_gaps_by_the_alpha_margin() {
    for spec in all_bugs() {
        let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
        let w = app.bug_workload(spec.id).unwrap().clone();
        let mut rec = TraceRecorder::new(&w);
        let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
        let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
        for c in &plan.candidates {
            let planned = plan.delay_for(c.delay_site);
            assert!(
                planned >= c.max_gap.scale(115, 100),
                "Bug-{}: delay {planned} below α·gap for {}",
                spec.id,
                w.sites.name(c.delay_site)
            );
        }
    }
}
