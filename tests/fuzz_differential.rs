//! The fuzzing layer's contract: generated workloads never make the
//! detectors disagree with the bounded schedule oracle, the differential
//! report is bit-identical at every worker count, the oracle's verdicts
//! line up with the hand-curated Table 4 ground truth, and every corpus
//! case (a minimized historical disagreement) replays clean forever.

use std::fs;
use std::path::PathBuf;

use waffle_repro::apps::all_apps;
use waffle_repro::fuzz::{explore, run_fuzz, CorpusCase, FuzzConfig, OracleConfig};

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

/// A medium sweep over unseen generator seeds: zero disagreements of any
/// kind, and the aggregate counters cross-check the per-case reports.
#[test]
fn sweep_has_no_oracle_detector_disagreements() {
    let cfg = FuzzConfig {
        seeds: 60,
        seed_base: 0,
        jobs: 2,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg);

    assert!(
        report.disagreements.is_empty(),
        "oracle/detector disagreements: {:?}",
        report.disagreements
    );

    let planted = report.metrics.counter("fuzz/planted");
    let controls = report.metrics.counter("fuzz/controls");
    assert_eq!(planted + controls, 60, "every seed is classified");
    assert!(planted > 0 && controls > 0, "both categories generated");

    // The generator and oracle validate each other: exposable == planted.
    assert_eq!(report.metrics.counter("fuzz/oracle_exposable"), planted);
    assert_eq!(report.metrics.counter("fuzz/oracle_truncated"), 0);

    // Headline claims on unseen shapes: no false positives (implied by
    // zero disagreements) and no misses within the detection budget.
    assert_eq!(report.metrics.counter("fuzz/exposed/waffle"), planted);
}

/// `waffle fuzz` output is byte-identical at any `--jobs`, like the
/// experiment engine (`tests/engine_equivalence.rs`).
#[test]
fn fuzz_report_is_bit_identical_at_every_job_count() {
    let reports: Vec<String> = JOB_COUNTS
        .iter()
        .map(|&jobs| {
            let cfg = FuzzConfig {
                seeds: 24,
                seed_base: 100,
                jobs,
                ..FuzzConfig::default()
            };
            run_fuzz(&cfg).to_json().expect("serializable report")
        })
        .collect();
    assert_eq!(reports[0], reports[1], "jobs 1 vs 2 diverge");
    assert_eq!(reports[0], reports[2], "jobs 1 vs 8 diverge");
}

/// Every checked-in corpus case — a minimized workload that historically
/// made a detector contradict the oracle — replays with no disagreement
/// under the current defaults.
#[test]
fn corpus_cases_replay_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut replayed = 0;
    for entry in fs::read_dir(&dir).expect("tests/corpus exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none() || path.extension().unwrap() != "json" {
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable corpus case");
        let case = CorpusCase::from_json(&text).expect("valid corpus JSON");
        let disagreements = case.replay();
        assert!(
            disagreements.is_empty(),
            "{} ({}) regressed: {:?}",
            path.display(),
            case.label,
            disagreements
        );
        replayed += 1;
    }
    assert!(replayed >= 1, "corpus must hold at least one case");
}

/// The oracle independently confirms all 18 curated Table 4 bugs as
/// exposable within the default preemption bound — none by truncation.
#[test]
fn oracle_confirms_all_curated_bugs_exposable() {
    let cfg = OracleConfig::default();
    for app in all_apps() {
        for bug in &app.bugs {
            let workload = app
                .bug_workload(bug.id)
                .unwrap_or_else(|| panic!("Bug-{} has a workload", bug.id));
            let report = explore(workload, &cfg);
            assert!(
                report.exposable(),
                "Bug-{} ({}) not oracle-exposable: {:?} after {} states",
                bug.id,
                bug.test_name,
                report.verdict,
                report.states_explored
            );
        }
    }
}

/// The bug-free background tests are unexposable within the bound: no
/// schedule the injector could force raises a NULL-reference error, so
/// any detector report on them would be a genuine false positive.
#[test]
fn oracle_clears_background_tests() {
    let cfg = OracleConfig::default();
    for app in all_apps() {
        let test = app
            .background_tests()
            .next()
            .unwrap_or_else(|| panic!("{} has a background test", app.name));
        let report = explore(&test.workload, &cfg);
        assert!(
            !report.exposable(),
            "{} claims exposable on bug-free {}: {:?}",
            app.name,
            test.workload.name,
            report.verdict
        );
        assert!(
            !matches!(
                report.verdict,
                waffle_repro::fuzz::OracleVerdict::Truncated
            ),
            "{} truncated on {} after {} states",
            app.name,
            test.workload.name,
            report.states_explored
        );
    }
}
