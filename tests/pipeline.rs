//! End-to-end pipeline tests: workload → preparation run → analysis →
//! detection runs → bug report.

use waffle_repro::analysis::{analyze, AnalyzerConfig};
use waffle_repro::core::{Detector, DetectorConfig, Tool};
use waffle_repro::inject::DecayState;
use waffle_repro::mem::NullRefKind;
use waffle_repro::sim::time::{ms, us};
use waffle_repro::sim::{SimConfig, Simulator, Workload, WorkloadBuilder};
use waffle_repro::trace::TraceRecorder;

/// A two-candidate workload: a real use-after-free race plus an
/// event-ordered (safe) pair.
fn workload() -> Workload {
    let mut b = WorkloadBuilder::new("it.pipeline");
    let conn = b.object("conn");
    let log = b.object("log");
    let started = b.event("started");
    let logged = b.event("logged");
    let worker = b.script("worker", move |s| {
        s.wait(started)
            .pad(ms(5))
            .use_(conn, "Worker.poll:11", us(50))
            .use_(log, "Worker.log:20", us(50))
            .signal(logged);
    });
    let main = b.script("main", move |s| {
        s.init(conn, "Main.open:2", us(100))
            .init(log, "Main.logopen:3", us(100))
            .fork(worker)
            .signal(started)
            .pad(ms(25))
            .dispose(conn, "Main.close:8", us(50))
            .wait(logged)
            .dispose(log, "Main.logclose:9", us(50))
            .join_children();
    });
    b.main(main);
    b.build()
}

#[test]
fn full_pipeline_exposes_the_race_and_only_the_race() {
    let w = workload();
    let outcome = Detector::new(Tool::waffle()).detect(&w, 1);
    let report = outcome.exposed.expect("the race must be exposed");
    assert_eq!(report.kind, NullRefKind::UseAfterFree);
    assert_eq!(report.site, "Worker.poll:11");
    assert_eq!(report.total_runs, 2, "preparation + one detection run");
    assert!(report.delays_in_run >= 1);
    assert!(!outcome.spontaneous);
}

#[test]
fn plan_contains_both_candidates_with_sane_delay_lengths() {
    let w = workload();
    let mut rec = TraceRecorder::new(&w);
    let _ = Simulator::run(&w, SimConfig::with_seed(3), &mut rec);
    let trace = rec.into_trace();
    let plan = analyze(&trace, &AnalyzerConfig::default());
    // Both the racy pair and the event-ordered pair are near misses (the
    // analyzer cannot see event edges, only fork edges).
    assert_eq!(plan.candidates.len(), 2, "{:?}", plan.candidates);
    for c in &plan.candidates {
        let planned = plan.delay_for(c.delay_site);
        assert_eq!(planned, c.max_gap.scale(115, 100));
        assert!(planned > c.max_gap, "α > 1 must hold");
    }
    // Plan persistence round-trips.
    let back = waffle_repro::analysis::Plan::from_json(&plan.to_json().unwrap()).unwrap();
    assert_eq!(back.candidates, plan.candidates);
    assert_eq!(back.interference, plan.interference);
}

#[test]
fn event_ordered_candidate_never_manifests() {
    // Run many detection attempts: the log object's pair is event-ordered,
    // so the only exception ever raised is the conn use-after-free.
    let w = workload();
    for attempt in 1..=10 {
        let outcome = Detector::new(Tool::waffle()).detect(&w, attempt);
        if let Some(r) = &outcome.exposed {
            assert_eq!(r.site, "Worker.poll:11", "attempt {attempt}");
        }
    }
}

#[test]
fn decay_state_persists_meaningfully_across_runs() {
    // Exhaust the decay budget up front: no delays can fire and detection
    // must come up empty even though the plan has candidates.
    let w = workload();
    let mut rec = TraceRecorder::new(&w);
    let _ = Simulator::run(&w, SimConfig::with_seed(3), &mut rec);
    let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
    let mut decay = DecayState::default();
    for site in plan.delay_sites().collect::<Vec<_>>() {
        for _ in 0..7 {
            decay.record_injection(site);
        }
        assert!(decay.exhausted(site));
    }
    // Round-trip through the on-disk format, as between real runs.
    let decay = DecayState::from_json(&decay.to_json().unwrap()).unwrap();
    let mut policy = waffle_repro::inject::WafflePolicy::new(plan, decay, 9);
    let r = Simulator::run(&w, SimConfig::with_seed(9), &mut policy);
    assert!(r.delays.is_empty());
    assert!(!r.manifested());
}

#[test]
fn detection_budget_is_respected() {
    let w = workload();
    let cfg = DetectorConfig {
        max_detection_runs: 3,
        ..DetectorConfig::default()
    };
    // Kill the bug's exposure chance by exhausting decay? Simpler: a clean
    // workload variant with the racy pair stretched beyond δ.
    let mut b = WorkloadBuilder::new("it.clean");
    let o = b.object("o");
    let worker = b.script("worker", move |s| {
        s.use_(o, "W.use:1", us(50));
    });
    let main = b.script("main", move |s| {
        s.init(o, "M.init:1", us(50))
            .fork(worker)
            .join_children()
            .pad(ms(150))
            .dispose(o, "M.dispose:9", us(50));
    });
    b.main(main);
    let clean = b.build();
    let outcome = Detector::with_config(Tool::waffle(), cfg).detect(&clean, 1);
    assert!(outcome.exposed.is_none());
    assert_eq!(outcome.detection_runs.len(), 3);
    assert_eq!(outcome.total_runs(), 4);
    let _ = w;
}
