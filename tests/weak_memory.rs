//! Workspace-level weak-memory invariants.
//!
//! Two guarantees anchor the store-buffer subsystem to the rest of the
//! repo's baselines:
//!
//! 1. **Observational equivalence**: `Tso`/`Pso` with the buffer drained
//!    at every store is indistinguishable from `Sc` — same `RunResult`,
//!    same recorded trace bytes — across randomly generated workloads.
//!    Every pre-existing artifact (BENCH reports, fuzz sweeps, plan
//!    files) rests on this.
//! 2. **End-to-end exposure**: the curated `weak.*` scenarios run
//!    through the full Waffle detector expose their seeded reordering
//!    bug under their memory model, while the same workloads — and the
//!    fenced controls under every model — stay clean under `Sc`.

use proptest::prelude::*;
use waffle_repro::apps::weak_scenarios;
use waffle_repro::core::{Detector, DetectorConfig, Tool};
use waffle_repro::fuzz::{generate_case, generate_case_for_model};
use waffle_repro::sim::{
    DrainPolicy, MemoryConfig, MemoryModel, SimConfig, Simulator, Workload,
};
use waffle_repro::trace::TraceRecorder;

/// Runs `w` under `memory` and returns `(run result JSON, trace JSON)`.
fn observe(w: &Workload, sim_seed: u64, memory: MemoryConfig) -> (String, String) {
    let cfg = SimConfig::with_seed(sim_seed).with_memory(memory);
    let mut rec = TraceRecorder::new(w);
    let result = Simulator::run(w, cfg, &mut rec);
    (
        serde_json::to_string_pretty(&result).expect("result serializes"),
        rec.into_trace().to_json().expect("trace serializes"),
    )
}

proptest! {
    /// Drain-at-every-store is the identity: for both the SC-shaped and
    /// the weak-shaped generator populations, a `Tso`/`Pso` run whose
    /// buffer drains inline produces the same `RunResult` and the same
    /// trace bytes as plain `Sc` with the same simulation seed.
    #[test]
    fn drain_at_every_store_is_observationally_sc(
        gen_seed in 0u64..4_294_967_296u64,
        sim_seed in 0u64..1024u64,
        weak_shaped in 0u8..2u8,
        pso in 0u8..2u8,
    ) {
        let model = if pso == 1 { MemoryModel::Pso } else { MemoryModel::Tso };
        let case = if weak_shaped == 1 {
            generate_case_for_model(gen_seed, model)
        } else {
            generate_case(gen_seed)
        };
        let sc = observe(&case.workload, sim_seed, MemoryConfig::sc());
        let weak = observe(
            &case.workload,
            sim_seed,
            MemoryConfig { model, drain: DrainPolicy::EveryStore },
        );
        prop_assert_eq!(&sc.0, &weak.0, "RunResult diverged under {}", model);
        prop_assert_eq!(&sc.1, &weak.1, "trace bytes diverged under {}", model);
    }
}

/// The full detector pipeline — preparation run, candidate analysis,
/// delay injection with decay and interference control — exposes each
/// curated scenario's seeded bug under its memory model, and exposes
/// nothing on any of the five workloads under `Sc`.
#[test]
fn curated_scenarios_expose_under_their_model_and_never_under_sc() {
    let detector = |memory: MemoryConfig| {
        Detector::with_config(
            Tool::waffle(),
            DetectorConfig {
                max_detection_runs: 12,
                memory,
                ..DetectorConfig::default()
            },
        )
    };
    for s in weak_scenarios() {
        let weak = detector(MemoryConfig::from_model(s.model)).detect(&s.workload, 1);
        match s.expected {
            Some(kind) => {
                let report = weak
                    .exposed
                    .unwrap_or_else(|| panic!("{} must expose under {}", s.name, s.model));
                assert_eq!(report.kind, kind, "{}: wrong manifestation class", s.name);
            }
            None => assert!(
                weak.exposed.is_none(),
                "{} is a fenced control and must stay clean under {}",
                s.name,
                s.model
            ),
        }
        let sc = detector(MemoryConfig::sc()).detect(&s.workload, 1);
        assert!(
            sc.exposed.is_none(),
            "{} must be unexposable under sequential consistency",
            s.name
        );
        assert!(!sc.spontaneous, "{} manifested without delays under sc", s.name);
    }
}
