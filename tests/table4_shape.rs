//! The headline result (Table 4), asserted as a shape:
//!
//! - Waffle exposes all 18 seeded bugs, most in two runs;
//! - WaffleBasic exposes the single-instance and recurring bugs but misses
//!   the interference-bound ones;
//! - run counts stay within a small tolerance of the paper's.
//!
//! A reduced repetition count keeps the test tractable; the full
//! 15-repetition experiment is `cargo bench -p waffle-bench --bench table4`.

use waffle_repro::apps::{all_bugs, bug};
use waffle_repro::core::{run_experiment, Detector, DetectorConfig, Tool};

const ATTEMPTS: u32 = 3;

/// Allowed slack over the paper's run count.
///
/// Run-to-run variance scales with the amount of churn executed before the
/// racy window: for the churn-embedded MQTT.Net bugs (16, 17) timing noise
/// can shift the interference pattern enough to absorb a few extra
/// detection runs (observed spread 2–6 runs across seeds), while the other
/// bugs stay within two runs of the paper.
fn run_tolerance(id: u32) -> u32 {
    if matches!(id, 16 | 17) {
        4
    } else {
        2
    }
}

fn workload_for(id: u32) -> waffle_repro::sim::Workload {
    let spec = bug(id).expect("bug exists");
    waffle_repro::apps::all_apps()
        .into_iter()
        .find(|a| a.name == spec.app)
        .unwrap()
        .bug_workload(id)
        .unwrap()
        .clone()
}

#[test]
fn waffle_exposes_every_bug_within_tolerance() {
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let det = Detector::with_config(
            Tool::waffle(),
            DetectorConfig {
                max_detection_runs: 10,
                ..DetectorConfig::default()
            },
        );
        let summary = run_experiment(&det, &w, ATTEMPTS);
        assert!(
            summary.detected(),
            "Bug-{}: Waffle must expose it ({}/{} attempts)",
            spec.id,
            summary.exposed_attempts,
            summary.attempts
        );
        let runs = summary.reported_runs().unwrap();
        let paper = spec.paper.waffle_runs;
        assert!(
            runs <= paper + run_tolerance(spec.id) && runs + 1 >= paper.min(2),
            "Bug-{}: Waffle took {} runs, paper reports {}",
            spec.id,
            runs,
            paper
        );
    }
}

#[test]
fn waffle_basic_exposes_the_known_easy_bugs() {
    // The single-instance bugs take 2 runs; the recurring ones 1.
    for (id, expect_runs) in [(1u32, 2u32), (3, 1), (6, 1), (9, 1), (14, 2), (18, 2)] {
        let w = workload_for(id);
        let det = Detector::with_config(
            Tool::waffle_basic(),
            DetectorConfig {
                max_detection_runs: 10,
                ..DetectorConfig::default()
            },
        );
        let summary = run_experiment(&det, &w, ATTEMPTS);
        assert!(summary.detected(), "Bug-{id}: WaffleBasic must expose it");
        let runs = summary.reported_runs().unwrap();
        assert!(
            runs <= expect_runs + 1,
            "Bug-{id}: WaffleBasic took {runs} runs, expected ~{expect_runs}"
        );
    }
}

#[test]
fn waffle_basic_misses_the_interfering_bugs() {
    // Fig. 4a-shaped interference (Bugs 8, 10, 13): the parallel fixed
    // delays cancel deterministically, run after run.
    for id in [8u32, 10, 13] {
        let w = workload_for(id);
        let det = Detector::with_config(
            Tool::waffle_basic(),
            DetectorConfig {
                max_detection_runs: 12,
                ..DetectorConfig::default()
            },
        );
        let summary = run_experiment(&det, &w, 2);
        assert_eq!(
            summary.exposed_attempts, 0,
            "Bug-{id}: WaffleBasic must keep cancelling its own delays"
        );
    }
}

#[test]
fn waffle_basic_times_out_on_heavy_churn() {
    // Bug-16's input floods WaffleBasic with fixed delays past the
    // run deadline (the MQTT.Net "TimeOut" behaviour of Tables 5 and 6).
    let w = workload_for(16);
    let det = Detector::with_config(
        Tool::waffle_basic(),
        DetectorConfig {
            max_detection_runs: 4,
            ..DetectorConfig::default()
        },
    );
    let outcome = det.detect(&w, 1);
    assert!(outcome.exposed.is_none());
    assert!(
        outcome.detection_runs.iter().any(|r| r.delays > 50),
        "the fixed-delay flood must be visible"
    );
}

#[test]
fn bug_workloads_never_manifest_without_delays() {
    // §6.2: "none of these 18 bugs can manifest themselves without delay
    // injection, even when we execute the corresponding bug-triggering
    // inputs repeatedly".
    use waffle_repro::sim::{NullMonitor, SimConfig, Simulator};
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        for seed in 0..10 {
            let cfg = SimConfig {
                seed,
                timing_noise_pct: 3,
                ..SimConfig::default()
            };
            let r = Simulator::run(&w, cfg, &mut NullMonitor);
            assert!(
                !r.manifested(),
                "Bug-{} manifested spontaneously under seed {seed}",
                spec.id
            );
        }
    }
}
