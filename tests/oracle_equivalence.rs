//! Differential soundness proof for the oracle's partial-order reduction:
//! the reduced explorer and the naive explorer must return *identical*
//! verdicts — same `Exposable { kind, obj, preemptions }`, same
//! `CleanWithinBound`, same `Truncated` — on every workload population the
//! repo owns, at bounds 2 and 3. State counts may differ (that is the
//! point of the reduction); verdicts may not. A second property pins
//! witness validity: every exposable witness spends no more than the
//! preemption bound and replays deterministically to the same
//! manifestation.

use waffle_repro::apps::{all_apps, weak_scenarios};
use waffle_repro::fuzz::{
    explore, generate_case, generate_case_for_model, replay_schedule, OracleConfig, OracleReport,
};
use waffle_repro::sim::{MemoryModel, Workload};

const BOUNDS: [u32; 2] = [2, 3];

/// Shared state cap: both explorers truncate at the same frontier size,
/// so `Truncated == Truncated` stays a meaningful equality while keeping
/// bound-3 unreduced sweeps affordable.
const CAP: u64 = 200_000;

fn run(w: &Workload, model: MemoryModel, bound: u32, reduce: bool) -> OracleReport {
    explore(
        w,
        &OracleConfig {
            preemption_bound: bound,
            max_states: CAP,
            memory: model,
            reduce,
        },
    )
}

/// Reduced and naive explorers on one workload; asserts verdict identity
/// and returns `(reduced, naive)` for aggregate assertions. Per-case
/// frontier counts are *not* compared: the reduced memo keys states
/// together with their sleep fingerprints (required for soundness when
/// sleep sets meet state caching), so a small workload can count the same
/// pure state under several sleep contexts. The payoff is asserted in
/// aggregate per population and in the oracle bench.
fn assert_equiv(
    w: &Workload,
    model: MemoryModel,
    bound: u32,
    what: &str,
) -> (OracleReport, OracleReport) {
    let reduced = run(w, model, bound, true);
    let naive = run(w, model, bound, false);
    assert_eq!(
        reduced.verdict, naive.verdict,
        "{what}: reduced vs naive verdict diverged (model {model:?}, bound {bound})"
    );
    (reduced, naive)
}

/// The SC generator population: every seed, both bounds, identical
/// verdicts — and across the population the reduction must actually fire.
#[test]
fn sc_population_is_reduction_invariant() {
    let (mut prunes, mut reduced_work, mut naive_work) = (0u64, 0u64, 0u64);
    for seed in 0..40 {
        let case = generate_case(seed);
        for bound in BOUNDS {
            let (r, n) = assert_equiv(
                &case.workload,
                MemoryModel::Sc,
                bound,
                &format!("sc seed {seed}"),
            );
            prunes += r.sleep_prunes;
            reduced_work += work(&r);
            naive_work += work(&n);
        }
    }
    assert!(prunes > 0, "no sleep prunes across the whole SC population");
    assert!(
        reduced_work < naive_work,
        "reduction did not shrink the aggregate SC work: {reduced_work} vs {naive_work}"
    );
}

/// Edges the explorer actually executed: every executed edge lands in
/// exactly one of these three buckets; sleep prunes skip the execution
/// entirely, so this is the quantity the reduction saves. (Frontier
/// *counts* are not comparable per-case — see [`assert_equiv`].)
fn work(r: &OracleReport) -> u64 {
    r.states_explored + r.memo_hits + r.revisits
}

/// The weak-model generator populations (store buffers add drain edges,
/// the reduction's richest prey): every seed, both models, both bounds.
#[test]
fn weak_populations_are_reduction_invariant() {
    let (mut prunes, mut reduced_work, mut naive_work) = (0u64, 0u64, 0u64);
    for model in [MemoryModel::Tso, MemoryModel::Pso] {
        for seed in 0..16 {
            let case = generate_case_for_model(seed, model);
            for bound in BOUNDS {
                let (r, n) = assert_equiv(
                    &case.workload,
                    model,
                    bound,
                    &format!("{model:?} seed {seed}"),
                );
                prunes += r.sleep_prunes;
                reduced_work += work(&r);
                naive_work += work(&n);
            }
        }
    }
    assert!(prunes > 0, "no sleep prunes across the weak populations");
    assert!(
        reduced_work < naive_work,
        "reduction did not shrink the aggregate weak work: {reduced_work} vs {naive_work}"
    );
}

/// All 18 curated Table 4 bug workloads.
#[test]
fn curated_bugs_are_reduction_invariant() {
    for app in all_apps() {
        for bug in &app.bugs {
            let w = app
                .bug_workload(bug.id)
                .unwrap_or_else(|| panic!("Bug-{} has a workload", bug.id));
            for bound in BOUNDS {
                let (r, _) = assert_equiv(w, MemoryModel::Sc, bound, &format!("Bug-{}", bug.id));
                assert!(r.exposable(), "Bug-{} lost under reduction", bug.id);
            }
        }
    }
}

/// Every curated weak-memory scenario, both under its own model and under
/// SC (where the buffered-publish bugs must stay invisible).
#[test]
fn weak_scenarios_are_reduction_invariant() {
    for sc in weak_scenarios() {
        for model in [sc.model, MemoryModel::Sc] {
            for bound in BOUNDS {
                assert_equiv(&sc.workload, model, bound, &format!("weak.{}", sc.name));
            }
        }
    }
}

/// Witness validity (satellite property): for every exposable verdict in
/// the generator populations, the witness spends at most the preemption
/// bound and replays — through the deterministic single-schedule replayer
/// — to the same kind, object, and preemption count.
#[test]
fn witnesses_stay_within_bound_and_replay() {
    let cases = (0..40)
        .map(|s| (generate_case(s), MemoryModel::Sc))
        .chain((0..10).map(|s| (generate_case_for_model(s, MemoryModel::Tso), MemoryModel::Tso)));
    let mut replayed = 0u32;
    for (case, model) in cases {
        for reduce in [true, false] {
            let r = run(&case.workload, model, 2, reduce);
            let waffle_repro::fuzz::OracleVerdict::Exposable {
                kind,
                obj,
                preemptions,
            } = r.verdict
            else {
                continue;
            };
            assert!(
                preemptions <= 2,
                "witness overspent the bound: {preemptions} (seed {})",
                case.seed
            );
            let replay = replay_schedule(&case.workload, model, &r.witness)
                .unwrap_or_else(|| panic!("witness failed to replay (seed {})", case.seed));
            assert_eq!(replay.kind, kind, "seed {}", case.seed);
            assert_eq!(replay.obj, obj, "seed {}", case.seed);
            assert_eq!(replay.preemptions, preemptions, "seed {}", case.seed);
            replayed += 1;
        }
    }
    assert!(replayed > 10, "population produced too few witnesses");
}
