//! Integration tests for the Table 7 ablations: each design point's
//! removal loses exactly the capability the paper attributes to it.

use waffle_repro::apps::{all_apps, bug};
use waffle_repro::core::{run_experiment, Detector, DetectorConfig, Tool};

fn workload_for(id: u32) -> waffle_repro::sim::Workload {
    let spec = bug(id).expect("bug exists");
    all_apps()
        .into_iter()
        .find(|a| a.name == spec.app)
        .unwrap()
        .bug_workload(id)
        .unwrap()
        .clone()
}

fn budgeted(tool: Tool, runs: u32) -> Detector {
    Detector::with_config(
        tool,
        DetectorConfig {
            max_detection_runs: runs,
            ..DetectorConfig::default()
        },
    )
}

#[test]
fn no_interference_control_cancels_the_fig4a_bug() {
    // Without the interference set, both candidate delays fire in parallel
    // and cancel (Bug-10 is the paper's Fig. 4a example).
    let w = workload_for(10);
    // Budget matched to full Waffle's (prep + 2 detection runs): over an
    // unbounded budget, decay desynchronizes the parallel delays and even
    // this variant eventually gets a lucky sole delay.
    let summary = run_experiment(&budgeted(Tool::waffle_no_interference(), 2), &w, 3);
    assert!(
        !summary.detected(),
        "exposed in {}/{} attempts",
        summary.exposed_attempts,
        summary.attempts
    );
    // Full Waffle gets it in two runs.
    let summary = run_experiment(&budgeted(Tool::waffle(), 3), &w, 3);
    assert!(summary.detected());
    assert_eq!(summary.reported_runs(), Some(2));
}

#[test]
fn no_preparation_run_still_finds_recurring_bugs() {
    // The online variant identifies and injects in the same run, so the
    // recurring bug (Bug-3) is still found quickly...
    let w = workload_for(3);
    let summary = run_experiment(&budgeted(Tool::waffle_no_prep(), 5), &w, 3);
    assert!(summary.detected());
}

#[test]
fn no_preparation_run_misses_the_interference_bugs() {
    // ...but without the preparation run there is no interference set, and
    // the Fig. 4a bug cancels.
    let w = workload_for(10);
    let summary = run_experiment(&budgeted(Tool::waffle_no_prep(), 2), &w, 3);
    assert!(
        !summary.detected(),
        "exposed {}/{}",
        summary.exposed_attempts,
        summary.attempts
    );
}

#[test]
fn fixed_delay_lengths_inflate_detection_runs() {
    // The "no custom delay length" ablation still exposes simple bugs but
    // injects 100 ms where Waffle injects α·gap.
    let w = workload_for(1);
    let full = run_experiment(&budgeted(Tool::waffle(), 3), &w, 3);
    let fixed = run_experiment(&budgeted(Tool::waffle_fixed_delay(), 3), &w, 3);
    assert!(full.detected() && fixed.detected());
    let full_slow = full.median_slowdown.unwrap();
    let fixed_slow = fixed.median_slowdown.unwrap();
    assert!(
        fixed_slow >= full_slow,
        "fixed delays must not be cheaper: {fixed_slow} < {full_slow}"
    );
}

#[test]
fn no_parent_child_analysis_keeps_coverage_but_adds_delays() {
    // Pruning is a performance feature: the ablation still finds the bug.
    let w = workload_for(1);
    let summary = run_experiment(&budgeted(Tool::waffle_no_parent_child(), 3), &w, 3);
    assert!(summary.detected());
    assert_eq!(summary.reported_runs(), Some(2));
}

#[test]
fn no_parent_child_analysis_delays_fork_ordered_sites() {
    // On a worker-pool background test, the ablation injects at the
    // fork-ordered allocation sites that full Waffle prunes.
    let app = all_apps()
        .into_iter()
        .find(|a| a.name == "SSH.Net")
        .unwrap();
    let w = app
        .tests
        .iter()
        .find(|t| t.workload.name == "SshNet.sftp_uploads")
        .unwrap()
        .workload
        .clone();
    let full = budgeted(Tool::waffle(), 1).detect(&w, 1);
    let ablated = budgeted(Tool::waffle_no_parent_child(), 1).detect(&w, 1);
    let full_delays = full.detection_runs[0].delays;
    let ablated_delays = ablated.detection_runs[0].delays;
    assert!(
        ablated_delays > full_delays,
        "ablation {ablated_delays} vs full {full_delays}"
    );
}
