//! End-to-end `waffle serve`: real Unix socket, concurrent client
//! sessions, small seal thresholds (many generations per session), and a
//! queue bound small enough that backpressure actually engages — the
//! streamed reports must still be byte-identical to the batch path.

use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use waffle_repro::analysis::{analyze_jobs, analyze_tsv_indexed, AnalyzerConfig};
use waffle_repro::apps::all_bugs;
use waffle_repro::core::{replay_trace, serve, session_report_json, QueuePolicy, ServeOptions};
use waffle_repro::sim::{time::ms, SimConfig, Simulator, Workload};
use waffle_repro::trace::{Trace, TraceIndex, TraceRecorder};

fn workload_for(id: u32) -> Workload {
    waffle_repro::apps::all_apps()
        .into_iter()
        .find(|a| a.bug_workload(id).is_some())
        .expect("bug belongs to an app")
        .bug_workload(id)
        .expect("bug workload exists")
        .clone()
}

fn recorded_trace(w: &Workload) -> Trace {
    let mut rec = TraceRecorder::new(w);
    Simulator::run(w, SimConfig::with_seed(0).deterministic(), &mut rec);
    rec.into_trace()
}

fn batch_report(trace: &Trace) -> String {
    let config = AnalyzerConfig::default();
    let plan = analyze_jobs(trace, &config, 1);
    let tsv = analyze_tsv_indexed(&TraceIndex::build(trace), config.delta, ms(1), 1);
    session_report_json(&plan, &tsv).expect("report serializes")
}

fn wait_for(path: &PathBuf) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !path.exists() {
        assert!(Instant::now() < deadline, "server never bound {path:?}");
        thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn concurrent_streamed_sessions_match_the_batch_reports() {
    let base = std::env::temp_dir().join(format!("waffle-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("temp dir");
    let socket = base.join("ingest.sock");
    let dir = base.join("out");

    // Two different seeded-bug traces, streamed concurrently.
    let bugs = all_bugs();
    let traces: Vec<Trace> = bugs
        .iter()
        .take(2)
        .map(|spec| recorded_trace(&workload_for(spec.id)))
        .collect();
    let expected: Vec<String> = traces.iter().map(batch_report).collect();
    let total_events: u64 = traces.iter().map(|t| t.events.len() as u64).sum();

    let mut opts = ServeOptions::new(&socket, &dir);
    opts.seal_events = 64; // many generations per session
    opts.queue_events = 128; // small enough that Block backpressure engages
    opts.jobs = 2;
    opts.max_sessions = Some(traces.len());
    let server = thread::spawn(move || serve(&opts).expect("serve runs"));
    wait_for(&socket);

    let clients: Vec<_> = traces
        .into_iter()
        .map(|trace| {
            let socket = socket.clone();
            // Small batches keep both sessions interleaved on the socket.
            thread::spawn(move || replay_trace(&socket, &trace, 33).expect("session accepted"))
        })
        .collect();
    let got: Vec<String> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    let report = server.join().expect("server thread");

    // Reports may come back in either order; match by content.
    for (i, want) in expected.iter().enumerate() {
        assert!(
            got.iter().any(|g| g == want),
            "no streamed session produced the batch report of trace #{i}"
        );
    }
    assert_eq!(report.sessions, 2);
    assert_eq!(report.metrics.counter("ingest/sessions"), 2);
    assert_eq!(report.metrics.counter("ingest/events"), total_events);
    assert!(
        report.metrics.counter("ingest/sealed_generations") >= 2,
        "each session seals at least once"
    );
    assert_eq!(report.metrics.counter("ingest/failed_sessions"), 0);
    // Per-session artifacts landed on disk: a compacted segment file and
    // the report, for each session.
    for id in 1..=2u64 {
        assert!(dir.join(format!("session-{id}.wseg")).exists());
        let saved =
            std::fs::read_to_string(dir.join(format!("session-{id}.report.json"))).unwrap();
        assert!(expected.contains(&saved), "saved report matches a batch report");
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn shed_policy_discloses_dropped_batches_in_the_session_report() {
    // A one-event queue plus a per-batch seal (file I/O keeps the worker
    // behind the reader) makes Shed engage on a many-batch session. The
    // race is probabilistic in principle, so the whole session retries a
    // few times and passes on the first run that actually sheds.
    let base = std::env::temp_dir().join(format!("waffle-serve-shed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    // Bug-16's packet-churn workload records ~1k events: >100 batches at
    // batch size 8, plenty of chances for the reader to outrun the worker.
    let trace = recorded_trace(&workload_for(16));
    let total = trace.events.len() as u64;
    assert!(total > 512, "needs a trace big enough to shed from");

    let mut shed_seen = false;
    for attempt in 0..5 {
        let dir = base.join(format!("attempt-{attempt}"));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let socket = dir.join("ingest.sock");
        let mut opts = ServeOptions::new(&socket, dir.join("out"));
        opts.policy = QueuePolicy::Shed;
        opts.queue_events = 1; // any pending frame forces the next batch over
        opts.seal_events = 1; // one seal per accepted batch
        opts.max_sessions = Some(1);
        let server = thread::spawn(move || serve(&opts).expect("serve runs"));
        wait_for(&socket);
        let json = replay_trace(&socket, &trace, 8).expect("a lossy session still reports");
        let report = server.join().expect("server thread");
        let shed_batches = report.metrics.counter("ingest/shed_batches");
        let shed_events = report.metrics.counter("ingest/shed_events");
        if shed_batches == 0 {
            assert!(!json.contains("\"shed\""), "lossless report must not carry a shed member");
            continue;
        }
        // The sole session's report must disclose exactly the totals the
        // global counters saw, and nothing may fall through the gap.
        assert!(shed_events >= shed_batches, "a shed batch holds at least one event");
        assert_eq!(
            report.metrics.counter("ingest/events") + shed_events,
            total,
            "every event is either ingested or counted as shed"
        );
        let want =
            format!("\n\"shed\": {{\"batches\": {shed_batches}, \"events\": {shed_events}}}\n");
        assert!(
            json.contains(&want),
            "session report missing per-session shed totals: {json}"
        );
        shed_seen = true;
        break;
    }
    assert!(shed_seen, "shed never engaged across 5 attempts despite a 1-event queue");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn a_malformed_session_gets_an_error_not_a_hang() {
    use std::io::Write as _;
    use std::os::unix::net::UnixStream;
    use waffle_repro::trace::{read_frame, write_frame, Frame};

    let base = std::env::temp_dir().join(format!("waffle-serve-err-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("temp dir");
    let socket = base.join("ingest.sock");
    let mut opts = ServeOptions::new(&socket, base.join("out"));
    opts.max_sessions = Some(1);
    let server = thread::spawn(move || serve(&opts).expect("serve runs"));
    wait_for(&socket);

    // Events before Hello: protocol violation, answered with Error.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    write_frame(&mut stream, &Frame::Events(vec![])).expect("write");
    stream.flush().expect("flush");
    match read_frame(&mut stream).expect("server replies") {
        Some(Frame::Error(message)) => {
            assert!(message.contains("before Hello"), "unexpected error: {message}")
        }
        other => panic!("expected an Error frame, got {other:?}"),
    }
    drop(stream);
    let report = server.join().expect("server thread");
    assert_eq!(report.metrics.counter("ingest/failed_sessions"), 1);
    let _ = std::fs::remove_dir_all(&base);
}
