//! Plan equivalence: the fused indexed pipeline must reproduce the
//! reference scanners' plans *byte for byte* on every seeded bug workload,
//! at every worker count.
//!
//! This is the pipeline's end-to-end drift detector: the unit and property
//! tests in `waffle-analysis` pin the sweep semantics on synthetic traces,
//! while this suite replays the real application traces (all 18 bugs of
//! Table 4) and compares serialized plans, so any divergence — ordering,
//! representative choice, stats, interference membership — fails loudly.

use waffle_repro::analysis::{
    analyze_jobs, analyze_segments, analyze_tsv_indexed, analyze_tsv_segments,
    analyze_tsv_unindexed, analyze_unindexed, AnalyzerConfig,
};
use waffle_repro::apps::all_bugs;
use waffle_repro::sim::{SimConfig, SimTime, Simulator, Workload};
use waffle_repro::trace::{SegmentReader, Trace, TraceIndex, TraceRecorder};

/// Worker counts exercised for every workload: sequential, the common CI
/// core count, and more shards than most traces have objects.
const JOB_COUNTS: [usize; 3] = [1, 2, 8];

fn workload_for(id: u32) -> Workload {
    waffle_repro::apps::all_apps()
        .into_iter()
        .find(|a| a.bug_workload(id).is_some())
        .expect("bug belongs to an app")
        .bug_workload(id)
        .expect("bug workload exists")
        .clone()
}

/// One delay-free prep run under a fixed seed, exactly as the detector's
/// prepare step records it.
fn recorded_trace(w: &Workload) -> Trace {
    let mut rec = TraceRecorder::new(w);
    Simulator::run(w, SimConfig::with_seed(0).deterministic(), &mut rec);
    rec.into_trace()
}

#[test]
fn indexed_plan_is_byte_identical_for_every_bug_at_every_job_count() {
    let config = AnalyzerConfig::default();
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        let reference = analyze_unindexed(&trace, &config)
            .to_json()
            .expect("plan serializes");
        for jobs in JOB_COUNTS {
            let indexed = analyze_jobs(&trace, &config, jobs)
                .to_json()
                .expect("plan serializes");
            assert_eq!(
                indexed, reference,
                "Bug-{}: indexed plan diverged at jobs={jobs}",
                spec.id
            );
        }
    }
}

#[test]
fn indexed_plan_is_byte_identical_under_every_ablation() {
    // The ablations flip the pipeline's internal switches (pruning,
    // interference collection, delay computation); each must stay
    // equivalent too, not just the default configuration.
    let configs = [
        AnalyzerConfig::default().without_parent_child(),
        AnalyzerConfig::default().without_variable_delay(),
        AnalyzerConfig::default().without_interference_control(),
    ];
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        for (c, config) in configs.iter().enumerate() {
            let reference = analyze_unindexed(&trace, config)
                .to_json()
                .expect("plan serializes");
            for jobs in JOB_COUNTS {
                let indexed = analyze_jobs(&trace, config, jobs)
                    .to_json()
                    .expect("plan serializes");
                assert_eq!(
                    indexed, reference,
                    "Bug-{}: ablation #{c} diverged at jobs={jobs}",
                    spec.id
                );
            }
        }
    }
}

/// Resident budgets for the out-of-core sweep: effectively unbounded (one
/// batch) and pathologically tiny (one segment per batch for every seeded
/// trace) — the two extremes of batch-boundary placement.
const BUDGETS: [u64; 2] = [u64::MAX, 1];

#[test]
fn out_of_core_plan_is_byte_identical_at_every_budget_and_job_count() {
    let config = AnalyzerConfig::default();
    let dir = std::env::temp_dir().join(format!("waffle-ooc-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        let reference = analyze_jobs(&trace, &config, 1)
            .to_json()
            .expect("plan serializes");
        let path = dir.join(format!("bug-{}.wseg", spec.id));
        TraceIndex::build(&trace)
            .write_segments(&path)
            .expect("segments write");
        for budget in BUDGETS {
            for jobs in JOB_COUNTS {
                let mut reader = SegmentReader::open(&path).expect("segments open");
                let ooc = analyze_segments(&mut reader, &config, jobs, budget)
                    .expect("out-of-core analysis")
                    .to_json()
                    .expect("plan serializes");
                assert_eq!(
                    ooc, reference,
                    "Bug-{}: out-of-core plan diverged at jobs={jobs} budget={budget}",
                    spec.id
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn out_of_core_tsv_plan_is_byte_identical_at_every_budget_and_job_count() {
    let delta = SimTime::from_ms(100);
    let window = SimTime::from_ms(1);
    let dir = std::env::temp_dir().join(format!("waffle-ooc-tsv-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        let index = TraceIndex::build(&trace);
        let reference = analyze_tsv_indexed(&index, delta, window, 1)
            .to_json()
            .expect("plan serializes");
        let path = dir.join(format!("bug-{}.wseg", spec.id));
        index.write_segments(&path).expect("segments write");
        for budget in BUDGETS {
            for jobs in JOB_COUNTS {
                let mut reader = SegmentReader::open(&path).expect("segments open");
                let ooc = analyze_tsv_segments(&mut reader, delta, window, jobs, budget)
                    .expect("out-of-core TSV analysis")
                    .to_json()
                    .expect("plan serializes");
                assert_eq!(
                    ooc, reference,
                    "Bug-{}: out-of-core TSV plan diverged at jobs={jobs} budget={budget}",
                    spec.id
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn indexed_tsv_plan_is_byte_identical_for_every_bug_at_every_job_count() {
    let delta = SimTime::from_ms(100);
    let window = SimTime::from_ms(1);
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        let reference = analyze_tsv_unindexed(&trace, delta, window)
            .to_json()
            .expect("plan serializes");
        let index = TraceIndex::build(&trace);
        for jobs in JOB_COUNTS {
            let indexed = analyze_tsv_indexed(&index, delta, window, jobs)
                .to_json()
                .expect("plan serializes");
            assert_eq!(
                indexed, reference,
                "Bug-{}: TSV plan diverged at jobs={jobs}",
                spec.id
            );
        }
    }
}
