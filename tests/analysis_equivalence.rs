//! Plan equivalence: the fused indexed pipeline must reproduce the
//! reference scanners' plans *byte for byte* on every seeded bug workload,
//! at every worker count.
//!
//! This is the pipeline's end-to-end drift detector: the unit and property
//! tests in `waffle-analysis` pin the sweep semantics on synthetic traces,
//! while this suite replays the real application traces (all 18 bugs of
//! Table 4) and compares serialized plans, so any divergence — ordering,
//! representative choice, stats, interference membership — fails loudly.

use waffle_repro::analysis::{
    analyze_jobs, analyze_segments, analyze_tsv_indexed, analyze_tsv_segments,
    analyze_tsv_unindexed, analyze_unindexed, AnalyzerConfig,
};
use waffle_repro::apps::all_bugs;
use waffle_repro::sim::{SimConfig, SimTime, Simulator, Workload};
use waffle_repro::trace::{SegmentReader, Trace, TraceIndex, TraceRecorder};

/// Worker counts exercised for every workload: sequential, the common CI
/// core count, and more shards than most traces have objects.
const JOB_COUNTS: [usize; 3] = [1, 2, 8];

fn workload_for(id: u32) -> Workload {
    waffle_repro::apps::all_apps()
        .into_iter()
        .find(|a| a.bug_workload(id).is_some())
        .expect("bug belongs to an app")
        .bug_workload(id)
        .expect("bug workload exists")
        .clone()
}

/// One delay-free prep run under a fixed seed, exactly as the detector's
/// prepare step records it.
fn recorded_trace(w: &Workload) -> Trace {
    let mut rec = TraceRecorder::new(w);
    Simulator::run(w, SimConfig::with_seed(0).deterministic(), &mut rec);
    rec.into_trace()
}

#[test]
fn indexed_plan_is_byte_identical_for_every_bug_at_every_job_count() {
    let config = AnalyzerConfig::default();
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        let reference = analyze_unindexed(&trace, &config)
            .to_json()
            .expect("plan serializes");
        for jobs in JOB_COUNTS {
            let indexed = analyze_jobs(&trace, &config, jobs)
                .to_json()
                .expect("plan serializes");
            assert_eq!(
                indexed, reference,
                "Bug-{}: indexed plan diverged at jobs={jobs}",
                spec.id
            );
        }
    }
}

#[test]
fn indexed_plan_is_byte_identical_under_every_ablation() {
    // The ablations flip the pipeline's internal switches (pruning,
    // interference collection, delay computation); each must stay
    // equivalent too, not just the default configuration.
    let configs = [
        AnalyzerConfig::default().without_parent_child(),
        AnalyzerConfig::default().without_variable_delay(),
        AnalyzerConfig::default().without_interference_control(),
    ];
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        for (c, config) in configs.iter().enumerate() {
            let reference = analyze_unindexed(&trace, config)
                .to_json()
                .expect("plan serializes");
            for jobs in JOB_COUNTS {
                let indexed = analyze_jobs(&trace, config, jobs)
                    .to_json()
                    .expect("plan serializes");
                assert_eq!(
                    indexed, reference,
                    "Bug-{}: ablation #{c} diverged at jobs={jobs}",
                    spec.id
                );
            }
        }
    }
}

/// Resident budgets for the out-of-core sweep: effectively unbounded (one
/// batch) and pathologically tiny (one segment per batch for every seeded
/// trace) — the two extremes of batch-boundary placement.
const BUDGETS: [u64; 2] = [u64::MAX, 1];

#[test]
fn out_of_core_plan_is_byte_identical_at_every_budget_and_job_count() {
    let config = AnalyzerConfig::default();
    let dir = std::env::temp_dir().join(format!("waffle-ooc-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        let reference = analyze_jobs(&trace, &config, 1)
            .to_json()
            .expect("plan serializes");
        let path = dir.join(format!("bug-{}.wseg", spec.id));
        TraceIndex::build(&trace)
            .write_segments(&path)
            .expect("segments write");
        for budget in BUDGETS {
            for jobs in JOB_COUNTS {
                let mut reader = SegmentReader::open(&path).expect("segments open");
                let ooc = analyze_segments(&mut reader, &config, jobs, budget)
                    .expect("out-of-core analysis")
                    .to_json()
                    .expect("plan serializes");
                assert_eq!(
                    ooc, reference,
                    "Bug-{}: out-of-core plan diverged at jobs={jobs} budget={budget}",
                    spec.id
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn out_of_core_tsv_plan_is_byte_identical_at_every_budget_and_job_count() {
    let delta = SimTime::from_ms(100);
    let window = SimTime::from_ms(1);
    let dir = std::env::temp_dir().join(format!("waffle-ooc-tsv-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        let index = TraceIndex::build(&trace);
        let reference = analyze_tsv_indexed(&index, delta, window, 1)
            .to_json()
            .expect("plan serializes");
        let path = dir.join(format!("bug-{}.wseg", spec.id));
        index.write_segments(&path).expect("segments write");
        for budget in BUDGETS {
            for jobs in JOB_COUNTS {
                let mut reader = SegmentReader::open(&path).expect("segments open");
                let ooc = analyze_tsv_segments(&mut reader, delta, window, jobs, budget)
                    .expect("out-of-core TSV analysis")
                    .to_json()
                    .expect("plan serializes");
                assert_eq!(
                    ooc, reference,
                    "Bug-{}: out-of-core TSV plan diverged at jobs={jobs} budget={budget}",
                    spec.id
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The serve-side path: events streamed through a [`SessionIndexBuilder`]
/// in four chunks (three seal boundaries), each sealed generation folded
/// into an [`IncrementalAnalysis`], the generations compacted into one
/// canonical file, and the fold finished with the interference pass
/// streaming from that file. Byte-identical to a one-shot batch analysis
/// of the whole trace — candidates, stats, interference, TSV — at every
/// job count, and the compacted file itself must analyze identically to a
/// one-shot segment file.
#[test]
fn incremental_serve_side_analysis_is_byte_identical_across_seal_boundaries() {
    use waffle_repro::analysis::IncrementalAnalysis;
    use waffle_repro::trace::{compact_segments, SessionIndexBuilder};

    let config = AnalyzerConfig::default();
    let window = SimTime::from_ms(1);
    let dir = std::env::temp_dir().join(format!("waffle-inc-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        let plan_ref = analyze_jobs(&trace, &config, 1)
            .to_json()
            .expect("plan serializes");
        let tsv_ref = analyze_tsv_indexed(&TraceIndex::build(&trace), config.delta, window, 1)
            .to_json()
            .expect("plan serializes");
        // Floor division yields at least four chunks (three seal
        // boundaries) on every trace with four or more events.
        let chunk = (trace.events.len() / 4).max(1);
        for jobs in JOB_COUNTS {
            let mut b = SessionIndexBuilder::new(trace.workload.clone());
            let sites: Vec<_> = trace
                .sites
                .iter()
                .map(|(_, info)| (info.name.clone(), info.kind))
                .collect();
            b.add_sites(&sites).expect("site table streams");
            let snaps = trace.clocks.snapshots();
            if snaps.len() > 1 {
                b.add_clocks(snaps[1..].to_vec()).expect("clock pool streams");
            }
            b.declare_end_time(trace.end_time);
            let mut inc = IncrementalAnalysis::new(config, window);
            let mut generations = Vec::new();
            for (g, events) in trace.events.chunks(chunk).enumerate() {
                b.push_batch(events.to_vec()).expect("stream is time-ordered");
                let path = dir.join(format!("bug-{}-j{jobs}-gen{g}.wseg", spec.id));
                let out = b.seal(&path).expect("generation seals");
                inc.absorb(&out.mem, &out.tsv, b.clocks(), b.last_time(), jobs);
                generations.push(path);
            }
            assert!(
                generations.len() >= 4 || trace.events.len() < 4,
                "Bug-{}: wanted >=3 seal boundaries, got {} generations",
                spec.id,
                generations.len()
            );
            let compacted = dir.join(format!("bug-{}-j{jobs}.wseg", spec.id));
            compact_segments(&generations, &compacted).expect("generations compact");
            let mut reader = SegmentReader::open(&compacted).expect("compacted opens");
            let (plan, tsv) = inc
                .finish(&trace.workload, Some(&mut reader), u64::MAX)
                .expect("incremental finish");
            assert_eq!(
                plan.to_json().expect("plan serializes"),
                plan_ref,
                "Bug-{}: incremental plan diverged at jobs={jobs}",
                spec.id
            );
            assert_eq!(
                tsv.to_json().expect("plan serializes"),
                tsv_ref,
                "Bug-{}: incremental TSV plan diverged at jobs={jobs}",
                spec.id
            );
            // The compacted file is a full-fidelity segment stream: the
            // batch out-of-core path over it must agree too.
            let mut reader = SegmentReader::open(&compacted).expect("compacted reopens");
            let ooc = analyze_segments(&mut reader, &config, jobs, u64::MAX)
                .expect("out-of-core analysis of compacted file")
                .to_json()
                .expect("plan serializes");
            assert_eq!(
                ooc, plan_ref,
                "Bug-{}: compacted-file batch plan diverged at jobs={jobs}",
                spec.id
            );
            for p in generations.iter().chain([&compacted]) {
                std::fs::remove_file(p).ok();
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn indexed_tsv_plan_is_byte_identical_for_every_bug_at_every_job_count() {
    let delta = SimTime::from_ms(100);
    let window = SimTime::from_ms(1);
    for spec in all_bugs() {
        let w = workload_for(spec.id);
        let trace = recorded_trace(&w);
        let reference = analyze_tsv_unindexed(&trace, delta, window)
            .to_json()
            .expect("plan serializes");
        let index = TraceIndex::build(&trace);
        for jobs in JOB_COUNTS {
            let indexed = analyze_tsv_indexed(&index, delta, window, jobs)
                .to_json()
                .expect("plan serializes");
            assert_eq!(
                indexed, reference,
                "Bug-{}: TSV plan diverged at jobs={jobs}",
                spec.id
            );
        }
    }
}
