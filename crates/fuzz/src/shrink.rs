//! Delta-debugging shrinker for failing fuzz cases.
//!
//! Given a case and a failure predicate (e.g. "the classification still
//! produces this disagreement"), the shrinker greedily removes whole
//! scripts and then individual operations, keeping a removal only when the
//! candidate still [`Workload::validate`]s *and* still fails. Invariants:
//!
//! - the predicate is re-evaluated on every accepted candidate, so the
//!   returned case provably still fails;
//! - candidates that fail validation (dangling script references,
//!   out-of-range `SkipIf` spans) are skipped, never returned;
//! - the ground-truth label is carried through untouched — the predicate
//!   owns its interpretation, so a shrink that removes the planted race
//!   itself is rejected by any predicate that checks the label;
//! - passes repeat until a fixpoint (or a generous pass cap, since each
//!   probe may run the full oracle + detector pipeline).

use waffle_sim::{Op, Workload};

use crate::gen::FuzzCase;

/// Removes script `victim` and every reference to it, remapping the
/// script ids behind it. Returns `None` for the main script.
fn remove_script(w: &Workload, victim: usize) -> Option<Workload> {
    if victim == w.main.0 as usize {
        return None;
    }
    let mut out = w.clone();
    out.scripts.remove(victim);
    let remap = |id: &mut waffle_sim::ScriptId| {
        if id.0 as usize > victim {
            id.0 -= 1;
        }
    };
    remap(&mut out.main);
    for script in &mut out.scripts {
        script.ops.retain(|op| {
            !matches!(
                op,
                Op::Fork { script: s } | Op::JoinScript { script: s } | Op::SpawnTask { script: s }
                    if s.0 as usize == victim
            )
        });
        for op in &mut script.ops {
            match op {
                Op::Fork { script: s } | Op::JoinScript { script: s } | Op::SpawnTask { script: s } => {
                    remap(s)
                }
                _ => {}
            }
        }
    }
    Some(out)
}

/// Removes one op. Returns `None` when out of range.
fn remove_op(w: &Workload, script: usize, op: usize) -> Option<Workload> {
    let mut out = w.clone();
    let ops = &mut out.scripts.get_mut(script)?.ops;
    if op >= ops.len() {
        return None;
    }
    ops.remove(op);
    Some(out)
}

/// Shrinks `case` to a locally minimal workload that still satisfies
/// `still_fails`. The input case itself must satisfy the predicate.
pub fn shrink_case(case: &FuzzCase, still_fails: &dyn Fn(&FuzzCase) -> bool) -> FuzzCase {
    debug_assert!(still_fails(case), "shrink input must fail");
    let mut best = case.clone();
    // Each outer pass retries script and op deletion over the whole
    // (shrunken) workload; a fixpoint is reached when a full pass accepts
    // nothing. The cap bounds worst-case probe count on absurd inputs.
    for _pass in 0..24 {
        let mut changed = false;

        let mut s = best.workload.scripts.len();
        while s > 0 {
            s -= 1;
            let Some(candidate) = remove_script(&best.workload, s) else {
                continue;
            };
            if candidate.validate().is_err() {
                continue;
            }
            let candidate = FuzzCase {
                workload: candidate,
                ..best.clone()
            };
            if still_fails(&candidate) {
                best = candidate;
                changed = true;
            }
        }

        for s in 0..best.workload.scripts.len() {
            let mut o = best.workload.scripts[s].ops.len();
            while o > 0 {
                o -= 1;
                let Some(candidate) = remove_op(&best.workload, s, o) else {
                    continue;
                };
                if candidate.validate().is_err() {
                    continue;
                }
                let candidate = FuzzCase {
                    workload: candidate,
                    ..best.clone()
                };
                if still_fails(&candidate) {
                    best = candidate;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GroundTruth};
    use crate::oracle::{explore, OracleConfig};
    use waffle_mem::AccessKind;

    /// Structural predicate: the workload still contains both racy
    /// accesses (an init and a use of the planted object).
    fn has_racy_pair(case: &FuzzCase) -> bool {
        let GroundTruth::Planted { obj, .. } = case.truth else {
            return false;
        };
        let mut init = false;
        let mut used = false;
        for script in &case.workload.scripts {
            for op in &script.ops {
                if let Op::Access { obj: o, kind, .. } = op {
                    if *o == obj {
                        init |= *kind == AccessKind::Init;
                        used |= *kind == AccessKind::Use;
                    }
                }
            }
        }
        init && used
    }

    #[test]
    fn shrinks_a_planted_case_to_its_racy_core() {
        // Find a planted seed with some surrounding structure.
        let case = (0..50)
            .map(generate_case)
            .find(|c| c.truth.planted() && c.workload.total_ops() > 20)
            .expect("a busy planted case in the first 50 seeds");
        let before = case.workload.total_ops();
        let shrunk = shrink_case(&case, &has_racy_pair);
        let after = shrunk.workload.total_ops();
        assert!(after < before, "no shrink happened ({before} -> {after})");
        assert!(has_racy_pair(&shrunk), "shrink broke the predicate");
        assert!(shrunk.workload.validate().is_ok());
        // The racy pair alone cannot occupy more than a handful of ops
        // once every deletable op is gone.
        assert!(after <= 8, "not minimal: {after} ops left");
    }

    #[test]
    fn shrinking_preserves_oracle_exposability_when_predicate_demands_it() {
        let case = (0..50)
            .map(generate_case)
            .find(|c| c.truth.planted())
            .expect("a planted case");
        let cfg = OracleConfig::default();
        let exposable = |c: &FuzzCase| explore(&c.workload, &cfg).exposable();
        assert!(exposable(&case));
        let shrunk = shrink_case(&case, &exposable);
        assert!(exposable(&shrunk));
        assert!(shrunk.workload.total_ops() < case.workload.total_ops());
    }
}
