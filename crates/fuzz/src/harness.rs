//! Differential harness: detectors vs. the schedule oracle.
//!
//! For every generated case the harness runs the bounded oracle, a plan
//! sanity check on the preparation trace, and the four detector
//! configurations (`waffle`, `basic`, `tsvd`, `noprep`), then classifies
//! the results against the case's ground truth:
//!
//! | observation | classification |
//! |---|---|
//! | control + any tool reports a MemOrder bug | false positive |
//! | control + oracle finds a schedule | generator unsound |
//! | planted + oracle finds no schedule in bound | plant unexposable |
//! | planted + oracle exposable + `waffle` misses | false negative |
//! | exposed/oracle kind ≠ planted kind | kind mismatch |
//! | planted bug fires with no delays injected | spontaneous plant |
//! | delay plan names unknown sites or zero/absurd delays | plan insane |
//!
//! Baseline misses (`basic`/`tsvd`/`noprep` failing to expose a planted
//! bug) are *expected* — they are the paper's comparison story — and are
//! recorded as counters, not disagreements. A `waffle` exposure that needs
//! suspiciously many runs is flagged as a run-count anomaly (counter, not
//! a failure: the claim is "a handful of runs", not an exact bound).
//!
//! The fan-out over seeds is parallel but the report is deterministic:
//! workers claim seed indices from an atomic counter and results are
//! stitched back in seed order, and the report carries no wall-clock data,
//! so serialized output is byte-identical at any `--jobs`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use waffle_analysis::{analyze_indexed, AnalyzerConfig, Plan, RepairReport};
use waffle_core::{DetectionOutcome, Detector, DetectorConfig, Tool};
use waffle_mem::NullRefKind;
use waffle_sim::{MemoryConfig, MemoryModel, SimConfig, SimTime, Simulator, Workload};
use waffle_telemetry::MetricsRegistry;
use waffle_trace::{TraceIndex, TraceRecorder};

use crate::gen::{generate_case_for_model, FuzzCase, GroundTruth};
use crate::repair::synthesize_with_oracle;

#[cfg(test)]
use crate::gen::generate_case;
use crate::oracle::{explore, OracleConfig, OracleVerdict};

/// Detector configurations the harness differentially tests.
pub const TOOLS: [&str; 4] = ["waffle", "basic", "tsvd", "noprep"];

/// Harness configuration (the `waffle fuzz` CLI surface).
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Number of consecutive generator seeds to run.
    pub seeds: u64,
    /// First generator seed.
    pub seed_base: u64,
    /// Worker threads for the fan-out (output-invariant).
    pub jobs: usize,
    /// Oracle preemption bound (must be ≥ 1 to mean anything).
    pub preemption_bound: u32,
    /// Detection-run cap handed to every detector.
    pub max_detection_runs: u32,
    /// Oracle state cap per workload.
    pub max_oracle_states: u64,
    /// Memory model every run (generator, oracle, detectors) simulates
    /// under. `Sc` is the historical harness, byte-for-byte.
    pub memory: MemoryModel,
    /// Sleep-set partial-order reduction in the oracle (on by default;
    /// `--no-reduction` turns it off to cross-check against the naive
    /// explorer — verdicts are identical either way).
    pub reduction: bool,
    /// Synthesize an oracle-certified repair for every oracle-exposable
    /// planted case (`--repair`). Controls and unexposable plants never
    /// get one, structurally.
    pub repair: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seeds: 100,
            seed_base: 0,
            jobs: 1,
            preemption_bound: 2,
            // Busy generated shapes put several event-ordered candidate
            // pairs in the plan (only fork-ordered pairs are pruned, as in
            // the paper), so interference control + decay can need ~10
            // runs before the racy delay lands un-interfered; 8 was too
            // tight and charged budget exhaustion as a false negative
            // (see tests/corpus/s113-false-negative.json).
            max_detection_runs: 16,
            max_oracle_states: 2_000_000,
            memory: MemoryModel::Sc,
            reduction: true,
            repair: false,
        }
    }
}

/// How a case's observations contradicted its ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisagreementKind {
    /// A tool reported a MemOrder bug on a control workload.
    FalsePositive,
    /// `waffle` missed a planted bug the oracle proved exposable.
    FalseNegative,
    /// The oracle found a schedule that breaks a control (generator bug).
    ControlExposable,
    /// The oracle could not expose a planted bug within the bound.
    PlantUnexposable,
    /// An exposure (or the oracle witness) has the wrong bug class.
    KindMismatch,
    /// A planted bug manifested with no delays injected (timing margin
    /// violated — generator bug).
    SpontaneousPlant,
    /// The delay plan derived from the preparation trace is malformed.
    PlanInsane,
}

impl DisagreementKind {
    /// Stable human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DisagreementKind::FalsePositive => "false-positive",
            DisagreementKind::FalseNegative => "false-negative",
            DisagreementKind::ControlExposable => "control-exposable",
            DisagreementKind::PlantUnexposable => "plant-unexposable",
            DisagreementKind::KindMismatch => "kind-mismatch",
            DisagreementKind::SpontaneousPlant => "spontaneous-plant",
            DisagreementKind::PlanInsane => "plan-insane",
        }
    }
}

/// One oracle/detector disagreement, attributable to a generator seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Disagreement {
    /// Generator seed of the offending workload.
    pub seed: u64,
    /// Classification.
    pub kind: DisagreementKind,
    /// Offending tool, when one is implicated.
    pub tool: Option<String>,
    /// Free-form evidence.
    pub detail: String,
}

/// Compact per-tool result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ToolOutcome {
    /// Tool name as passed to `Tool::by_name`.
    pub tool: String,
    /// Bug class exposed, when a MemOrder bug was reported.
    pub exposed_kind: Option<NullRefKind>,
    /// Detection run that exposed it.
    pub exposed_in_run: Option<u32>,
    /// Total runs used (preparation included).
    pub total_runs: u32,
    /// Whether a thread-safety violation was reported (TSVD baseline).
    pub tsv: bool,
    /// Whether a manifestation occurred with no delays injected.
    pub spontaneous: bool,
}

impl ToolOutcome {
    fn from_outcome(tool: &str, o: &DetectionOutcome) -> Self {
        Self {
            tool: tool.to_string(),
            exposed_kind: o.exposed.as_ref().map(|b| b.kind),
            exposed_in_run: o.exposed.as_ref().map(|b| b.exposed_in_run),
            total_runs: o.total_runs(),
            tsv: o.tsv_exposed.is_some(),
            spontaneous: o.spontaneous,
        }
    }
}

/// Compact oracle result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OracleSummary {
    /// Whether some schedule within the bound manifests a bug.
    pub exposable: bool,
    /// Bug class of the witness, when exposable.
    pub kind: Option<NullRefKind>,
    /// Whether the state cap fired before exhaustion (no clean claim).
    pub truncated: bool,
    /// Genuine frontier states visited (distinct state fingerprints; the
    /// only count charged against the state cap).
    pub states: u64,
    /// Transitions skipped by sleep-set partial-order reduction.
    pub sleep_prunes: u64,
    /// Revisits pruned by the budget-dominance memo.
    pub memo_hits: u64,
}

/// Everything the harness learned about one generated case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Generator seed.
    pub seed: u64,
    /// Workload name (`fuzz.s<seed>`).
    pub name: String,
    /// Planted ground truth.
    pub truth: GroundTruth,
    /// Oracle verdict.
    pub oracle: OracleSummary,
    /// Per-tool outcomes, in [`TOOLS`] order.
    pub tools: Vec<ToolOutcome>,
    /// `waffle` needed suspiciously many runs for a planted bug.
    pub run_count_anomaly: bool,
    /// Ground-truth contradictions found on this case.
    pub disagreements: Vec<Disagreement>,
    /// Certified-repair synthesis outcome (`--repair` on oracle-exposable
    /// planted cases only).
    pub repair: Option<RepairReport>,
}

// Hand-written so `repair` is omitted when absent: reports produced
// without `--repair` keep their historical bytes. The vendored derive has
// no `#[serde(...)]` attributes.
impl Serialize for CaseReport {
    fn to_value(&self) -> serde::value::Value {
        let mut fields = vec![
            (String::from("seed"), self.seed.to_value()),
            (String::from("name"), self.name.to_value()),
            (String::from("truth"), self.truth.to_value()),
            (String::from("oracle"), self.oracle.to_value()),
            (String::from("tools"), self.tools.to_value()),
            (
                String::from("run_count_anomaly"),
                self.run_count_anomaly.to_value(),
            ),
            (
                String::from("disagreements"),
                self.disagreements.to_value(),
            ),
        ];
        if let Some(repair) = &self.repair {
            fields.push((String::from("repair"), repair.to_value()));
        }
        serde::value::Value::Map(fields)
    }
}

impl Deserialize for CaseReport {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::value::Error::expected("map", v))?;
        fn req<T: Deserialize>(
            m: &[(String, serde::value::Value)],
            name: &'static str,
        ) -> Result<T, serde::value::Error> {
            match serde::value::get(m, name) {
                Some(x) => T::from_value(x),
                None => Deserialize::missing_field(name),
            }
        }
        Ok(CaseReport {
            seed: req(m, "seed")?,
            name: req(m, "name")?,
            truth: req(m, "truth")?,
            oracle: req(m, "oracle")?,
            tools: req(m, "tools")?,
            run_count_anomaly: req(m, "run_count_anomaly")?,
            disagreements: req(m, "disagreements")?,
            repair: match serde::value::get(m, "repair") {
                Some(x) => Some(RepairReport::from_value(x)?),
                None => None,
            },
        })
    }
}

/// The full differential report (deterministic; no wall-clock data).
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// First generator seed.
    pub seed_base: u64,
    /// Seeds run.
    pub seeds: u64,
    /// Oracle preemption bound.
    pub preemption_bound: u32,
    /// Detection-run cap.
    pub max_detection_runs: u32,
    /// Memory model the sweep ran under.
    pub memory: MemoryModel,
    /// Per-case results, in seed order.
    pub cases: Vec<CaseReport>,
    /// All disagreements, flattened in seed order.
    pub disagreements: Vec<Disagreement>,
    /// Aggregate counters (`fuzz/*`).
    pub metrics: MetricsRegistry,
}

// Hand-written so `memory` is omitted under `Sc` (historical sc report
// bytes are pinned by the jobs-invariance tests) and defaults to `Sc` on
// read. The vendored derive has no `#[serde(...)]` attributes.
impl Serialize for FuzzReport {
    fn to_value(&self) -> serde::value::Value {
        let mut fields = vec![
            (String::from("seed_base"), self.seed_base.to_value()),
            (String::from("seeds"), self.seeds.to_value()),
            (
                String::from("preemption_bound"),
                self.preemption_bound.to_value(),
            ),
            (
                String::from("max_detection_runs"),
                self.max_detection_runs.to_value(),
            ),
        ];
        if !self.memory.is_sc() {
            fields.push((String::from("memory"), self.memory.to_value()));
        }
        fields.push((String::from("cases"), self.cases.to_value()));
        fields.push((
            String::from("disagreements"),
            self.disagreements.to_value(),
        ));
        fields.push((String::from("metrics"), self.metrics.to_value()));
        serde::value::Value::Map(fields)
    }
}

impl Deserialize for FuzzReport {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::value::Error::expected("map", v))?;
        fn req<T: Deserialize>(
            m: &[(String, serde::value::Value)],
            name: &'static str,
        ) -> Result<T, serde::value::Error> {
            match serde::value::get(m, name) {
                Some(x) => T::from_value(x),
                None => Deserialize::missing_field(name),
            }
        }
        Ok(FuzzReport {
            seed_base: req(m, "seed_base")?,
            seeds: req(m, "seeds")?,
            preemption_bound: req(m, "preemption_bound")?,
            max_detection_runs: req(m, "max_detection_runs")?,
            memory: match serde::value::get(m, "memory") {
                Some(x) => MemoryModel::from_value(x)?,
                None => MemoryModel::Sc,
            },
            cases: req(m, "cases")?,
            disagreements: req(m, "disagreements")?,
            metrics: req(m, "metrics")?,
        })
    }
}

impl FuzzReport {
    /// Serializes the report (the `--json` output).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let controls = self
            .cases
            .iter()
            .filter(|c| c.truth == GroundTruth::Control)
            .count();
        let planted = self.cases.len() - controls;
        let _ = writeln!(
            out,
            "fuzz: {} workloads ({controls} control, {planted} planted) \
             at preemption bound {}, seeds {}..{}",
            self.cases.len(),
            self.preemption_bound,
            self.seed_base,
            self.seed_base + self.seeds
        );
        // Memory-model provenance (the JSON always carried it via the
        // per-case plans; weak-model sweeps must be distinguishable in
        // text too). Sc stays silent: historical render bytes are pinned.
        if !self.memory.is_sc() {
            let _ = writeln!(out, "memory model: {}", self.memory.name());
        }
        let _ = writeln!(
            out,
            "oracle: {} exposable, {} truncated, {} states explored",
            self.metrics.counter("fuzz/oracle_exposable"),
            self.metrics.counter("fuzz/oracle_truncated"),
            self.metrics.counter("fuzz/oracle_states"),
        );
        let _ = writeln!(
            out,
            "oracle reduction: {} sleep-set prunes, {} memo hits",
            self.metrics.counter("oracle/sleep_prunes"),
            self.metrics.counter("oracle/memo_hits"),
        );
        for tool in TOOLS {
            let _ = writeln!(
                out,
                "{tool}: exposed {}/{planted} planted bugs",
                self.metrics.counter(&format!("fuzz/exposed/{tool}")),
            );
        }
        let _ = writeln!(
            out,
            "run-count anomalies: {}",
            self.metrics.counter("fuzz/run_anomalies")
        );
        let attempted = self.metrics.counter("repair/attempted");
        if attempted > 0 {
            let _ = writeln!(
                out,
                "repairs: {}/{attempted} certified ({} fence, {} event-edge, {} lock), \
                 {} unrepairable, {} candidates tried",
                self.metrics.counter("repair/certified"),
                self.metrics.counter("repair/fence"),
                self.metrics.counter("repair/event_edge"),
                self.metrics.counter("repair/lock"),
                self.metrics.counter("repair/unrepairable"),
                self.metrics.counter("repair/candidates_tried"),
            );
        }
        let truncated_skips = self.metrics.counter("fuzz/truncated_skips");
        if truncated_skips > 0 {
            let _ = writeln!(
                out,
                "warning: {truncated_skips} planted case(s) hit the oracle state cap — \
                 unexposability unchecked there; raise --max-oracle-states for a clean claim"
            );
        }
        if self.disagreements.is_empty() {
            let _ = writeln!(out, "disagreements: none");
        } else {
            let _ = writeln!(out, "disagreements: {}", self.disagreements.len());
            for d in &self.disagreements {
                let _ = writeln!(
                    out,
                    "  seed {} [{}]{}: {}",
                    d.seed,
                    d.kind.label(),
                    d.tool.as_deref().map(|t| format!(" {t}")).unwrap_or_default(),
                    d.detail
                );
            }
        }
        out
    }
}

/// A minimized disagreement persisted under `tests/corpus/` and replayed
/// by tier-1 forever.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Where the case came from (e.g. the disagreement it reproduced).
    pub label: String,
    /// Oracle bound the case was classified under.
    pub preemption_bound: u32,
    /// Memory model the case was classified under (`Sc` for every corpus
    /// entry minted before weak-memory support).
    pub memory: MemoryModel,
    /// The (shrunken) workload plus ground truth.
    pub case: FuzzCase,
}

// Hand-written so `memory` is omitted under `Sc` and defaults to `Sc` on
// read: corpus files minted before weak-memory support parse (and re-save)
// byte-identically. The vendored derive has no `#[serde(...)]` attributes.
impl Serialize for CorpusCase {
    fn to_value(&self) -> serde::value::Value {
        let mut fields = vec![
            (String::from("label"), self.label.to_value()),
            (
                String::from("preemption_bound"),
                self.preemption_bound.to_value(),
            ),
        ];
        if !self.memory.is_sc() {
            fields.push((String::from("memory"), self.memory.to_value()));
        }
        fields.push((String::from("case"), self.case.to_value()));
        serde::value::Value::Map(fields)
    }
}

impl Deserialize for CorpusCase {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::value::Error::expected("map", v))?;
        fn req<T: Deserialize>(
            m: &[(String, serde::value::Value)],
            name: &'static str,
        ) -> Result<T, serde::value::Error> {
            match serde::value::get(m, name) {
                Some(x) => T::from_value(x),
                None => Deserialize::missing_field(name),
            }
        }
        Ok(CorpusCase {
            label: req(m, "label")?,
            preemption_bound: req(m, "preemption_bound")?,
            memory: match serde::value::get(m, "memory") {
                Some(x) => MemoryModel::from_value(x)?,
                None => MemoryModel::Sc,
            },
            case: req(m, "case")?,
        })
    }
}

impl CorpusCase {
    /// Serializes the corpus entry.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a corpus entry.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Re-classifies the stored case; a regression reintroduces the
    /// disagreement and returns it here.
    pub fn replay(&self) -> Vec<Disagreement> {
        let cfg = FuzzConfig {
            preemption_bound: self.preemption_bound,
            memory: self.memory,
            ..FuzzConfig::default()
        };
        classify_case(&self.case, &cfg).disagreements
    }
}

/// Derives the delay plan from a delay-free recorded trace of `workload`
/// — the exact preparation-run recipe the detectors use (seed
/// `attempt_seed * 10_000 + 1`), so plan sanity and repair synthesis see
/// the same racing-pair evidence delay injection targets.
pub fn derive_plan(workload: &Workload, attempt_seed: u64, memory: MemoryModel) -> Plan {
    let mut rec = TraceRecorder::new(workload);
    let cfg = SimConfig::with_seed(attempt_seed * 10_000 + 1)
        .with_memory(MemoryConfig::from_model(memory));
    let _ = Simulator::run(workload, cfg, &mut rec);
    let trace = rec.into_trace();
    let index = TraceIndex::build(&trace);
    let analyzer = AnalyzerConfig::default().with_memory(memory);
    analyze_indexed(&index, &analyzer, 1)
}

/// Checks the derived delay plan: every planned site must exist in the
/// workload's registry with a positive, sane delay length.
fn plan_sanity(workload: &Workload, plan: &Plan) -> Option<String> {
    // α ≈ 1.15 on a gap < δ keeps every delay under 2δ.
    let ceiling = SimTime::from_us(plan.delta.as_us() * 2);
    for site in plan.delay_sites() {
        if site.0 as usize >= workload.sites.len() {
            return Some(format!("plan names unregistered site id {}", site.0));
        }
        let d = plan.delay_for(site);
        if d == SimTime::ZERO {
            return Some(format!(
                "plan assigns zero delay at {}",
                workload.sites.name(site)
            ));
        }
        if d > ceiling {
            return Some(format!(
                "plan delay {d} at {} exceeds 2δ",
                workload.sites.name(site)
            ));
        }
    }
    None
}

/// Runs the oracle, plan sanity, and all detectors on one case and
/// classifies the observations against the ground truth.
pub fn classify_case(case: &FuzzCase, cfg: &FuzzConfig) -> CaseReport {
    let w = &case.workload;
    let attempt_seed = 1u64;
    let oracle_rep = explore(
        w,
        &OracleConfig {
            preemption_bound: cfg.preemption_bound,
            max_states: cfg.max_oracle_states,
            memory: cfg.memory,
            reduce: cfg.reduction,
        },
    );
    let (oracle_kind, oracle_obj, truncated) = match oracle_rep.verdict {
        OracleVerdict::Exposable { kind, obj, .. } => (Some(kind), Some(obj), false),
        OracleVerdict::CleanWithinBound => (None, None, false),
        OracleVerdict::Truncated => (None, None, true),
    };

    let plan = derive_plan(w, attempt_seed, cfg.memory);
    let mut disagreements = Vec::new();
    if let Some(detail) = plan_sanity(w, &plan) {
        disagreements.push(Disagreement {
            seed: case.seed,
            kind: DisagreementKind::PlanInsane,
            tool: None,
            detail,
        });
    }

    let detector_cfg = DetectorConfig {
        max_detection_runs: cfg.max_detection_runs,
        memory: MemoryConfig::from_model(cfg.memory),
        ..DetectorConfig::default()
    };
    let outcomes: Vec<(&str, DetectionOutcome)> = TOOLS
        .iter()
        .map(|&name| {
            let tool = Tool::by_name(name).expect("known tool name");
            let outcome = Detector::with_config(tool, detector_cfg.clone()).detect(w, attempt_seed);
            (name, outcome)
        })
        .collect();
    let tools: Vec<ToolOutcome> = outcomes
        .iter()
        .map(|(name, o)| ToolOutcome::from_outcome(name, o))
        .collect();
    let waffle = &outcomes[0].1;

    let mut run_count_anomaly = false;
    match case.truth {
        GroundTruth::Control => {
            if let Some(kind) = oracle_kind {
                disagreements.push(Disagreement {
                    seed: case.seed,
                    kind: DisagreementKind::ControlExposable,
                    tool: None,
                    detail: format!("oracle exposed {} on a control workload", kind.label()),
                });
            }
            for (name, o) in &outcomes {
                if let Some(bug) = &o.exposed {
                    disagreements.push(Disagreement {
                        seed: case.seed,
                        kind: DisagreementKind::FalsePositive,
                        tool: Some(name.to_string()),
                        detail: format!(
                            "reported {} at {} on a control workload",
                            bug.kind.label(),
                            bug.site
                        ),
                    });
                }
                if o.spontaneous {
                    disagreements.push(Disagreement {
                        seed: case.seed,
                        kind: DisagreementKind::ControlExposable,
                        tool: Some(name.to_string()),
                        detail: "spontaneous manifestation on a control workload".into(),
                    });
                }
            }
        }
        GroundTruth::Planted { kind, .. } => {
            for (name, o) in &outcomes {
                if o.spontaneous {
                    disagreements.push(Disagreement {
                        seed: case.seed,
                        kind: DisagreementKind::SpontaneousPlant,
                        tool: Some(name.to_string()),
                        detail: "planted bug fired with no delays injected".into(),
                    });
                }
            }
            match oracle_kind {
                None if !truncated => disagreements.push(Disagreement {
                    seed: case.seed,
                    kind: DisagreementKind::PlantUnexposable,
                    tool: None,
                    detail: format!(
                        "oracle found no schedule for the planted {} within bound {}",
                        kind.label(),
                        cfg.preemption_bound
                    ),
                }),
                Some(k) if k != kind => disagreements.push(Disagreement {
                    seed: case.seed,
                    kind: DisagreementKind::KindMismatch,
                    tool: None,
                    detail: format!(
                        "oracle witness is {}, planted {}",
                        k.label(),
                        kind.label()
                    ),
                }),
                _ => {}
            }
            match &waffle.exposed {
                Some(bug) => {
                    if bug.kind != kind {
                        disagreements.push(Disagreement {
                            seed: case.seed,
                            kind: DisagreementKind::KindMismatch,
                            tool: Some("waffle".into()),
                            detail: format!(
                                "exposed {}, planted {}",
                                bug.kind.label(),
                                kind.label()
                            ),
                        });
                    }
                    // Paper claim: preparation + a handful of detection
                    // runs. Needing more than 4 detection runs on these
                    // small planted shapes is worth counting.
                    run_count_anomaly = bug.exposed_in_run > 4;
                }
                None => {
                    if oracle_kind.is_some() {
                        disagreements.push(Disagreement {
                            seed: case.seed,
                            kind: DisagreementKind::FalseNegative,
                            tool: Some("waffle".into()),
                            detail: format!(
                                "oracle-exposable {} missed in {} runs",
                                kind.label(),
                                waffle.total_runs()
                            ),
                        });
                    }
                }
            }
        }
    }

    // Repair synthesis: only for planted cases the oracle proved
    // exposable — a control (or an unexposable plant) structurally never
    // gets a repair report, which is exactly what the CI gate asserts.
    let repair = match (cfg.repair, case.truth, oracle_kind, oracle_obj) {
        (true, GroundTruth::Planted { .. }, Some(kind), Some(obj)) => {
            Some(synthesize_with_oracle(
                w,
                &plan,
                kind,
                obj,
                &OracleConfig {
                    preemption_bound: cfg.preemption_bound,
                    max_states: cfg.max_oracle_states,
                    memory: cfg.memory,
                    reduce: cfg.reduction,
                },
            ))
        }
        _ => None,
    };

    CaseReport {
        seed: case.seed,
        name: w.name.clone(),
        truth: case.truth,
        oracle: OracleSummary {
            exposable: oracle_kind.is_some(),
            kind: oracle_kind,
            truncated,
            states: oracle_rep.states_explored,
            sleep_prunes: oracle_rep.sleep_prunes,
            memo_hits: oracle_rep.memo_hits,
        },
        tools,
        run_count_anomaly,
        disagreements,
        repair,
    }
}

/// Generates and classifies one seed.
pub fn run_case(seed: u64, cfg: &FuzzConfig) -> CaseReport {
    classify_case(&generate_case_for_model(seed, cfg.memory), cfg)
}

/// Runs the whole seed block, fanning out across `cfg.jobs` workers, and
/// aggregates the deterministic report.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let seeds: Vec<u64> = (0..cfg.seeds).map(|i| cfg.seed_base + i).collect();
    let cases = run_parallel(&seeds, cfg.jobs.max(1), |&seed| run_case(seed, cfg));

    let mut metrics = MetricsRegistry::new();
    let mut disagreements = Vec::new();
    for case in &cases {
        metrics.inc("fuzz/workloads", 1);
        metrics.inc(
            if case.truth == GroundTruth::Control {
                "fuzz/controls"
            } else {
                "fuzz/planted"
            },
            1,
        );
        metrics.inc("fuzz/oracle_states", case.oracle.states);
        metrics.inc("fuzz/oracle_exposable", case.oracle.exposable as u64);
        metrics.inc("fuzz/oracle_truncated", case.oracle.truncated as u64);
        // Oracle exploration economics (`oracle/*`): frontier states vs
        // what the reducer and the memo pruned away.
        metrics.inc("oracle/states", case.oracle.states);
        metrics.inc("oracle/sleep_prunes", case.oracle.sleep_prunes);
        metrics.inc("oracle/memo_hits", case.oracle.memo_hits);
        // A truncated oracle on a planted case proved nothing either way:
        // the unexposability check was *skipped*, not passed. Count those
        // skips separately so a sweep can't quietly launder a too-small
        // state budget into "all plants confirmed". The key is only
        // created when it fires, keeping historical report bytes intact.
        if case.oracle.truncated && case.truth != GroundTruth::Control {
            metrics.inc("fuzz/truncated_skips", 1);
        }
        metrics.inc("fuzz/run_anomalies", case.run_count_anomaly as u64);
        metrics.inc("fuzz/disagreements", case.disagreements.len() as u64);
        for t in &case.tools {
            if t.exposed_kind.is_some() {
                metrics.inc(&format!("fuzz/exposed/{}", t.tool), 1);
            }
        }
        // Repair counters exist only when `--repair` produced reports, so
        // non-repair sweeps keep their historical metric bytes. An
        // uncertified-patch counter is deliberately absent: a report's
        // `patch` field is `Some` only after oracle certification, so the
        // split is exactly certified vs unrepairable.
        if let Some(r) = &case.repair {
            metrics.inc("repair/attempted", 1);
            metrics.inc("repair/candidates_tried", u64::from(r.candidates_tried));
            match r.repair_kind() {
                Some(kind) => {
                    metrics.inc("repair/certified", 1);
                    metrics.inc(
                        match kind {
                            waffle_sim::RepairKind::Fence => "repair/fence",
                            waffle_sim::RepairKind::EventEdge => "repair/event_edge",
                            waffle_sim::RepairKind::LockScope => "repair/lock",
                        },
                        1,
                    );
                }
                None => metrics.inc("repair/unrepairable", 1),
            }
        }
        disagreements.extend(case.disagreements.iter().cloned());
    }

    FuzzReport {
        seed_base: cfg.seed_base,
        seeds: cfg.seeds,
        preemption_bound: cfg.preemption_bound,
        max_detection_runs: cfg.max_detection_runs,
        memory: cfg.memory,
        cases,
        disagreements,
        metrics,
    }
}

/// Order-preserving parallel map: workers claim indices from an atomic
/// counter and results are stitched back by input position, so the output
/// is independent of the worker count (the `ExperimentEngine` pattern).
fn run_parallel<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let first_panic: Mutex<Option<(usize, String)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= items.len() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => *slots[i].lock().unwrap() = Some(r),
                    Err(p) => {
                        let msg = panic_message(&p);
                        let mut guard = first_panic.lock().unwrap();
                        // Keep the panic from the lowest input index so the
                        // surfaced failure is deterministic across schedules
                        // (`is_none_or` would read better but needs 1.82).
                        let lowest = match guard.as_ref() {
                            Some((j, _)) => i < *j,
                            None => true,
                        };
                        if lowest {
                            *guard = Some((i, msg));
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some((i, msg)) = first_panic.into_inner().unwrap() {
        panic!("fuzz worker panicked on item {i}: {msg}");
    }
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("slot filled"))
        .collect()
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_block_has_no_disagreements_and_is_jobs_invariant() {
        let cfg = FuzzConfig {
            seeds: 6,
            jobs: 1,
            ..FuzzConfig::default()
        };
        let serial = run_fuzz(&cfg);
        assert!(
            serial.disagreements.is_empty(),
            "{}",
            serial.render()
        );
        let parallel = run_fuzz(&FuzzConfig { jobs: 4, ..cfg });
        assert_eq!(
            serial.to_json().unwrap(),
            parallel.to_json().unwrap(),
            "report must be byte-identical at any job count"
        );
    }

    #[test]
    fn corpus_round_trip_preserves_replay_verdict() {
        let case = generate_case(3);
        let entry = CorpusCase {
            label: "unit-test".into(),
            preemption_bound: 2,
            memory: MemoryModel::Sc,
            case,
        };
        let json = entry.to_json().unwrap();
        assert!(
            !json.contains("\"memory\""),
            "Sc corpus entries must serialize without a memory field"
        );
        let back = CorpusCase::from_json(&json).unwrap();
        assert_eq!(back.memory, MemoryModel::Sc);
        assert_eq!(back.replay().len(), entry.replay().len());
    }

    /// End-to-end weak-memory differential: under `tso`/`pso` the whole
    /// machinery — generator, oracle drain choices, store-buffer engine,
    /// trace analysis, delay injection — agrees with the planted ground
    /// truth, and `waffle` exposes reordering bugs no SC run can see.
    #[test]
    fn weak_memory_sweep_has_no_disagreements() {
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let cfg = FuzzConfig {
                seeds: 8,
                memory: model,
                ..FuzzConfig::default()
            };
            let report = run_fuzz(&cfg);
            assert!(
                report.disagreements.is_empty(),
                "{model}:\n{}",
                report.render()
            );
            assert!(
                report.metrics.counter("fuzz/exposed/waffle") > 0,
                "{model}: waffle must expose at least one planted reordering bug\n{}",
                report.render()
            );
        }
    }

    /// A truncated oracle proves nothing: planted cases whose
    /// unexposability check was cut short must surface as counted skips,
    /// never as `plant-unexposable` (or any other) disagreements.
    #[test]
    fn oracle_truncation_is_a_skip_not_a_disagreement() {
        let cfg = FuzzConfig {
            seeds: 12, // seeds 0..12 hold 4 planted cases
            max_oracle_states: 1, // force Truncated on every case
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        let planted = report.metrics.counter("fuzz/planted");
        assert!(planted > 0, "seed block must contain planted cases");
        assert_eq!(
            report.metrics.counter("fuzz/truncated_skips"),
            planted,
            "every truncated planted case must be counted as a skip"
        );
        for d in &report.disagreements {
            assert_ne!(
                d.kind,
                DisagreementKind::PlantUnexposable,
                "truncation must never be read as confirmed unexposable: {}",
                d.detail
            );
            assert_ne!(
                d.kind,
                DisagreementKind::FalseNegative,
                "an unproven oracle claim must not indict the detector: {}",
                d.detail
            );
        }
        assert!(
            report.render().contains("warning:"),
            "render must warn about skipped unexposability checks"
        );
    }
}
