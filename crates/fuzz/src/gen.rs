//! Seeded synthetic-workload generator with planted, labelled bugs.
//!
//! Every generated workload carries its own ground truth: either it is a
//! *control* — all init/use/dispose sequences are ordered by fork, event,
//! or join edges, so no schedule can raise a NULL-reference — or it has
//! exactly one *planted* MemOrder bug (use-before-init or
//! use-after-dispose) whose class and object travel with the case.
//!
//! Planted and control populations are deliberately shaped alike (same
//! spawn trees, lock regions, pool tasks, thread-unsafe dictionary calls):
//! a control is a planted case with the one missing ordering edge
//! restored. Planted timing windows are chosen so the bug never fires
//! *spontaneously* under the simulator's default 3% timing noise (the
//! racing accesses are separated by at least 4× the earlier access's
//! offset plus 2 ms) yet the gap always stays under the analyzer's
//! near-miss window δ = 100 ms, so the pair is a delay-plan candidate.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use waffle_mem::{NullRefKind, ObjectId};
use waffle_sim::{Cond, MemoryModel, SimTime, Workload, WorkloadBuilder};

/// The label that travels with a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroundTruth {
    /// Fully ordered: no schedule raises a NULL-reference exception.
    Control,
    /// Exactly one schedule-dependent MemOrder bug was planted.
    Planted {
        /// Expected manifestation class.
        kind: NullRefKind,
        /// The racy object.
        obj: ObjectId,
    },
}

impl GroundTruth {
    /// Whether this is a planted-bug case.
    pub fn planted(&self) -> bool {
        matches!(self, GroundTruth::Planted { .. })
    }
}

/// A generated workload plus its provenance and ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzCase {
    /// Generator seed that produced the case.
    pub seed: u64,
    /// The workload itself.
    pub workload: Workload,
    /// The planted label.
    pub truth: GroundTruth,
}

impl FuzzCase {
    /// Serializes the case (corpus persistence format).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a case from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Workload shape drawn for one seed.
#[derive(Clone, Copy, PartialEq)]
enum Cat {
    /// Ordered twin of [`Cat::Ubi`] (init signalled before the racy use).
    ControlUbi,
    /// Ordered twin of [`Cat::Uaf`] (dispose moved after the join).
    ControlUaf,
    /// Planted use-before-init: main's init races a worker's use.
    Ubi,
    /// Planted use-after-dispose: main disposes before joining the user.
    Uaf,
}

impl Cat {
    fn uaf_shaped(self) -> bool {
        matches!(self, Cat::Uaf | Cat::ControlUaf)
    }
}

fn us(v: u64) -> SimTime {
    SimTime::from_us(v)
}

/// Generates the workload and ground truth for `seed`.
///
/// The same seed always yields a byte-identical workload; distinct seeds
/// draw independent shapes (worker count, lock regions, pool subtrees,
/// thread-unsafe dictionary traffic) and timing windows.
pub fn generate_case(seed: u64) -> FuzzCase {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CAFE_F00D_0001);

    let cat = match rng.gen_range(0..10u32) {
        0..=1 => Cat::ControlUbi,
        2..=3 => Cat::ControlUaf,
        4..=6 => Cat::Ubi,
        _ => Cat::Uaf,
    };
    let n_workers = rng.gen_range(1..=3usize);
    let n_safe = rng.gen_range(1..=3usize);
    let with_lock = rng.gen_range(0..100u32) < 40;
    let with_dict = rng.gen_range(0..100u32) < 30;
    let with_subtree = rng.gen_range(0..100u32) < 25;

    // Racing-window offsets (µs). The later access trails the earlier one
    // by ≥ 4× + 2 ms (no spontaneous manifestation at 3% noise) and by
    // ≤ 80 ms total (always inside the analyzer's δ = 100 ms window).
    let (early_off, late_off) = if cat.uaf_shaped() {
        let use_small = rng.gen_range(200..=2_000u64);
        let dispose_delay = rng.gen_range(4 * use_small + 2_000..=50_000);
        (use_small, dispose_delay)
    } else {
        let init_delay = rng.gen_range(100..=2_000u64);
        let use_delay = rng.gen_range(4 * init_delay + 2_000..=80_000);
        (init_delay, use_delay)
    };
    let lock_racy = with_lock && !cat.uaf_shaped() && rng.gen_range(0..100u32) < 50;

    let pad_start = rng.gen_range(200..=1_000u64);
    let pad_end = rng.gen_range(200..=1_000u64);

    // Safe-object plan: pre-fork objects are initialized before any fork;
    // post-fork objects are initialized by main after the forks and
    // published through a dedicated sticky event.
    let mut safe_pre = Vec::with_capacity(n_safe);
    let mut safe_worker_users: Vec<Vec<usize>> = Vec::with_capacity(n_safe);
    let mut safe_main_user = Vec::with_capacity(n_safe);
    let mut safe_post_delay = Vec::with_capacity(n_safe);
    for i in 0..n_safe {
        let forced_pre = with_subtree && i == 0;
        safe_pre.push(forced_pre || rng.gen_range(0..100u32) < 60);
        let mut users: Vec<usize> = (0..n_workers)
            .filter(|_| rng.gen_range(0..100u32) < 50)
            .collect();
        let main_uses = rng.gen_range(0..100u32) < 30;
        if users.is_empty() && !main_uses {
            users.push(rng.gen_range(0..n_workers));
        }
        safe_worker_users.push(users);
        safe_main_user.push(main_uses);
        safe_post_delay.push(rng.gen_range(50..=500u64));
    }
    let dict_worker = n_workers - 1;
    let dict_off_worker = rng.gen_range(500..=1_500u64);
    let dict_off_main = rng.gen_range(10_000..=18_000u64);
    let dict_window = rng.gen_range(100..=300u64);
    let sub_parent = n_workers - 1;

    let mut b = WorkloadBuilder::new(format!("fuzz.s{seed}"));
    let racy = b.object("racy");
    let safe: Vec<ObjectId> = (0..n_safe).map(|i| b.object(&format!("safe{i}"))).collect();
    let dict = with_dict.then(|| b.object("dict"));
    let started = b.event("started");
    let racy_ev = (cat == Cat::ControlUbi).then(|| b.event("racy_ready"));
    let safe_ev: Vec<_> = (0..n_safe)
        .map(|i| (!safe_pre[i]).then(|| b.event(&format!("safe{i}_ready"))))
        .collect();
    let lk = with_lock.then(|| b.lock("mu"));

    let sub = with_subtree.then(|| {
        let o = safe[0];
        let j1 = us(rng.gen_range(100..=3_000u64));
        let d = us(rng.gen_range(20..=100u64));
        b.script("sub", move |s| {
            s.compute(j1).use_(o, "sub.safe0.use", d);
        })
    });

    let mut workers = Vec::with_capacity(n_workers);
    for w in 0..n_workers {
        // Pre-draw this worker's safe-object visits so the builder closure
        // captures plain data.
        let visits: Vec<(usize, ObjectId, u64, u64, bool)> = (0..n_safe)
            .filter(|&i| safe_worker_users[i].contains(&w))
            .map(|i| {
                (
                    i,
                    safe[i],
                    rng.gen_range(100..=3_000u64),
                    rng.gen_range(20..=100u64),
                    with_lock && rng.gen_range(0..100u32) < 50,
                )
            })
            .collect();
        let racy_use_dur = us(rng.gen_range(20..=100u64));
        let safe_ev = safe_ev.clone();
        let wid = b.script(format!("worker{w}"), move |s| {
            s.wait(started);
            if with_subtree && w == sub_parent {
                s.fork(sub.unwrap());
            }
            if with_dict && w == dict_worker && w != 0 {
                s.compute(us(dict_off_worker))
                    .unsafe_call(dict.unwrap(), "dict.add.worker", us(dict_window));
            }
            if w == 0 {
                match cat {
                    Cat::Ubi => {
                        s.compute(us(late_off));
                        if lock_racy {
                            s.acquire(lk.unwrap());
                        }
                        s.use_(racy, "racy.use", racy_use_dur);
                        if lock_racy {
                            s.release(lk.unwrap());
                        }
                    }
                    Cat::ControlUbi => {
                        s.wait(racy_ev.unwrap()).compute(us(late_off));
                        if lock_racy {
                            s.acquire(lk.unwrap());
                        }
                        s.use_(racy, "racy.use", racy_use_dur);
                        if lock_racy {
                            s.release(lk.unwrap());
                        }
                    }
                    Cat::Uaf | Cat::ControlUaf => {
                        s.compute(us(early_off)).use_(racy, "racy.use", racy_use_dur);
                    }
                }
                if with_dict && dict_worker == 0 {
                    s.compute(us(dict_off_worker)).unsafe_call(
                        dict.unwrap(),
                        "dict.add.worker",
                        us(dict_window),
                    );
                }
            }
            for (i, obj, jitter, dur, wrap) in visits {
                if let Some(ev) = safe_ev[i] {
                    s.wait(ev);
                }
                s.compute(us(jitter));
                if wrap {
                    s.acquire(lk.unwrap());
                }
                s.use_(obj, &format!("safe{i}.use.w{w}"), us(dur));
                if wrap {
                    s.release(lk.unwrap());
                }
            }
            if with_subtree && w == sub_parent {
                s.join_children();
            }
        });
        workers.push(wid);
    }

    let main_visits: Vec<(usize, ObjectId, u64, u64)> = (0..n_safe)
        .filter(|&i| safe_main_user[i])
        .map(|i| {
            (
                i,
                safe[i],
                rng.gen_range(100..=3_000u64),
                rng.gen_range(20..=100u64),
            )
        })
        .collect();
    let mut main_durs = Vec::new();
    for _ in 0..8 {
        main_durs.push(us(rng.gen_range(20..=100u64)));
    }
    let safe_clone = safe.clone();
    let safe_pre_clone = safe_pre.clone();
    let safe_post = safe_post_delay.clone();
    let safe_ev_main = safe_ev.clone();
    let workers_clone = workers.clone();
    let m = b.script("main", move |s| {
        s.pad(us(pad_start));
        if cat.uaf_shaped() {
            s.init(racy, "racy.init", main_durs[0]);
        }
        for (i, &obj) in safe_clone.iter().enumerate() {
            if safe_pre_clone[i] {
                s.init(obj, &format!("safe{i}.init"), main_durs[1]);
            }
        }
        if let Some(d) = dict {
            s.init(d, "dict.init", main_durs[2]);
        }
        for &wid in &workers_clone {
            s.fork(wid);
        }
        s.signal(started);
        if !cat.uaf_shaped() {
            s.compute(us(early_off)).init(racy, "racy.init", main_durs[3]);
            if let Some(ev) = racy_ev {
                s.signal(ev);
            }
        }
        for (i, &obj) in safe_clone.iter().enumerate() {
            if let Some(ev) = safe_ev_main[i] {
                s.compute(us(safe_post[i]))
                    .init(obj, &format!("safe{i}.init"), main_durs[4]);
                s.signal(ev);
            }
        }
        for (i, obj, jitter, dur) in main_visits {
            s.compute(us(jitter))
                .use_(obj, &format!("safe{i}.use.main"), us(dur));
        }
        if let Some(d) = dict {
            s.compute(us(dict_off_main))
                .unsafe_call(d, "dict.add.main", us(dict_window));
        }
        if cat == Cat::Uaf {
            s.compute(us(late_off)).dispose(racy, "racy.dispose", main_durs[5]);
        }
        s.join_children();
        if cat != Cat::Uaf {
            s.dispose(racy, "racy.dispose", main_durs[5]);
        }
        for (i, &obj) in safe_clone.iter().enumerate() {
            s.dispose(obj, &format!("safe{i}.dispose"), main_durs[6]);
        }
        if let Some(d) = dict {
            s.dispose(d, "dict.dispose", main_durs[7]);
        }
        s.pad(us(pad_end));
    });
    b.main(m);
    let workload = b.build();
    debug_assert!(workload.validate().is_ok());

    let truth = match cat {
        Cat::ControlUbi | Cat::ControlUaf => GroundTruth::Control,
        Cat::Ubi => GroundTruth::Planted {
            kind: NullRefKind::UseBeforeInit,
            obj: racy,
        },
        Cat::Uaf => GroundTruth::Planted {
            kind: NullRefKind::UseAfterFree,
            obj: racy,
        },
    };
    FuzzCase {
        seed,
        workload,
        truth,
    }
}

/// Weak-memory workload shape drawn for one seed.
///
/// Every planted shape is *sequentially consistent-clean*: the racy
/// accesses are ordered by the signal/poll protocol, so no interleaving of
/// committed stores manifests a bug — only a store lingering in a buffer
/// does. Each has an ordered twin with a fence at the publication point.
#[derive(Clone, Copy, PartialEq)]
enum WeakCat {
    /// TSO handoff: main inits then signals; the consumer's use races the
    /// init's *drain*, not its execution (use-before-init).
    Handoff,
    /// [`Handoff`](WeakCat::Handoff) with a fence between init and signal.
    HandoffControl,
    /// TSO recycle: dispose + re-init both buffered; the dispose drains
    /// first (FIFO), so a stretched re-init leaves the disposed value
    /// visible (use-after-free).
    Recycle,
    /// [`Recycle`](WeakCat::Recycle) with a fence before the signal.
    RecycleControl,
    /// PSO data/flag publication: flag may drain before data (per-object
    /// FIFO only), so the guarded read sees null data (use-before-init).
    /// TSO's total store order protects this shape.
    Flag,
    /// [`Flag`](WeakCat::Flag) with a fence between the two inits.
    FlagControl,
}

impl WeakCat {
    fn control(self) -> bool {
        matches!(
            self,
            WeakCat::HandoffControl | WeakCat::RecycleControl | WeakCat::FlagControl
        )
    }
}

/// Generates the workload and ground truth for `seed` under `model`.
///
/// `Sc` delegates to [`generate_case`] — byte-identical to the historical
/// generator, which the 200-seed sweep pins. `Tso`/`Pso` draw from a
/// separate population of store-buffer reordering shapes (plus fenced
/// control twins) sized so the racing window is far above the drain
/// latency (no spontaneous manifestation) yet inside the analyzer's
/// δ = 100 ms near-miss window (the pair is always a delay candidate).
pub fn generate_case_for_model(seed: u64, model: MemoryModel) -> FuzzCase {
    if !model.is_weak() {
        return generate_case(seed);
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CAFE_F00D_0002);

    let cat = match (model, rng.gen_range(0..10u32)) {
        // TSO: handoff-heavy with the recycle (UAF) shape mixed in.
        (MemoryModel::Tso, 0..=1) => WeakCat::HandoffControl,
        (MemoryModel::Tso, 2..=3) => WeakCat::RecycleControl,
        (MemoryModel::Tso, 4..=6) => WeakCat::Handoff,
        (MemoryModel::Tso, _) => WeakCat::Recycle,
        // PSO: flag-heavy; the TSO shapes remain exposable (PSO is weaker).
        (_, 0..=1) => WeakCat::FlagControl,
        (_, 2..=3) => WeakCat::HandoffControl,
        (_, 4..=6) => WeakCat::Flag,
        (_, _) => WeakCat::Handoff,
    };

    // The reader trails the publication by poll_off µs: ≥ 2 ms (40× the
    // 50 µs drain latency — the stale window never reaches it naturally)
    // and ≤ 20 ms (well under δ, so delay = 1.15·gap is planned and a
    // stretched drain covers the read). The storer stays busy past the
    // read: a join is a forced drain point, so reaching it early would
    // close the window that injection opened.
    let poll_off = rng.gen_range(2_000..=20_000u64);
    let busy = poll_off + rng.gen_range(2_000..=10_000u64);
    let pad_start = rng.gen_range(200..=1_000u64);
    let pad_end = rng.gen_range(200..=1_000u64);
    let d_init = us(rng.gen_range(20..=100u64));
    let d_use = us(rng.gen_range(20..=100u64));
    let d_aux = us(rng.gen_range(20..=100u64));

    let mut b = WorkloadBuilder::new(format!("fuzz.{}.s{seed}", model.name()));
    let racy = b.object("racy");
    let flag = matches!(cat, WeakCat::Flag | WeakCat::FlagControl).then(|| b.object("flag"));
    let ready = b.event("ready");
    let fenced = cat.control();

    let reader = b.script("reader", move |s| {
        match cat {
            WeakCat::Flag | WeakCat::FlagControl => {
                // No event handshake: the guard itself is the protocol.
                // A null flag skips the use (reader arrived early); a
                // set flag promises the data is visible — unless the
                // data store is still sitting in the buffer (PSO).
                s.compute(us(poll_off))
                    .skip_if(flag.unwrap(), Cond::IsNull, 1)
                    .use_(racy, "racy.use", d_use);
            }
            _ => {
                s.wait(ready).compute(us(poll_off)).use_(racy, "racy.use", d_use);
            }
        }
    });

    let m = b.script("main", move |s| {
        s.pad(us(pad_start));
        if matches!(cat, WeakCat::Recycle | WeakCat::RecycleControl) {
            // The recycle victim exists before the reader does.
            s.init(racy, "racy.init", d_aux);
        }
        s.fork(reader);
        match cat {
            WeakCat::Handoff | WeakCat::HandoffControl => {
                s.init(racy, "racy.init", d_init);
                if fenced {
                    s.fence();
                }
                s.signal(ready);
            }
            WeakCat::Recycle | WeakCat::RecycleControl => {
                s.dispose(racy, "racy.dispose", d_aux)
                    .init(racy, "racy.reinit", d_init);
                if fenced {
                    s.fence();
                }
                s.signal(ready);
            }
            WeakCat::Flag | WeakCat::FlagControl => {
                s.init(racy, "racy.init", d_init);
                if fenced {
                    s.fence();
                }
                s.init(flag.unwrap(), "flag.init", d_aux);
            }
        }
        s.compute(us(busy)).join_children();
        s.dispose(racy, "racy.dispose.end", d_aux);
        if let Some(f) = flag {
            s.dispose(f, "flag.dispose", d_aux);
        }
        s.pad(us(pad_end));
    });
    b.main(m);
    let workload = b.build();
    debug_assert!(workload.validate().is_ok());

    let truth = if cat.control() {
        GroundTruth::Control
    } else {
        GroundTruth::Planted {
            kind: if cat == WeakCat::Recycle {
                NullRefKind::UseAfterFree
            } else {
                NullRefKind::UseBeforeInit
            },
            obj: racy,
        }
    };
    FuzzCase {
        seed,
        workload,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{explore, OracleConfig, OracleVerdict};

    #[test]
    fn generation_is_deterministic() {
        let a = generate_case(7).to_json().unwrap();
        let b = generate_case(7).to_json().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn generated_workloads_validate_and_cover_all_categories() {
        let mut controls = 0;
        let mut ubi = 0;
        let mut uaf = 0;
        for seed in 0..200 {
            let case = generate_case(seed);
            case.workload
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            match case.truth {
                GroundTruth::Control => controls += 1,
                GroundTruth::Planted {
                    kind: NullRefKind::UseBeforeInit,
                    ..
                } => ubi += 1,
                GroundTruth::Planted { .. } => uaf += 1,
            }
        }
        assert!(controls > 20, "controls {controls}");
        assert!(ubi > 10, "ubi {ubi}");
        assert!(uaf > 10, "uaf {uaf}");
    }

    #[test]
    fn weak_generation_is_deterministic_and_sc_delegates() {
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let a = generate_case_for_model(7, model).to_json().unwrap();
            let b = generate_case_for_model(7, model).to_json().unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(
            generate_case_for_model(7, MemoryModel::Sc).to_json().unwrap(),
            generate_case(7).to_json().unwrap(),
            "Sc must delegate to the historical generator byte-for-byte"
        );
    }

    /// The weak-memory ground truth, both directions: every planted
    /// reordering bug is exposable by some drain schedule under its
    /// model, and *no* generated shape (planted or control) is exposable
    /// under sequential consistency — the bugs exist only in the buffers.
    #[test]
    fn weak_plants_are_sc_clean_and_weak_exposable() {
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            for seed in 0..20 {
                let case = generate_case_for_model(seed, model);
                case.workload
                    .validate()
                    .unwrap_or_else(|e| panic!("{model} seed {seed}: {e}"));
                let sc = explore(&case.workload, &OracleConfig::default());
                assert_eq!(
                    sc.verdict,
                    OracleVerdict::CleanWithinBound,
                    "{model} seed {seed}: weak-memory shapes must be SC-clean"
                );
                let weak = explore(
                    &case.workload,
                    &OracleConfig {
                        memory: model,
                        ..OracleConfig::default()
                    },
                );
                match case.truth {
                    GroundTruth::Control => assert_eq!(
                        weak.verdict,
                        OracleVerdict::CleanWithinBound,
                        "{model} seed {seed}: fenced control must stay clean"
                    ),
                    GroundTruth::Planted { kind, obj } => match weak.verdict {
                        OracleVerdict::Exposable {
                            kind: k, obj: o, ..
                        } => assert_eq!((k, o), (kind, obj), "{model} seed {seed}"),
                        v => panic!("{model} seed {seed}: plant not exposable ({v:?})"),
                    },
                }
            }
        }
    }

    #[test]
    fn oracle_agrees_with_planted_ground_truth() {
        let cfg = OracleConfig::default();
        for seed in 0..40 {
            let case = generate_case(seed);
            let report = explore(&case.workload, &cfg);
            match case.truth {
                GroundTruth::Control => assert_eq!(
                    report.verdict,
                    OracleVerdict::CleanWithinBound,
                    "seed {seed}: control must be unexposable"
                ),
                GroundTruth::Planted { kind, obj } => match report.verdict {
                    OracleVerdict::Exposable {
                        kind: k, obj: o, ..
                    } => {
                        assert_eq!((k, o), (kind, obj), "seed {seed}");
                    }
                    v => panic!("seed {seed}: planted bug not exposable ({v:?})"),
                },
            }
        }
    }
}
