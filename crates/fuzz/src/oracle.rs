//! Bounded exhaustive schedule exploration over the simulated instruction
//! set: the ground-truth oracle for differential detector testing.
//!
//! The explorer answers one question about a workload, independently of
//! delay injection: *does any thread schedule make an instrumented access
//! raise a NULL-reference exception?* It walks a time-free mirror of the
//! engine's semantics — same heap state machine, same FIFO locks, same
//! sticky events, same join/task rules — enumerating schedules in the
//! CHESS style: context switches are free at blocking points and cost one
//! unit of a *preemption budget* at instrumented accesses.
//!
//! Preemption points are placed **only** at [`Op::Access`] boundaries
//! because those are exactly the program points where delay injection can
//! hold a thread back: an injected delay pauses the accessing thread
//! immediately before its access commits, so every injection-reachable
//! interleaving is a sequence of access-boundary preemptions. Preempting at
//! more locations would declare bugs "exposable" that no delay placement
//! can reach and charge the detector with spurious false negatives.
//!
//! State explosion is held down by memoizing a canonical byte encoding of
//! each scheduler state together with the largest remaining budget it was
//! visited with; a state revisited with no more budget than before cannot
//! reach anything new and is pruned.

use std::collections::{HashMap, VecDeque};

use waffle_mem::{AccessKind, NullRefKind, ObjectId, RefState};
use waffle_sim::{Cond, MemoryModel, Op, Workload};

/// Tuning knobs for the bounded explorer.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Maximum preemptive context switches per schedule (switches taken
    /// while the running thread could have continued). Switches at
    /// blocking points are free, as in context-bounded model checking.
    pub preemption_bound: u32,
    /// Hard cap on distinct scheduler states explored; exceeding it yields
    /// [`OracleVerdict::Truncated`] instead of a clean verdict.
    pub max_states: u64,
    /// Memory model explored. Under a weak model each thread owns a store
    /// buffer whose *drain points* are additional schedule choices: the
    /// explorer may commit any committable buffered store (TSO: the oldest;
    /// PSO: the oldest per object) at any decision point, and a thread
    /// parked at a flush-point op (lock, fork, join, fence) yields a free
    /// switch first — mirroring how an injected delay at the store lets
    /// other threads run inside the stale window. Under `Sc` (the default)
    /// exploration is bit-for-bit what it always was.
    pub memory: MemoryModel,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_states: 2_000_000,
            memory: MemoryModel::Sc,
        }
    }
}

/// The oracle's answer for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleVerdict {
    /// Some schedule within the preemption bound raises a NULL-reference
    /// exception.
    Exposable {
        /// Bug class of the witnessing manifestation.
        kind: NullRefKind,
        /// Object whose reference was NULL at the faulting access.
        obj: ObjectId,
        /// Preemptive switches the witness schedule spent.
        preemptions: u32,
    },
    /// Every schedule within the preemption bound completes without a
    /// NULL-reference exception.
    CleanWithinBound,
    /// The state cap was hit before the space was exhausted; no claim.
    Truncated,
}

/// Verdict plus exploration statistics.
#[derive(Debug, Clone, Copy)]
pub struct OracleReport {
    /// The verdict.
    pub verdict: OracleVerdict,
    /// Distinct scheduler states visited.
    pub states_explored: u64,
}

impl OracleReport {
    /// Whether the verdict is [`OracleVerdict::Exposable`].
    pub fn exposable(&self) -> bool {
        matches!(self.verdict, OracleVerdict::Exposable { .. })
    }
}

/// Why a thread is not runnable.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Runnable (or currently running).
    Ready,
    /// Waiting in a lock's FIFO queue.
    BlockedLock(u32),
    /// Waiting for a sticky event.
    BlockedEvent(u32),
    /// Waiting for the threads in `join_wait` to finish.
    BlockedJoin,
    /// Finished.
    Done,
}

/// One simulated thread's control state.
#[derive(Debug, Clone)]
struct OThread {
    script: u32,
    pc: u32,
    /// Saved (script, pc) continuations pushed by `RunTasks` task frames.
    frames: Vec<(u32, u32)>,
    status: Status,
    /// Locks currently held (acquisition order).
    held: Vec<u32>,
    /// Direct children, for `JoinChildren`.
    children: Vec<u32>,
    /// Outstanding join targets while `BlockedJoin` (kept sorted).
    join_wait: Vec<u32>,
    /// Store buffer (push order), always empty under `Sc`: stores this
    /// thread executed that are not yet globally visible.
    buffer: Vec<(u32, RefState)>,
}

impl OThread {
    fn new(script: u32) -> Self {
        Self {
            script,
            pc: 0,
            frames: Vec::new(),
            status: Status::Ready,
            held: Vec::new(),
            children: Vec::new(),
            join_wait: Vec::new(),
            buffer: Vec::new(),
        }
    }
}

/// Ops that drain the executing thread's store buffer before running,
/// mirroring the engine's forced flush points. Signal/wait are deliberately
/// absent: event edges order *instructions*, not store visibility — that
/// gap is the TSO bug class.
fn is_flush_point(op: &Op) -> bool {
    matches!(
        op,
        Op::Fork { .. }
            | Op::JoinScript { .. }
            | Op::JoinChildren
            | Op::Acquire { .. }
            | Op::Release { .. }
            | Op::Fence
    )
}

/// A complete scheduler state: the DFS node.
#[derive(Debug, Clone)]
struct OState {
    threads: Vec<OThread>,
    lock_holder: Vec<Option<u32>>,
    lock_waiters: Vec<VecDeque<u32>>,
    ev_signaled: Vec<bool>,
    /// Heap mirror; same transition table as `waffle_mem::Heap`.
    heap: Vec<RefState>,
    /// Global FIFO task queue of `SpawnTask` scripts.
    tasks: VecDeque<u32>,
    /// Thread currently scheduled, parked at an `Op::Access` (or, under a
    /// weak model, a flush-point op with a non-empty buffer); `None` when
    /// the previous thread blocked or exited and the choice is free.
    running: Option<u32>,
    /// Memory model being explored (constant per run; not encoded).
    model: MemoryModel,
}

/// What stopped a run segment.
enum SegStop {
    /// The running thread is parked immediately before an `Op::Access`.
    AtAccess,
    /// Weak model only: the running thread is parked immediately before a
    /// flush-point op while its store buffer is non-empty. Other threads
    /// may be scheduled (for free) into the stale window first.
    AtFlush,
    /// The running thread blocked or exited; pick a new thread freely.
    Yield,
}

impl OState {
    fn new(w: &Workload, model: MemoryModel) -> Self {
        Self {
            threads: vec![OThread::new(w.main.0)],
            lock_holder: vec![None; w.n_locks as usize],
            lock_waiters: vec![VecDeque::new(); w.n_locks as usize],
            ev_signaled: vec![false; w.n_events as usize],
            heap: vec![RefState::Null; w.n_objects as usize],
            tasks: VecDeque::new(),
            running: Some(0),
            model,
        }
    }

    /// The state thread `t` observes for `obj`: its own newest buffered
    /// store if any, else shared memory.
    fn view_of(&self, t: usize, obj: u32) -> RefState {
        self.threads[t]
            .buffer
            .iter()
            .rev()
            .find(|e| e.0 == obj)
            .map(|e| e.1)
            .unwrap_or(self.heap[obj as usize])
    }

    /// Performs thread `t`'s store: buffered under a weak model, globally
    /// visible immediately under `Sc`.
    fn store(&mut self, t: usize, obj: u32, to: RefState) {
        if self.model.is_weak() {
            self.threads[t].buffer.push((obj, to));
        } else {
            self.heap[obj as usize] = to;
        }
    }

    /// Commits thread `t`'s entire buffer in push order (flush point).
    fn flush(&mut self, t: usize) {
        for (obj, to) in std::mem::take(&mut self.threads[t].buffer) {
            self.heap[obj as usize] = to;
        }
    }

    /// Buffer indices of thread `t` that may drain next under the model's
    /// ordering constraint: TSO commits in total push order (head only),
    /// PSO in per-object push order (the oldest entry of each object).
    fn committable(&self, t: usize) -> Vec<usize> {
        let buf = &self.threads[t].buffer;
        match self.model {
            MemoryModel::Sc => Vec::new(),
            MemoryModel::Tso => {
                if buf.is_empty() {
                    Vec::new()
                } else {
                    vec![0]
                }
            }
            MemoryModel::Pso => buf
                .iter()
                .enumerate()
                .filter(|&(i, e)| buf[..i].iter().all(|p| p.0 != e.0))
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// Drains one committable buffer entry (a nondeterministic drain-point
    /// schedule choice).
    fn commit_one(&mut self, t: usize, i: usize) {
        let (obj, to) = self.threads[t].buffer.remove(i);
        self.heap[obj as usize] = to;
    }

    fn op_at<'w>(&self, w: &'w Workload, t: usize) -> Option<&'w Op> {
        let th = &self.threads[t];
        w.scripts[th.script as usize].ops.get(th.pc as usize)
    }

    fn ready_threads(&self) -> impl Iterator<Item = usize> + '_ {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, th)| th.status == Status::Ready)
            .map(|(t, _)| t)
    }

    /// Mirrors the engine's lock release: FIFO handoff to the next waiter;
    /// releasing a lock the thread does not hold is a no-op.
    fn release_lock(&mut self, t: usize, lock: u32) {
        if self.lock_holder[lock as usize] != Some(t as u32) {
            return;
        }
        self.threads[t].held.retain(|&l| l != lock);
        match self.lock_waiters[lock as usize].pop_front() {
            Some(next) => {
                self.lock_holder[lock as usize] = Some(next);
                let th = &mut self.threads[next as usize];
                th.held.push(lock);
                th.status = Status::Ready;
                th.pc += 1;
            }
            None => self.lock_holder[lock as usize] = None,
        }
    }

    /// Mirrors the engine's thread exit: release held locks, wake joiners.
    fn exit_thread(&mut self, t: usize) {
        if self.model.is_weak() {
            // Exit is a full barrier (the engine flushes on context loss).
            self.flush(t);
        }
        self.threads[t].status = Status::Done;
        let held = std::mem::take(&mut self.threads[t].held);
        for lock in held {
            // `exit_thread` bypasses the holder check: the dying thread
            // holds every lock in its `held` list by construction.
            self.lock_holder[lock as usize] = Some(t as u32);
            self.release_lock(t, lock);
        }
        for u in 0..self.threads.len() {
            if self.threads[u].status != Status::BlockedJoin {
                continue;
            }
            self.threads[u].join_wait.retain(|&x| x != t as u32);
            if self.threads[u].join_wait.is_empty() {
                self.threads[u].status = Status::Ready;
                self.threads[u].pc += 1;
            }
        }
    }

    fn block_on_join(&mut self, t: usize, mut targets: Vec<u32>) {
        if targets.is_empty() {
            self.threads[t].pc += 1;
        } else {
            targets.sort_unstable();
            targets.dedup();
            self.threads[t].join_wait = targets;
            self.threads[t].status = Status::BlockedJoin;
        }
    }

    /// Executes one non-access op for thread `t`. Blocking and exits are
    /// expressed through the thread's status; the caller's segment loop
    /// notices.
    fn exec_simple(&mut self, t: usize, op: &Op) {
        if self.model.is_weak() && is_flush_point(op) {
            self.flush(t);
        }
        match *op {
            Op::Compute { .. } | Op::Pad { .. } => self.threads[t].pc += 1,
            Op::Access { .. } => unreachable!("accesses execute via exec_access"),
            Op::Fork { script } => {
                let child = self.threads.len() as u32;
                self.threads.push(OThread::new(script.0));
                self.threads[t].children.push(child);
                self.threads[t].pc += 1;
            }
            Op::JoinScript { script } => {
                // The engine compares each thread's *current* script field,
                // so pool workers mid-task are matched by the task script.
                let targets: Vec<u32> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|&(u, th)| {
                        u != t && th.script == script.0 && th.status != Status::Done
                    })
                    .map(|(u, _)| u as u32)
                    .collect();
                self.block_on_join(t, targets);
            }
            Op::JoinChildren => {
                let targets: Vec<u32> = self.threads[t]
                    .children
                    .iter()
                    .copied()
                    .filter(|&c| self.threads[c as usize].status != Status::Done)
                    .collect();
                self.block_on_join(t, targets);
            }
            Op::Acquire { lock } => {
                if self.lock_holder[lock.0 as usize].is_none() {
                    self.lock_holder[lock.0 as usize] = Some(t as u32);
                    self.threads[t].held.push(lock.0);
                    self.threads[t].pc += 1;
                } else {
                    self.lock_waiters[lock.0 as usize].push_back(t as u32);
                    self.threads[t].status = Status::BlockedLock(lock.0);
                }
            }
            Op::Release { lock } => {
                self.release_lock(t, lock.0);
                self.threads[t].pc += 1;
            }
            Op::SignalEvent { ev } => {
                self.ev_signaled[ev.0 as usize] = true;
                for u in 0..self.threads.len() {
                    if self.threads[u].status == Status::BlockedEvent(ev.0) {
                        self.threads[u].status = Status::Ready;
                        self.threads[u].pc += 1;
                    }
                }
                self.threads[t].pc += 1;
            }
            Op::WaitEvent { ev } => {
                if self.ev_signaled[ev.0 as usize] {
                    self.threads[t].pc += 1;
                } else {
                    self.threads[t].status = Status::BlockedEvent(ev.0);
                }
            }
            Op::Throw { .. } | Op::Exit => self.exit_thread(t),
            Op::Fence => self.threads[t].pc += 1, // drain happened above
            Op::SkipIf { obj, cond, skip } => {
                let s = self.view_of(t, obj.0);
                let holds = match cond {
                    Cond::IsLive => s == RefState::Live,
                    Cond::IsNull => s == RefState::Null,
                    Cond::IsDisposed => s == RefState::Disposed,
                };
                self.threads[t].pc += 1 + if holds { skip } else { 0 };
            }
            Op::SpawnTask { script } => {
                self.tasks.push_back(script.0);
                self.threads[t].pc += 1;
            }
            Op::RunTasks => match self.tasks.pop_front() {
                Some(task) => {
                    let th = &mut self.threads[t];
                    // Save the continuation *at* RunTasks so the worker
                    // loops back to drain the next task.
                    th.frames.push((th.script, th.pc));
                    th.script = task;
                    th.pc = 0;
                }
                None => self.threads[t].pc += 1,
            },
        }
    }

    /// Commits the `Op::Access` thread `t` is parked at, applying the
    /// heap's transition table. `Err` is a NULL-reference manifestation.
    fn exec_access(&mut self, w: &Workload, t: usize) -> Result<(), (NullRefKind, ObjectId)> {
        let Some(&Op::Access { obj, kind, .. }) = self.op_at(w, t) else {
            unreachable!("exec_access precondition: thread parked at an access");
        };
        // Loads classify against the thread's *view* (own buffer first);
        // stores go through `store`, which buffers them under a weak model.
        let view = self.view_of(t, obj.0);
        match kind {
            AccessKind::Init => self.store(t, obj.0, RefState::Live),
            AccessKind::Use | AccessKind::UnsafeApiCall => match view {
                RefState::Live => {}
                RefState::Null => return Err((NullRefKind::UseBeforeInit, obj)),
                RefState::Disposed => return Err((NullRefKind::UseAfterFree, obj)),
            },
            AccessKind::Dispose => match view {
                RefState::Live => self.store(t, obj.0, RefState::Disposed),
                RefState::Null | RefState::Disposed => {
                    return Err((NullRefKind::DisposeOnNull, obj))
                }
            },
        }
        self.threads[t].pc += 1;
        Ok(())
    }

    /// Runs the scheduled thread until it parks at an access, blocks, or
    /// exits. Never commits accesses.
    fn run_segment(&mut self, w: &Workload) -> SegStop {
        let t = self.running.expect("run_segment needs a scheduled thread") as usize;
        loop {
            if self.threads[t].status != Status::Ready {
                return SegStop::Yield;
            }
            match self.op_at(w, t) {
                None => {
                    // Script end: return from a task frame or exit.
                    if let Some((script, pc)) = self.threads[t].frames.pop() {
                        self.threads[t].script = script;
                        self.threads[t].pc = pc;
                    } else {
                        self.exit_thread(t);
                        return SegStop::Yield;
                    }
                }
                Some(&Op::Access { .. }) => return SegStop::AtAccess,
                Some(op) => {
                    if self.model.is_weak()
                        && !self.threads[t].buffer.is_empty()
                        && is_flush_point(op)
                    {
                        // The flush would close this thread's stale window;
                        // park here so the scheduler can route readers in
                        // first. Never fires under `Sc` (buffers stay empty).
                        return SegStop::AtFlush;
                    }
                    let op = op.clone();
                    self.exec_simple(t, &op);
                }
            }
        }
    }

    /// Advances past `run_segment`, normalizing `running` to `None` on a
    /// yield so the node invariant holds.
    fn advance_to_decision(&mut self, w: &Workload) {
        match self.run_segment(w) {
            SegStop::AtAccess | SegStop::AtFlush => {}
            SegStop::Yield => self.running = None,
        }
    }

    /// Canonical byte encoding of the state, the memoization key.
    fn encode(&self) -> Vec<u8> {
        fn push(buf: &mut Vec<u8>, v: u32) {
            debug_assert!(v < u16::MAX as u32, "oracle id overflow");
            buf.extend_from_slice(&(v as u16).to_le_bytes());
        }
        let mut buf = Vec::with_capacity(64 + self.threads.len() * 24);
        push(&mut buf, self.running.map_or(0, |t| t + 1));
        for &h in &self.heap {
            buf.push(h as u8);
        }
        for &s in &self.ev_signaled {
            buf.push(s as u8);
        }
        push(&mut buf, self.tasks.len() as u32);
        for &s in &self.tasks {
            push(&mut buf, s);
        }
        for (holder, waiters) in self.lock_holder.iter().zip(&self.lock_waiters) {
            push(&mut buf, holder.map_or(0, |t| t + 1));
            push(&mut buf, waiters.len() as u32);
            for &t in waiters {
                push(&mut buf, t);
            }
        }
        push(&mut buf, self.threads.len() as u32);
        for th in &self.threads {
            push(&mut buf, th.script);
            push(&mut buf, th.pc);
            let (tag, arg) = match th.status {
                Status::Ready => (0u8, 0),
                Status::BlockedLock(l) => (1, l),
                Status::BlockedEvent(e) => (2, e),
                Status::BlockedJoin => (3, 0),
                Status::Done => (4, 0),
            };
            buf.push(tag);
            push(&mut buf, arg);
            push(&mut buf, th.frames.len() as u32);
            for &(s, p) in &th.frames {
                push(&mut buf, s);
                push(&mut buf, p);
            }
            let mut held = th.held.clone();
            held.sort_unstable();
            push(&mut buf, held.len() as u32);
            for l in held {
                push(&mut buf, l);
            }
            push(&mut buf, th.children.len() as u32);
            for &c in &th.children {
                push(&mut buf, c);
            }
            push(&mut buf, th.join_wait.len() as u32);
            for &j in &th.join_wait {
                push(&mut buf, j);
            }
            if self.model.is_weak() {
                // Buffered stores are scheduler-visible state. Encoded only
                // under a weak model so `Sc` keys stay byte-identical to
                // the pre-weak-memory explorer.
                push(&mut buf, th.buffer.len() as u32);
                for &(obj, st) in &th.buffer {
                    push(&mut buf, obj);
                    buf.push(st as u8);
                }
            }
        }
        buf
    }
}

/// Exhaustively explores schedules of `workload` within the preemption
/// bound, returning the first NULL-reference witness found or a clean /
/// truncated verdict.
pub fn explore(workload: &Workload, config: &OracleConfig) -> OracleReport {
    let mut states_explored: u64 = 0;
    let mut seen: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut stack: Vec<(OState, u32)> = Vec::new();

    let mut init = OState::new(workload, config.memory);
    init.advance_to_decision(workload);
    stack.push((init, config.preemption_bound));

    while let Some((state, budget)) = stack.pop() {
        let key = state.encode();
        match seen.get(&key) {
            Some(&b) if b >= budget => continue,
            _ => {
                seen.insert(key, budget);
            }
        }
        states_explored += 1;
        if states_explored > config.max_states {
            return OracleReport {
                verdict: OracleVerdict::Truncated,
                states_explored,
            };
        }

        match state.running {
            Some(t) => {
                // Continue branch first (popped last): the running thread
                // commits its parked op. Preemptive switches are pushed
                // after so DFS tries the reorderings — where planted bugs
                // live — before the straight-line schedule.
                let at_access = matches!(
                    state.op_at(workload, t as usize),
                    Some(&Op::Access { .. })
                );
                let mut cont = state.clone();
                if at_access {
                    match cont.exec_access(workload, t as usize) {
                        Err((kind, obj)) => {
                            return OracleReport {
                                verdict: OracleVerdict::Exposable {
                                    kind,
                                    obj,
                                    preemptions: config.preemption_bound - budget,
                                },
                                states_explored,
                            };
                        }
                        Ok(()) => {
                            cont.advance_to_decision(workload);
                            stack.push((cont, budget));
                        }
                    }
                } else {
                    // Parked at a flush point (weak model): continuing
                    // drains the buffer and executes the op.
                    let op = state
                        .op_at(workload, t as usize)
                        .expect("flush-point park has a current op")
                        .clone();
                    cont.exec_simple(t as usize, &op);
                    cont.advance_to_decision(workload);
                    stack.push((cont, budget));
                }
                // Switches at an access spend preemption budget; switches
                // at a flush point are free — an injected delay at the
                // buffered store stretches the drain arbitrarily, so any
                // work other threads do before the flush is reachable
                // without a preemption.
                let free = !at_access;
                if free || budget > 0 {
                    let others: Vec<usize> =
                        state.ready_threads().filter(|&u| u as u32 != t).collect();
                    for u in others {
                        let mut next = state.clone();
                        next.running = Some(u as u32);
                        next.advance_to_decision(workload);
                        stack.push((next, if free { budget } else { budget - 1 }));
                    }
                }
            }
            None => {
                // Free choice: the previous thread blocked or exited. No
                // ready thread means termination or deadlock — terminal
                // either way, and not a manifestation.
                let ready: Vec<usize> = state.ready_threads().collect();
                for u in ready {
                    let mut next = state.clone();
                    next.running = Some(u as u32);
                    next.advance_to_decision(workload);
                    stack.push((next, budget));
                }
            }
        }
        // Nondeterministic drain choices (weak model only): any committable
        // buffered store may become globally visible here, in model order.
        // Budget-free — drains are the background memory system acting, not
        // a scheduler preemption.
        if config.memory.is_weak() {
            for ti in 0..state.threads.len() {
                for i in state.committable(ti) {
                    let mut next = state.clone();
                    next.commit_one(ti, i);
                    stack.push((next, budget));
                }
            }
        }
    }

    OracleReport {
        verdict: OracleVerdict::CleanWithinBound,
        states_explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::time::{ms, us};
    use waffle_sim::WorkloadBuilder;

    fn bound(k: u32) -> OracleConfig {
        OracleConfig {
            preemption_bound: k,
            ..OracleConfig::default()
        }
    }

    /// Init and use race with no ordering edge: one preemption at the
    /// parent's init access postpones it past the child's use.
    fn racy_init() -> waffle_sim::Workload {
        let mut b = WorkloadBuilder::new("oracle.racy_init");
        let o = b.object("conn");
        let child = b.script("child", move |s| {
            s.compute(us(10)).use_(o, "child.use", us(5));
        });
        let m = b.script("main", move |s| {
            s.fork(child).init(o, "main.init", us(5)).join_children();
        });
        b.main(m);
        b.build()
    }

    #[test]
    fn racy_init_is_exposable_with_one_preemption() {
        let r = explore(&racy_init(), &bound(1));
        assert!(
            matches!(
                r.verdict,
                OracleVerdict::Exposable {
                    kind: NullRefKind::UseBeforeInit,
                    ..
                }
            ),
            "verdict {:?}",
            r.verdict
        );
    }

    #[test]
    fn racy_init_is_clean_at_bound_zero() {
        // Main is scheduled first and runs to its first access (the init)
        // before the child can be picked; without a preemption the init
        // always commits before any switch.
        let r = explore(&racy_init(), &bound(0));
        assert_eq!(r.verdict, OracleVerdict::CleanWithinBound);
    }

    #[test]
    fn event_ordered_init_is_clean_at_any_bound() {
        let mut b = WorkloadBuilder::new("oracle.ordered");
        let o = b.object("conn");
        let ev = b.event("ready");
        let child = b.script("child", move |s| {
            s.wait(ev).use_(o, "child.use", us(5));
        });
        let m = b.script("main", move |s| {
            s.fork(child)
                .init(o, "main.init", us(5))
                .signal(ev)
                .join_children();
        });
        b.main(m);
        let r = explore(&b.build(), &bound(3));
        assert_eq!(r.verdict, OracleVerdict::CleanWithinBound);
    }

    #[test]
    fn use_after_dispose_race_needs_no_preemption() {
        // Dispose-before-join: the child's use races the parent's dispose
        // through a free blocking switch (parent runs to completion of its
        // dispose, then blocks at join; the child then uses a disposed
        // ref). Exposable at bound 0.
        let mut b = WorkloadBuilder::new("oracle.uaf");
        let o = b.object("conn");
        let ev = b.event("go");
        let child = b.script("child", move |s| {
            s.wait(ev).compute(ms(1)).use_(o, "child.use", us(5));
        });
        let m = b.script("main", move |s| {
            s.init(o, "main.init", us(5))
                .fork(child)
                .signal(ev)
                .dispose(o, "main.dispose", us(5))
                .join_children();
        });
        b.main(m);
        let r = explore(&b.build(), &bound(0));
        assert!(
            matches!(
                r.verdict,
                OracleVerdict::Exposable {
                    kind: NullRefKind::UseAfterFree,
                    ..
                }
            ),
            "verdict {:?}",
            r.verdict
        );
    }

    #[test]
    fn double_locked_race_is_unexposable_by_access_preemption() {
        // Both accesses are wrapped in the same lock and main acquires it
        // before its first preemption point (the init access). A switch to
        // the child just blocks it on the queue, so the use can never jump
        // ahead of the init — which is exactly delay injection's power: a
        // delay at the init holds the lock with it. The oracle must NOT
        // call this exposable, or it would charge the detector with
        // unreachable false negatives.
        let mut b = WorkloadBuilder::new("oracle.lock2");
        let o = b.object("conn");
        let lk = b.lock("mu");
        let child = b.script("child", move |s| {
            s.acquire(lk).use_(o, "child.use", us(5)).release(lk);
        });
        let m = b.script("main", move |s| {
            s.fork(child)
                .acquire(lk)
                .init(o, "main.init", us(5))
                .release(lk)
                .join_children();
        });
        b.main(m);
        let r = explore(&b.build(), &bound(3));
        assert_eq!(r.verdict, OracleVerdict::CleanWithinBound);
    }

    #[test]
    fn fifo_lock_handoff_is_exercised_on_an_exposing_path() {
        // The witness schedule must park the child in the lock's FIFO
        // queue (switch while main holds the lock), hand the lock off at
        // main's release, and then commit main's dispose before the
        // child's queued use: blocked-enqueue, wake-with-pc-advance, and
        // the error all on one path.
        let mut b = WorkloadBuilder::new("oracle.fifo");
        let o = b.object("conn");
        let lk = b.lock("mu");
        let child = b.script("child", move |s| {
            s.acquire(lk).use_(o, "child.use", us(5)).release(lk);
        });
        let m = b.script("main", move |s| {
            s.acquire(lk)
                .fork(child)
                .init(o, "main.init", us(5))
                .release(lk)
                .dispose(o, "main.dispose", us(5))
                .join_children();
        });
        b.main(m);
        let r = explore(&b.build(), &bound(1));
        assert!(
            matches!(
                r.verdict,
                OracleVerdict::Exposable {
                    kind: NullRefKind::UseAfterFree,
                    ..
                }
            ),
            "verdict {:?}",
            r.verdict
        );
    }

    #[test]
    fn task_queue_frames_round_trip() {
        // A pool worker drains two tasks; one uses an object initialized
        // only by the second task — order in the FIFO queue protects it,
        // so the workload is clean.
        let mut b = WorkloadBuilder::new("oracle.tasks");
        let o = b.object("doc");
        let t_init = b.script("t_init", move |s| {
            s.init(o, "task.init", us(5));
        });
        let t_use = b.script("t_use", move |s| {
            s.use_(o, "task.use", us(5));
        });
        let m = b.script("main", move |s| {
            s.spawn_task(t_init).spawn_task(t_use).run_tasks();
        });
        b.main(m);
        let r = explore(&b.build(), &bound(2));
        assert_eq!(r.verdict, OracleVerdict::CleanWithinBound);
    }

    #[test]
    fn state_cap_truncates() {
        let r = explore(
            &racy_init(),
            &OracleConfig {
                preemption_bound: 1,
                max_states: 1,
                ..OracleConfig::default()
            },
        );
        // Either the witness is found within one state or the cap fires;
        // with the continue-first push order the cap fires.
        assert!(matches!(
            r.verdict,
            OracleVerdict::Truncated | OracleVerdict::Exposable { .. }
        ));
    }
}
