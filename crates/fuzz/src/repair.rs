//! The oracle-backed certification loop for fix synthesis.
//!
//! `waffle_analysis::repair` enumerates candidate patches but delegates
//! certification through a callback; this module closes the loop with the
//! bounded schedule oracle. A patch certifies only when the explorer
//! returns `CleanWithinBound` **with zero deadlocks** at the case's
//! original preemption bound under its original memory model — a
//! truncated exploration proves nothing, and a deadlocking patch would
//! otherwise certify vacuously (a deadlocked schedule space exposes no
//! bug because it runs no code).

use serde::{Deserialize, Serialize};
use waffle_analysis::plan::Plan;
use waffle_analysis::repair::{synthesize, Certification, RepairReport};
use waffle_mem::{NullRefKind, ObjectId};
use waffle_sim::{MemoryModel, RepairKind, Workload};

use crate::gen::FuzzCase;
use crate::oracle::{explore, OracleConfig, OracleVerdict};

/// Certifies one (patched) workload against the bounded oracle.
pub fn certify_unexposable(w: &Workload, cfg: &OracleConfig) -> Certification {
    let r = explore(w, cfg);
    match r.verdict {
        OracleVerdict::CleanWithinBound if r.deadlocks == 0 => Certification::Unexposable {
            states: r.states_explored,
        },
        OracleVerdict::CleanWithinBound | OracleVerdict::Truncated => Certification::Inconclusive,
        OracleVerdict::Exposable { .. } => Certification::StillExposable,
    }
}

/// A checked-in fix-synthesis regression case (`tests/corpus/repair/`): a
/// workload with a pinned synthesis outcome, replayed forever. `expected`
/// is the grammar production synthesis must certify, or `None` for a case
/// whose real fix lies outside the grammar — those must stay reported
/// unrepairable rather than ever acquiring an uncertified patch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairCorpusCase {
    /// Why the case is pinned (what it exercises).
    pub label: String,
    /// Preemption bound the outcome was certified at.
    pub preemption_bound: u32,
    /// Memory model the outcome was certified under.
    pub memory: MemoryModel,
    /// Expected certified production, or `None` for unrepairable.
    pub expected: Option<RepairKind>,
    /// The workload plus ground truth.
    pub case: FuzzCase,
}

impl RepairCorpusCase {
    /// Serializes the corpus entry.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a corpus entry.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Re-runs oracle confirmation and fix synthesis on the stored case,
    /// returning the fresh report (the caller compares it to `expected`).
    pub fn replay(&self) -> Result<RepairReport, String> {
        let cfg = OracleConfig {
            preemption_bound: self.preemption_bound,
            memory: self.memory,
            ..OracleConfig::default()
        };
        let r = explore(&self.case.workload, &cfg);
        let OracleVerdict::Exposable { kind, obj, .. } = r.verdict else {
            return Err(format!(
                "{}: no longer oracle-exposable ({:?})",
                self.label, r.verdict
            ));
        };
        let plan = crate::harness::derive_plan(&self.case.workload, 1, self.memory);
        Ok(synthesize_with_oracle(
            &self.case.workload,
            &plan,
            kind,
            obj,
            &cfg,
        ))
    }
}

/// Synthesizes the cheapest oracle-certified patch for a confirmed
/// manifestation of `kind` on `obj` in `w`, certifying every candidate
/// with [`explore`] under `cfg` (the case's original bound and model).
pub fn synthesize_with_oracle(
    w: &Workload,
    plan: &Plan,
    kind: NullRefKind,
    obj: ObjectId,
    cfg: &OracleConfig,
) -> RepairReport {
    let mut certify = |patched: &Workload| certify_unexposable(patched, cfg);
    synthesize(
        w,
        plan,
        kind,
        obj,
        cfg.memory,
        cfg.preemption_bound,
        &mut certify,
    )
}
