//! The oracle's scheduler state: a time-free mirror of the engine's
//! semantics (heap state machine, FIFO locks, sticky events, join/task
//! rules, store buffers) plus the canonical byte encoding that keys the
//! memo.
//!
//! Every mutating entry point threads a [`Footprint`] accumulator so the
//! explorer learns, as a by-product of executing an edge, which objects,
//! locks, and events the edge touched — the raw material for the
//! independence relation in [`super::reduction`].

use std::collections::VecDeque;

use waffle_mem::{AccessKind, NullRefKind, ObjectId, RefState};
use waffle_sim::{Cond, MemoryModel, Op, Workload};

use super::reduction::Footprint;
use super::Choice;

/// Why a thread is not runnable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Status {
    /// Runnable (or currently running).
    Ready,
    /// Waiting in a lock's FIFO queue.
    BlockedLock(u32),
    /// Waiting for a sticky event.
    BlockedEvent(u32),
    /// Waiting for the threads in `join_wait` to finish.
    BlockedJoin,
    /// Finished.
    Done,
}

/// One simulated thread's control state.
#[derive(Debug)]
pub(crate) struct OThread {
    pub(crate) script: u32,
    pub(crate) pc: u32,
    /// Saved (script, pc) continuations pushed by `RunTasks` task frames.
    pub(crate) frames: Vec<(u32, u32)>,
    pub(crate) status: Status,
    /// Locks currently held (acquisition order — release order on exit).
    pub(crate) held: Vec<u32>,
    /// Direct children, for `JoinChildren`.
    pub(crate) children: Vec<u32>,
    /// Outstanding join targets while `BlockedJoin` (kept sorted).
    pub(crate) join_wait: Vec<u32>,
    /// Store buffer (push order), always empty under `Sc`: stores this
    /// thread executed that are not yet globally visible.
    pub(crate) buffer: Vec<(u32, RefState)>,
}

impl OThread {
    fn new(script: u32) -> Self {
        Self {
            script,
            pc: 0,
            frames: Vec::new(),
            status: Status::Ready,
            held: Vec::new(),
            children: Vec::new(),
            join_wait: Vec::new(),
            buffer: Vec::new(),
        }
    }
}

// Hand-written so `clone_from` reuses each field's existing allocation
// (the derive would fall back to `*self = source.clone()`), keeping the
// explorer's clone-on-branch path allocation-free once vectors have
// grown to their working size.
impl Clone for OThread {
    fn clone(&self) -> Self {
        Self {
            script: self.script,
            pc: self.pc,
            frames: self.frames.clone(),
            status: self.status.clone(),
            held: self.held.clone(),
            children: self.children.clone(),
            join_wait: self.join_wait.clone(),
            buffer: self.buffer.clone(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.script = src.script;
        self.pc = src.pc;
        self.frames.clone_from(&src.frames);
        self.status = src.status.clone();
        self.held.clone_from(&src.held);
        self.children.clone_from(&src.children);
        self.join_wait.clone_from(&src.join_wait);
        self.buffer.clone_from(&src.buffer);
    }
}

/// Ops that drain the executing thread's store buffer before running,
/// mirroring the engine's forced flush points. Signal/wait are deliberately
/// absent: event edges order *instructions*, not store visibility — that
/// gap is the TSO bug class.
pub(crate) fn is_flush_point(op: &Op) -> bool {
    matches!(
        op,
        Op::Fork { .. }
            | Op::JoinScript { .. }
            | Op::JoinChildren
            | Op::Acquire { .. }
            | Op::Release { .. }
            | Op::Fence
    )
}

/// A complete scheduler state: the DFS node.
#[derive(Debug)]
pub(crate) struct OState {
    pub(crate) threads: Vec<OThread>,
    pub(crate) lock_holder: Vec<Option<u32>>,
    pub(crate) lock_waiters: Vec<VecDeque<u32>>,
    pub(crate) ev_signaled: Vec<bool>,
    /// Heap mirror; same transition table as `waffle_mem::Heap`.
    pub(crate) heap: Vec<RefState>,
    /// Global FIFO task queue of `SpawnTask` scripts.
    pub(crate) tasks: VecDeque<u32>,
    /// Thread currently scheduled, parked at an `Op::Access` (or, under a
    /// weak model, a flush-point op with a non-empty buffer); `None` when
    /// the previous thread blocked or exited and the choice is free.
    pub(crate) running: Option<u32>,
    /// Memory model being explored (constant per run; not encoded).
    pub(crate) model: MemoryModel,
}

impl Clone for OState {
    fn clone(&self) -> Self {
        Self {
            threads: self.threads.clone(),
            lock_holder: self.lock_holder.clone(),
            lock_waiters: self.lock_waiters.clone(),
            ev_signaled: self.ev_signaled.clone(),
            heap: self.heap.clone(),
            tasks: self.tasks.clone(),
            running: self.running,
            model: self.model,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.threads.clone_from(&src.threads);
        self.lock_holder.clone_from(&src.lock_holder);
        self.lock_waiters.clone_from(&src.lock_waiters);
        self.ev_signaled.clone_from(&src.ev_signaled);
        self.heap.clone_from(&src.heap);
        self.tasks.clone_from(&src.tasks);
        self.running = src.running;
        self.model = src.model;
    }
}

/// What stopped a run segment.
pub(crate) enum SegStop {
    /// The running thread is parked immediately before an `Op::Access`.
    AtAccess,
    /// Weak model only: the running thread is parked immediately before a
    /// flush-point op while its store buffer is non-empty. Other threads
    /// may be scheduled (for free) into the stale window first.
    AtFlush,
    /// The running thread blocked or exited; pick a new thread freely.
    Yield,
}

/// Reused scratch for the canonical state encoding: the byte buffer the
/// state serializes into and the sort area for held-lock normalization.
/// One instance lives for the whole DFS, so the hot loop never allocates
/// for encoding once the buffers reach their working size.
#[derive(Debug, Default)]
pub(crate) struct EncodeScratch {
    pub(crate) buf: Vec<u8>,
    held: Vec<u32>,
}

impl OState {
    pub(crate) fn new(w: &Workload, model: MemoryModel) -> Self {
        Self {
            threads: vec![OThread::new(w.main.0)],
            lock_holder: vec![None; w.n_locks as usize],
            lock_waiters: vec![VecDeque::new(); w.n_locks as usize],
            ev_signaled: vec![false; w.n_events as usize],
            heap: vec![RefState::Null; w.n_objects as usize],
            tasks: VecDeque::new(),
            running: Some(0),
            model,
        }
    }

    /// The state thread `t` observes for `obj`: its own newest buffered
    /// store if any, else shared memory.
    pub(crate) fn view_of(&self, t: usize, obj: u32) -> RefState {
        self.threads[t]
            .buffer
            .iter()
            .rev()
            .find(|e| e.0 == obj)
            .map(|e| e.1)
            .unwrap_or(self.heap[obj as usize])
    }

    /// Performs thread `t`'s store: buffered under a weak model, globally
    /// visible immediately under `Sc`.
    fn store(&mut self, t: usize, obj: u32, to: RefState) {
        if self.model.is_weak() {
            self.threads[t].buffer.push((obj, to));
        } else {
            self.heap[obj as usize] = to;
        }
    }

    /// Commits thread `t`'s entire buffer in push order (flush point).
    fn flush(&mut self, t: usize, fp: &mut Footprint) {
        // Take-and-restore keeps the buffer's allocation alive for reuse.
        let mut buf = std::mem::take(&mut self.threads[t].buffer);
        for &(obj, to) in &buf {
            self.heap[obj as usize] = to;
            fp.obj(obj);
        }
        buf.clear();
        self.threads[t].buffer = buf;
    }

    /// Appends the drain choices of thread `t` that may commit next under
    /// the model's ordering constraint — TSO commits in total push order
    /// (head only), PSO in per-object push order (the oldest entry of
    /// each object) — in ascending buffer-index order.
    pub(crate) fn push_committable(&self, t: usize, out: &mut Vec<Choice>) {
        let buf = &self.threads[t].buffer;
        match self.model {
            MemoryModel::Sc => {}
            MemoryModel::Tso => {
                if let Some(&(obj, _)) = buf.first() {
                    out.push(Choice::Drain {
                        thread: t as u32,
                        idx: 0,
                        obj,
                    });
                }
            }
            MemoryModel::Pso => {
                for (i, &(obj, _)) in buf.iter().enumerate() {
                    if buf[..i].iter().all(|p| p.0 != obj) {
                        out.push(Choice::Drain {
                            thread: t as u32,
                            idx: i as u32,
                            obj,
                        });
                    }
                }
            }
        }
    }

    /// Drains one committable buffer entry (a nondeterministic drain-point
    /// schedule choice). Returns the committed object, or `None` if the
    /// index is out of range (malformed replay input).
    pub(crate) fn commit_one(&mut self, t: usize, i: usize) -> Option<u32> {
        if t >= self.threads.len() || i >= self.threads[t].buffer.len() {
            return None;
        }
        let (obj, to) = self.threads[t].buffer.remove(i);
        self.heap[obj as usize] = to;
        Some(obj)
    }

    pub(crate) fn op_at<'w>(&self, w: &'w Workload, t: usize) -> Option<&'w Op> {
        let th = &self.threads[t];
        w.scripts[th.script as usize].ops.get(th.pc as usize)
    }

    /// Whether thread `t` is parked immediately before an `Op::Access`.
    pub(crate) fn at_access(&self, w: &Workload, t: usize) -> bool {
        matches!(self.op_at(w, t), Some(&Op::Access { .. }))
    }

    /// Mirrors the engine's lock release: FIFO handoff to the next waiter;
    /// releasing a lock the thread does not hold is a no-op.
    fn release_lock(&mut self, t: usize, lock: u32, fp: &mut Footprint) {
        if self.lock_holder[lock as usize] != Some(t as u32) {
            return;
        }
        fp.lock(lock);
        self.threads[t].held.retain(|&l| l != lock);
        match self.lock_waiters[lock as usize].pop_front() {
            Some(next) => {
                self.lock_holder[lock as usize] = Some(next);
                let th = &mut self.threads[next as usize];
                th.held.push(lock);
                th.status = Status::Ready;
                th.pc += 1;
            }
            None => self.lock_holder[lock as usize] = None,
        }
    }

    /// Mirrors the engine's thread exit: release held locks, wake joiners.
    fn exit_thread(&mut self, t: usize, fp: &mut Footprint) {
        // Exits change the thread table other transitions match against
        // (JoinScript targets, ready sets): dependent with everything.
        fp.mark_global();
        if self.model.is_weak() {
            // Exit is a full barrier (the engine flushes on context loss).
            self.flush(t, fp);
        }
        self.threads[t].status = Status::Done;
        let held = std::mem::take(&mut self.threads[t].held);
        for lock in held {
            // `exit_thread` bypasses the holder check: the dying thread
            // holds every lock in its `held` list by construction.
            self.lock_holder[lock as usize] = Some(t as u32);
            self.release_lock(t, lock, fp);
        }
        for u in 0..self.threads.len() {
            if self.threads[u].status != Status::BlockedJoin {
                continue;
            }
            self.threads[u].join_wait.retain(|&x| x != t as u32);
            if self.threads[u].join_wait.is_empty() {
                self.threads[u].status = Status::Ready;
                self.threads[u].pc += 1;
            }
        }
    }

    fn block_on_join(&mut self, t: usize, mut targets: Vec<u32>) {
        if targets.is_empty() {
            self.threads[t].pc += 1;
        } else {
            targets.sort_unstable();
            targets.dedup();
            self.threads[t].join_wait = targets;
            self.threads[t].status = Status::BlockedJoin;
        }
    }

    /// Executes one non-access op for thread `t`, recording the op's
    /// footprint. Blocking and exits are expressed through the thread's
    /// status; the caller's segment loop notices.
    pub(crate) fn exec_simple(&mut self, t: usize, op: &Op, fp: &mut Footprint) {
        if self.model.is_weak() && is_flush_point(op) {
            self.flush(t, fp);
        }
        match *op {
            Op::Compute { .. } | Op::Pad { .. } => self.threads[t].pc += 1,
            Op::Access { .. } => unreachable!("accesses execute via exec_access"),
            Op::Fork { script } => {
                fp.mark_global();
                let child = self.threads.len() as u32;
                self.threads.push(OThread::new(script.0));
                self.threads[t].children.push(child);
                self.threads[t].pc += 1;
            }
            Op::JoinScript { script } => {
                fp.mark_global();
                // The engine compares each thread's *current* script field,
                // so pool workers mid-task are matched by the task script.
                let targets: Vec<u32> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|&(u, th)| {
                        u != t && th.script == script.0 && th.status != Status::Done
                    })
                    .map(|(u, _)| u as u32)
                    .collect();
                self.block_on_join(t, targets);
            }
            Op::JoinChildren => {
                fp.mark_global();
                let targets: Vec<u32> = self.threads[t]
                    .children
                    .iter()
                    .copied()
                    .filter(|&c| self.threads[c as usize].status != Status::Done)
                    .collect();
                self.block_on_join(t, targets);
            }
            Op::Acquire { lock } => {
                fp.lock(lock.0);
                if self.lock_holder[lock.0 as usize].is_none() {
                    self.lock_holder[lock.0 as usize] = Some(t as u32);
                    self.threads[t].held.push(lock.0);
                    self.threads[t].pc += 1;
                } else {
                    self.lock_waiters[lock.0 as usize].push_back(t as u32);
                    self.threads[t].status = Status::BlockedLock(lock.0);
                }
            }
            Op::Release { lock } => {
                fp.lock(lock.0);
                self.release_lock(t, lock.0, fp);
                self.threads[t].pc += 1;
            }
            Op::SignalEvent { ev } => {
                fp.event(ev.0);
                self.ev_signaled[ev.0 as usize] = true;
                for u in 0..self.threads.len() {
                    if self.threads[u].status == Status::BlockedEvent(ev.0) {
                        self.threads[u].status = Status::Ready;
                        self.threads[u].pc += 1;
                    }
                }
                self.threads[t].pc += 1;
            }
            Op::WaitEvent { ev } => {
                fp.event(ev.0);
                if self.ev_signaled[ev.0 as usize] {
                    self.threads[t].pc += 1;
                } else {
                    self.threads[t].status = Status::BlockedEvent(ev.0);
                }
            }
            Op::Throw { .. } | Op::Exit => self.exit_thread(t, fp),
            Op::Fence => self.threads[t].pc += 1, // drain happened above
            Op::SkipIf { obj, cond, skip } => {
                fp.obj(obj.0);
                let s = self.view_of(t, obj.0);
                let holds = match cond {
                    Cond::IsLive => s == RefState::Live,
                    Cond::IsNull => s == RefState::Null,
                    Cond::IsDisposed => s == RefState::Disposed,
                };
                self.threads[t].pc += 1 + if holds { skip } else { 0 };
            }
            Op::SpawnTask { script } => {
                // The task queue is shared mutable state every RunTasks
                // observes: order matters, so spawns are global.
                fp.mark_global();
                self.tasks.push_back(script.0);
                self.threads[t].pc += 1;
            }
            Op::RunTasks => {
                fp.mark_global();
                match self.tasks.pop_front() {
                    Some(task) => {
                        let th = &mut self.threads[t];
                        // Save the continuation *at* RunTasks so the worker
                        // loops back to drain the next task.
                        th.frames.push((th.script, th.pc));
                        th.script = task;
                        th.pc = 0;
                    }
                    None => self.threads[t].pc += 1,
                }
            }
        }
    }

    /// Commits the `Op::Access` thread `t` is parked at, applying the
    /// heap's transition table. `Err` is a NULL-reference manifestation.
    pub(crate) fn exec_access(
        &mut self,
        w: &Workload,
        t: usize,
        fp: &mut Footprint,
    ) -> Result<(), (NullRefKind, ObjectId)> {
        let Some(&Op::Access { obj, kind, .. }) = self.op_at(w, t) else {
            unreachable!("exec_access precondition: thread parked at an access");
        };
        fp.obj(obj.0);
        // Loads classify against the thread's *view* (own buffer first);
        // stores go through `store`, which buffers them under a weak model.
        let view = self.view_of(t, obj.0);
        match kind {
            AccessKind::Init => self.store(t, obj.0, RefState::Live),
            AccessKind::Use | AccessKind::UnsafeApiCall => match view {
                RefState::Live => {}
                RefState::Null => return Err((NullRefKind::UseBeforeInit, obj)),
                RefState::Disposed => return Err((NullRefKind::UseAfterFree, obj)),
            },
            AccessKind::Dispose => match view {
                RefState::Live => self.store(t, obj.0, RefState::Disposed),
                RefState::Null | RefState::Disposed => {
                    return Err((NullRefKind::DisposeOnNull, obj))
                }
            },
        }
        self.threads[t].pc += 1;
        Ok(())
    }

    /// Runs the scheduled thread until it parks at an access, blocks, or
    /// exits, accumulating the segment's footprint. Never commits accesses.
    fn run_segment(&mut self, w: &Workload, fp: &mut Footprint) -> SegStop {
        let t = self.running.expect("run_segment needs a scheduled thread") as usize;
        loop {
            if self.threads[t].status != Status::Ready {
                return SegStop::Yield;
            }
            match self.op_at(w, t) {
                None => {
                    // Script end: return from a task frame or exit.
                    if let Some((script, pc)) = self.threads[t].frames.pop() {
                        self.threads[t].script = script;
                        self.threads[t].pc = pc;
                    } else {
                        self.exit_thread(t, fp);
                        return SegStop::Yield;
                    }
                }
                Some(&Op::Access { .. }) => return SegStop::AtAccess,
                Some(op) => {
                    if self.model.is_weak()
                        && !self.threads[t].buffer.is_empty()
                        && is_flush_point(op)
                    {
                        // The flush would close this thread's stale window;
                        // park here so the scheduler can route readers in
                        // first. Never fires under `Sc` (buffers stay empty).
                        return SegStop::AtFlush;
                    }
                    let op = op.clone();
                    self.exec_simple(t, &op, fp);
                }
            }
        }
    }

    /// Advances past [`Self::run_segment`], normalizing `running` to
    /// `None` on a yield so the node invariant holds.
    pub(crate) fn advance_to_decision(&mut self, w: &Workload, fp: &mut Footprint) {
        match self.run_segment(w, fp) {
            SegStop::AtAccess | SegStop::AtFlush => {}
            SegStop::Yield => self.running = None,
        }
    }

    /// The preemption cost of switching away from this node: a thread
    /// parked at an access must be preempted; a flush park or a free
    /// choice switches for nothing.
    pub(crate) fn switch_cost(&self, w: &Workload) -> u32 {
        match self.running {
            Some(t) if self.at_access(w, t as usize) => 1,
            _ => 0,
        }
    }

    /// Canonical byte encoding of the state into `scratch.buf` — the
    /// pre-image of the memo fingerprint. Allocation-free once the
    /// scratch buffers reach their working size.
    pub(crate) fn encode_into(&self, scratch: &mut EncodeScratch) {
        fn push(buf: &mut Vec<u8>, v: u32) {
            debug_assert!(v < u16::MAX as u32, "oracle id overflow");
            buf.extend_from_slice(&(v as u16).to_le_bytes());
        }
        let EncodeScratch { buf, held } = scratch;
        buf.clear();
        push(buf, self.running.map_or(0, |t| t + 1));
        for &h in &self.heap {
            buf.push(h as u8);
        }
        for &s in &self.ev_signaled {
            buf.push(s as u8);
        }
        push(buf, self.tasks.len() as u32);
        for &s in &self.tasks {
            push(buf, s);
        }
        for (holder, waiters) in self.lock_holder.iter().zip(&self.lock_waiters) {
            push(buf, holder.map_or(0, |t| t + 1));
            push(buf, waiters.len() as u32);
            for &t in waiters {
                push(buf, t);
            }
        }
        push(buf, self.threads.len() as u32);
        for th in &self.threads {
            push(buf, th.script);
            push(buf, th.pc);
            let (tag, arg) = match th.status {
                Status::Ready => (0u8, 0),
                Status::BlockedLock(l) => (1, l),
                Status::BlockedEvent(e) => (2, e),
                Status::BlockedJoin => (3, 0),
                Status::Done => (4, 0),
            };
            buf.push(tag);
            push(buf, arg);
            push(buf, th.frames.len() as u32);
            for &(s, p) in &th.frames {
                push(buf, s);
                push(buf, p);
            }
            // `held` stays in acquisition order in the thread (exit
            // releases in that order — semantics), so normalize into the
            // reused sort scratch rather than cloning per state.
            held.clear();
            held.extend_from_slice(&th.held);
            held.sort_unstable();
            push(buf, held.len() as u32);
            for &l in held.iter() {
                push(buf, l);
            }
            push(buf, th.children.len() as u32);
            for &c in &th.children {
                push(buf, c);
            }
            push(buf, th.join_wait.len() as u32);
            for &j in &th.join_wait {
                push(buf, j);
            }
            if self.model.is_weak() {
                // Buffered stores are scheduler-visible state. Encoded only
                // under a weak model so `Sc` keys stay byte-identical to
                // the pre-weak-memory explorer.
                push(buf, th.buffer.len() as u32);
                for &(obj, st) in &th.buffer {
                    push(buf, obj);
                    buf.push(st as u8);
                }
            }
        }
    }
}
