//! Sleep-set partial-order reduction and the allocation-free state memo.
//!
//! Two interleavings that differ only in the order of *independent*
//! transitions reach the same state, so exploring both wastes the budget
//! the oracle needs for weak-memory sweeps. The classic cure is a sleep
//! set (Godefroid): after a transition `c` is fully explored at a node,
//! `c` is put to sleep for the node's remaining siblings, and stays
//! asleep along any path whose transitions are all independent of `c` —
//! every schedule in which `c` fires later is a reordering of one already
//! explored. A dependent transition wakes it (removes it from the set).
//!
//! Independence here is a *conservative static* relation over the
//! footprints recorded while a transition executes:
//!
//! * accesses (and drains, and `SkipIf` guards) to **different objects**
//!   commute;
//! * two transitions touching the **same object**, the **same lock**, or
//!   the **same event** never commute;
//! * fork/join/exit/task-pool transitions are **global** — dependent
//!   with everything — because they change the thread table or the
//!   shared task queue;
//! * two transitions of the **same thread** never commute (program
//!   order).
//!
//! Bounded preemptions interact with POR (the known BPOR pitfall): a
//! sleeping transition is justified by a sibling subtree that replays
//! the same events in a different order, and that replay must not cost
//! *more* preemption budget than the pruned path would have. Each sleep
//! entry therefore carries a budget *penalty* — see [`SleepEntry`] — and
//! is only allowed to prune at nodes whose own switch cost covers it.
//! Everything else is explored in full; soundness is additionally proven
//! by the reduced-vs-unreduced differential suite
//! (`tests/oracle_equivalence.rs`).

/// Conservative static footprint of one explored transition: which
/// objects, locks, and events it touched, and whether it is globally
/// dependent (thread-table or task-queue mutation). Sets are 64-bit
/// Bloom-style masks (`id & 63`); a false overlap only loses reduction,
/// never soundness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Footprint {
    objs: u64,
    locks: u64,
    events: u64,
    global: bool,
}

impl Footprint {
    /// Records a read or write of object `o`.
    pub(crate) fn obj(&mut self, o: u32) {
        self.objs |= 1u64 << (o & 63);
    }

    /// Records an acquire/release/handoff on lock `l`.
    pub(crate) fn lock(&mut self, l: u32) {
        self.locks |= 1u64 << (l & 63);
    }

    /// Records a signal/wait on event `e`.
    pub(crate) fn event(&mut self, e: u32) {
        self.events |= 1u64 << (e & 63);
    }

    /// Marks the transition dependent with everything (fork, join, exit,
    /// throw, task spawn/run).
    pub(crate) fn mark_global(&mut self) {
        self.global = true;
    }

    /// Whether the transition is dependent with everything.
    pub(crate) fn is_global(&self) -> bool {
        self.global
    }

    fn overlaps(&self, other: &Footprint) -> bool {
        self.objs & other.objs != 0
            || self.locks & other.locks != 0
            || self.events & other.events != 0
    }
}

/// Identity of a schedule transition for sleep-set membership.
///
/// `Thread(u)` is "schedule thread `u`" (a `Switch` edge — `Continue`
/// edges are visited last at a node and never gain later siblings, so
/// they never enter a sleep set). `Drain(t, o)` is "commit thread `t`'s
/// oldest buffered store to object `o`"; under both TSO (head-only) and
/// PSO (first-per-object) at most one committable entry per `(t, o)`
/// exists, and any transition of `t` itself is dependent with it, so the
/// pair stays a stable identity for as long as the entry may sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum TransId {
    /// Schedule thread `u`.
    Thread(u32),
    /// Commit thread `.0`'s oldest buffered store to object `.1`.
    Drain(u32, u32),
}

/// One sleeping transition: its identity, the thread it belongs to, the
/// footprint recorded when it was explored, and the budget *penalty* that
/// gates pruning.
///
/// The penalty encodes the bounded-preemption/POR conservatism rule.
/// Pruning a slept edge at node `Y` is justified by a mirror schedule in
/// the already-explored sibling subtree that fires the edge first; the
/// mirror's cost differs from the pruned path's by at most
/// `max(switch_cost(origin), switch_cost(child)) - switch_cost(Y)` (the
/// edge pays its origin's cost up front, and the first reordered sibling
/// may newly pay the child's). The edge may therefore only be pruned
/// where `penalty <= switch_cost(Y)` — the mirror then fits the same
/// preemption budget the pruned path had. Drain edges never move a
/// thread's park point, so their penalty is zero and they prune anywhere.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SleepEntry {
    pub(crate) id: TransId,
    pub(crate) thread: u32,
    pub(crate) fp: Footprint,
    pub(crate) penalty: u32,
}

/// The sleeping entry for `id`, if any. `sleep` is kept sorted by id.
pub(crate) fn sleep_get(sleep: &[SleepEntry], id: TransId) -> Option<&SleepEntry> {
    sleep
        .binary_search_by(|e| e.id.cmp(&id))
        .ok()
        .map(|i| &sleep[i])
}

/// Puts `entry` to sleep (no-op if already present).
pub(crate) fn sleep_insert(sleep: &mut Vec<SleepEntry>, entry: SleepEntry) {
    if let Err(i) = sleep.binary_search_by(|e| e.id.cmp(&entry.id)) {
        sleep.insert(i, entry);
    }
}

/// Conservative dependence between a sleeping transition and an executed
/// edge: global on either side, same thread, or overlapping footprints.
pub(crate) fn dependent(entry: &SleepEntry, edge_thread: u32, edge_fp: &Footprint) -> bool {
    entry.fp.is_global()
        || edge_fp.is_global()
        || entry.thread == edge_thread
        || entry.fp.overlaps(edge_fp)
}

/// Child sleep set after taking an edge: the parent entries the edge is
/// independent of. Writes into `dst` (reused across the DFS).
pub(crate) fn filter_sleep(
    src: &[SleepEntry],
    edge_thread: u32,
    edge_fp: &Footprint,
    dst: &mut Vec<SleepEntry>,
) {
    dst.clear();
    dst.extend(
        src.iter()
            .filter(|e| !dependent(e, edge_thread, edge_fp))
            .copied(),
    );
}

/// Whether `a` prunes no more than `b` does: every entry of `a` is
/// matched in `b` by an entry with the same id and a penalty no larger
/// (lower penalty prunes in more contexts). Both are sorted by id.
pub(crate) fn sleep_subset(a: &[SleepEntry], b: &[SleepEntry]) -> bool {
    let mut bi = b.iter();
    'outer: for ea in a {
        for eb in bi.by_ref() {
            match eb.id.cmp(&ea.id) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => {
                    if eb.penalty <= ea.penalty {
                        continue 'outer;
                    }
                    return false;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// 128-bit FNV-1a over `bytes`, continuing from `h` (start from
/// [`fnv128`] for a fresh hash).
fn fnv128_extend(mut h: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit FNV-1a fingerprint of a canonical state encoding.
pub(crate) fn fnv128(bytes: &[u8]) -> u128 {
    fnv128_extend(FNV_OFFSET, bytes)
}

/// Order-sensitive fingerprint of a sleep set's identities. Folded into
/// the memo key so a state revisited with a *different* sleep set is a
/// distinct memo entry — pruning a (state, bigger-sleep) visit against a
/// (state, smaller-sleep) record would be sound, but the converse is
/// not, and keying on the pair avoids the subset bookkeeping entirely.
pub(crate) fn sleep_fingerprint(sleep: &[SleepEntry]) -> u128 {
    let mut h = FNV_OFFSET;
    for e in sleep {
        let (tag, a, b) = match e.id {
            TransId::Thread(u) => (1u8, u, 0),
            TransId::Drain(t, o) => (2u8, t, o),
        };
        h = fnv128_extend(h, &[tag, e.penalty as u8]);
        h = fnv128_extend(h, &a.to_le_bytes());
        h = fnv128_extend(h, &b.to_le_bytes());
    }
    h
}

/// Outcome of a memo probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Probe {
    /// Seen before with at least as much budget: prune.
    Dominated,
    /// Seen before with less budget: re-expand (not a new frontier state).
    Updated,
    /// New fingerprint (or an evicted slot): a genuine frontier state.
    Inserted,
}

/// Bounded direct-mapped memo of `(state fingerprint, best budget)`
/// pairs, sized like the PR 6 happens-before memo: start small, double
/// while the load factor exceeds 1/2, stop at a cap derived from
/// `max_states`. On an index collision the newcomer overwrites — the
/// evicted state is merely re-explored if revisited, which costs time,
/// never soundness. The hot path allocates nothing; growth rehashes are
/// amortized and bounded by the cap.
pub(crate) struct StateMemo {
    slots: Vec<Slot>,
    mask: usize,
    occupied: usize,
    max_slots: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u128,
    /// `u32::MAX` marks an empty slot (budgets are tiny by comparison).
    budget: u32,
}

const EMPTY: u32 = u32::MAX;

impl StateMemo {
    /// A memo whose growth cap tracks the explorer's state cap.
    pub(crate) fn new(max_states: u64) -> Self {
        let target = (max_states.clamp(1, 1 << 21) as usize * 2).next_power_of_two();
        let max_slots = target.clamp(1 << 12, 1 << 22);
        let cap = (1usize << 12).min(max_slots);
        Self {
            slots: vec![Slot { key: 0, budget: EMPTY }; cap],
            mask: cap - 1,
            occupied: 0,
            max_slots,
        }
    }

    fn index(&self, key: u128) -> usize {
        // Fibonacci-style mix of both halves so the slot index is not a
        // plain truncation of the stored key.
        let mixed = (key as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((key >> 64) as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        (mixed >> 16) as usize & self.mask
    }

    /// Looks up `key`, recording `budget` as the best known if it wins.
    pub(crate) fn probe(&mut self, key: u128, budget: u32) -> Probe {
        if self.occupied * 2 > self.slots.len() && self.slots.len() < self.max_slots {
            self.grow();
        }
        let i = self.index(key);
        let s = &mut self.slots[i];
        if s.budget != EMPTY && s.key == key {
            if s.budget >= budget {
                Probe::Dominated
            } else {
                s.budget = budget;
                Probe::Updated
            }
        } else {
            if s.budget == EMPTY {
                self.occupied += 1;
            }
            *s = Slot { key, budget };
            Probe::Inserted
        }
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).min(self.max_slots);
        let old = std::mem::replace(&mut self.slots, vec![Slot { key: 0, budget: EMPTY }; new_len]);
        self.mask = self.slots.len() - 1;
        self.occupied = 0;
        for s in old {
            if s.budget == EMPTY {
                continue;
            }
            let i = self.index(s.key);
            if self.slots[i].budget == EMPTY {
                self.occupied += 1;
                self.slots[i] = s;
            } else if self.slots[i].key == s.key {
                self.slots[i].budget = self.slots[i].budget.max(s.budget);
            } else {
                // Collision in the new table: keep the incumbent; the
                // loser is re-explored on revisit, which is sound.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: TransId) -> SleepEntry {
        SleepEntry {
            id,
            thread: match id {
                TransId::Thread(u) => u,
                TransId::Drain(t, _) => t,
            },
            fp: Footprint::default(),
            penalty: 0,
        }
    }

    #[test]
    fn sleep_set_is_sorted_and_deduplicated() {
        let mut s = Vec::new();
        sleep_insert(&mut s, entry(TransId::Thread(3)));
        sleep_insert(&mut s, entry(TransId::Thread(1)));
        sleep_insert(&mut s, entry(TransId::Drain(1, 0)));
        sleep_insert(&mut s, entry(TransId::Thread(1)));
        assert_eq!(s.len(), 3);
        assert!(sleep_get(&s, TransId::Thread(1)).is_some());
        assert!(sleep_get(&s, TransId::Drain(1, 0)).is_some());
        assert!(sleep_get(&s, TransId::Drain(3, 0)).is_none());
        assert!(s.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn dependence_is_conservative() {
        let mut fp_a = Footprint::default();
        fp_a.obj(7);
        let e = SleepEntry {
            id: TransId::Thread(2),
            thread: 2,
            fp: fp_a,
            penalty: 0,
        };
        let mut same_obj = Footprint::default();
        same_obj.obj(7);
        let mut other_obj = Footprint::default();
        other_obj.obj(8);
        let mut global = Footprint::default();
        global.mark_global();
        assert!(dependent(&e, 5, &same_obj), "same object");
        assert!(dependent(&e, 2, &other_obj), "same thread");
        assert!(dependent(&e, 5, &global), "global edge");
        assert!(!dependent(&e, 5, &other_obj), "disjoint commute");
    }

    #[test]
    fn subset_check_matches_set_semantics() {
        let a = vec![entry(TransId::Thread(1)), entry(TransId::Drain(2, 4))];
        let b = vec![
            entry(TransId::Thread(1)),
            entry(TransId::Thread(3)),
            entry(TransId::Drain(2, 4)),
        ];
        assert!(sleep_subset(&a, &b));
        assert!(!sleep_subset(&b, &a));
        assert!(sleep_subset(&[], &a));
        assert!(sleep_subset(&[], &[]));
    }

    #[test]
    fn memo_budget_dominance() {
        let mut m = StateMemo::new(1000);
        assert_eq!(m.probe(42, 2), Probe::Inserted);
        assert_eq!(m.probe(42, 1), Probe::Dominated);
        assert_eq!(m.probe(42, 2), Probe::Dominated);
        assert_eq!(m.probe(42, 3), Probe::Updated);
        assert_eq!(m.probe(42, 2), Probe::Dominated);
        assert_eq!(m.probe(99, 0), Probe::Inserted);
    }

    #[test]
    fn memo_grows_without_losing_dominance() {
        let mut m = StateMemo::new(1 << 20);
        let n = 20_000u64;
        for k in 0..n {
            // Spread keys across the full 128-bit space.
            m.probe(fnv128(&k.to_le_bytes()), 1);
        }
        // Soundness across growth and eviction: a key never recorded with
        // this much budget must not be reported dominated. Probing every
        // inserted key with a strictly larger budget must come back
        // Updated (still resident) or Inserted (evicted, re-explored) —
        // never Dominated.
        for k in 0..n {
            let p = m.probe(fnv128(&k.to_le_bytes()), 2);
            assert_ne!(p, Probe::Dominated, "false dominance for key {k}");
        }
        // Fresh keys are likewise never dominated.
        for k in n..n + 1000 {
            let p = m.probe(fnv128(&k.to_le_bytes()), 0);
            assert_ne!(p, Probe::Dominated, "false dominance for fresh key {k}");
        }
        // And the table retains enough after growth to be useful: probing
        // the budget-2 keys again at budget 1 should be dominated for a
        // solid majority (only index-collision evictions may miss).
        let dominated = (0..n)
            .filter(|k| m.probe(fnv128(&k.to_le_bytes()), 1) == Probe::Dominated)
            .count() as u64;
        assert!(
            dominated > n / 2,
            "memo retained only {dominated}/{n} keys after growth"
        );
    }

    #[test]
    fn sleep_fingerprint_distinguishes_sets() {
        let a = vec![entry(TransId::Thread(1))];
        let b = vec![entry(TransId::Thread(2))];
        let ab = vec![entry(TransId::Thread(1)), entry(TransId::Thread(2))];
        assert_ne!(sleep_fingerprint(&a), sleep_fingerprint(&b));
        assert_ne!(sleep_fingerprint(&a), sleep_fingerprint(&ab));
        assert_ne!(sleep_fingerprint(&[]), sleep_fingerprint(&a));
        assert_eq!(sleep_fingerprint(&a), sleep_fingerprint(&a.clone()));
    }
}
