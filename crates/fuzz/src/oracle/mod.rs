//! Bounded exhaustive schedule exploration over the simulated instruction
//! set: the ground-truth oracle for differential detector testing.
//!
//! The explorer answers one question about a workload, independently of
//! delay injection: *does any thread schedule make an instrumented access
//! raise a NULL-reference exception?* It walks a time-free mirror of the
//! engine's semantics — same heap state machine, same FIFO locks, same
//! sticky events, same join/task rules — enumerating schedules in the
//! CHESS style: context switches are free at blocking points and cost one
//! unit of a *preemption budget* at instrumented accesses.
//!
//! Preemption points are placed **only** at [`Op::Access`](waffle_sim::Op) boundaries
//! because those are exactly the program points where delay injection can
//! hold a thread back: an injected delay pauses the accessing thread
//! immediately before its access commits, so every injection-reachable
//! interleaving is a sequence of access-boundary preemptions. Preempting at
//! more locations would declare bugs "exposable" that no delay placement
//! can reach and charge the detector with spurious false negatives.
//!
//! State explosion is held down by three cooperating mechanisms:
//!
//! * **Memoization** — a 128-bit FNV-1a fingerprint of the canonical
//!   state encoding (computed into a reused scratch buffer) keyed with
//!   the largest remaining budget it was visited with, in a bounded
//!   direct-mapped table. A state revisited with no more budget cannot
//!   reach anything new and is pruned.
//! * **Sleep-set partial-order reduction** — interleavings that differ
//!   only in the order of independent transitions are explored once; see
//!   [`reduction`] for the independence relation and the preemption-
//!   bound conservatism rule. Disable with [`OracleConfig::reduce`].
//! * **Clone-on-branch frames** — the DFS keeps one frame per depth and
//!   materializes a sibling by cloning into a recycled frame (the last
//!   sibling steals the parent's state outright), so the hot loop does
//!   no per-state heap allocation.

mod reduction;
mod state;

use waffle_mem::{NullRefKind, ObjectId};
use waffle_sim::{MemoryModel, Workload};

use reduction::{
    filter_sleep, fnv128, sleep_fingerprint, sleep_get, sleep_insert, sleep_subset, Footprint,
    Probe, SleepEntry, StateMemo, TransId,
};
use state::{EncodeScratch, OState};

/// Tuning knobs for the bounded explorer.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Maximum preemptive context switches per schedule (switches taken
    /// while the running thread could have continued). Switches at
    /// blocking points are free, as in context-bounded model checking.
    pub preemption_bound: u32,
    /// Hard cap on genuine frontier states (distinct state fingerprints);
    /// exceeding it yields [`OracleVerdict::Truncated`] instead of a
    /// clean verdict. Memo-pruned revisits and sleep-set prunes are
    /// counted separately and never charge against this cap.
    pub max_states: u64,
    /// Memory model explored. Under a weak model each thread owns a store
    /// buffer whose *drain points* are additional schedule choices: the
    /// explorer may commit any committable buffered store (TSO: the oldest;
    /// PSO: the oldest per object) at any decision point, and a thread
    /// parked at a flush-point op (lock, fork, join, fence) yields a free
    /// switch first — mirroring how an injected delay at the store lets
    /// other threads run inside the stale window. Under `Sc` (the default)
    /// exploration is bit-for-bit what it always was.
    pub memory: MemoryModel,
    /// Enable sleep-set partial-order reduction (on by default). The
    /// verdict is identical either way — pinned by the differential
    /// equivalence suite — only the states/second differ; turn it off to
    /// cross-check a verdict against the naive explorer.
    pub reduce: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_states: 2_000_000,
            memory: MemoryModel::Sc,
            reduce: true,
        }
    }
}

/// The oracle's answer for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleVerdict {
    /// Some schedule within the preemption bound raises a NULL-reference
    /// exception.
    Exposable {
        /// Bug class of the witnessing manifestation.
        kind: NullRefKind,
        /// Object whose reference was NULL at the faulting access.
        obj: ObjectId,
        /// Preemptive switches the witness schedule spent.
        preemptions: u32,
    },
    /// Every schedule within the preemption bound completes without a
    /// NULL-reference exception.
    CleanWithinBound,
    /// The state cap was hit before the space was exhausted; no claim.
    Truncated,
}

/// One step of a witness schedule, replayable via [`replay_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleStep {
    /// The running thread commits its parked op (access or flush).
    Continue,
    /// Schedule the given thread.
    Switch(u32),
    /// Commit buffer entry `idx` of `thread` (weak models only).
    Drain {
        /// Thread whose store buffer drains.
        thread: u32,
        /// Buffer index committed.
        idx: u32,
    },
}

/// Verdict plus exploration statistics.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The verdict.
    pub verdict: OracleVerdict,
    /// Genuine frontier states: distinct state fingerprints visited. This
    /// — and only this — is charged against [`OracleConfig::max_states`].
    pub states_explored: u64,
    /// Revisits pruned because the state was already seen with at least
    /// as much budget (includes on-path cycle prunes).
    pub memo_hits: u64,
    /// Transitions skipped by sleep-set partial-order reduction.
    pub sleep_prunes: u64,
    /// Known states re-expanded because a revisit arrived with a larger
    /// remaining budget (not new frontier, not prunable).
    pub revisits: u64,
    /// The witness schedule from the initial state to the faulting
    /// access, empty unless the verdict is `Exposable`.
    pub witness: Vec<ScheduleStep>,
    /// Terminal states reached with at least one thread still blocked — a
    /// deadlock introduced by the workload (or by a candidate repair
    /// patch). A `CleanWithinBound` verdict with `deadlocks > 0` must not
    /// be read as "no bug": schedules that deadlock expose nothing by
    /// construction, so repair certification requires this to be zero.
    pub deadlocks: u64,
}

impl OracleReport {
    /// Whether the verdict is [`OracleVerdict::Exposable`].
    pub fn exposable(&self) -> bool {
        matches!(self.verdict, OracleVerdict::Exposable { .. })
    }
}

/// What a witness replay reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Bug class raised at the final step.
    pub kind: NullRefKind,
    /// Object whose reference was NULL.
    pub obj: ObjectId,
    /// Preemptive switches the schedule spent (switches taken at an
    /// access park).
    pub preemptions: u32,
}

/// An edge out of a DFS node. `Drain` carries the committed object so the
/// footprint and the sleep identity need no buffer lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Choice {
    Continue,
    Switch(u32),
    Drain { thread: u32, idx: u32, obj: u32 },
}

impl Choice {
    fn step(self) -> ScheduleStep {
        match self {
            Choice::Continue => ScheduleStep::Continue,
            Choice::Switch(u) => ScheduleStep::Switch(u),
            Choice::Drain { thread, idx, .. } => ScheduleStep::Drain { thread, idx },
        }
    }
}

/// One DFS depth: the node's state, its remaining budget, its sleep set,
/// and the iteration cursor over its outgoing edges. Frames (and the
/// vectors inside them) are recycled across the whole exploration.
struct Frame {
    state: OState,
    budget: u32,
    /// Fingerprint of the state alone (sleep not folded in) — the
    /// on-path cycle guard compares against it.
    state_fp: u128,
    /// Switch cost at this node (1 if the running thread is parked at an
    /// access, else 0); cached because the sleep machinery consults it
    /// for every pruning decision.
    node_cost: u32,
    /// Edge that led here from the parent (unused at the root).
    via: Choice,
    sleep: Vec<SleepEntry>,
    choices: Vec<Choice>,
    next: usize,
}

impl Frame {
    fn new(w: &Workload, model: MemoryModel) -> Self {
        Self {
            state: OState::new(w, model),
            budget: 0,
            state_fp: 0,
            node_cost: 0,
            via: Choice::Continue,
            sleep: Vec::new(),
            choices: Vec::new(),
            next: 0,
        }
    }
}

/// Enumerates a node's outgoing edges in visit order: drain choices
/// (descending thread, then descending buffer index), then preemptive /
/// free switches (descending thread id), then the continue edge last —
/// the exact pop order of the historical stack-of-states explorer, so
/// unreduced exploration reproduces its traversal and witnesses.
fn enumerate_choices(s: &OState, w: &Workload, budget: u32, out: &mut Vec<Choice>) {
    out.clear();
    if s.model.is_weak() {
        for t in (0..s.threads.len()).rev() {
            let start = out.len();
            s.push_committable(t, out);
            out[start..].reverse();
        }
    }
    match s.running {
        Some(t) => {
            // Switches at an access spend preemption budget; switches at a
            // flush point are free — an injected delay at the buffered
            // store stretches the drain arbitrarily, so any work other
            // threads do before the flush is reachable without a
            // preemption.
            let free = !s.at_access(w, t as usize);
            if free || budget > 0 {
                for u in (0..s.threads.len()).rev() {
                    if u as u32 != t && s.threads[u].status == state::Status::Ready {
                        out.push(Choice::Switch(u as u32));
                    }
                }
            }
            out.push(Choice::Continue);
        }
        None => {
            // Free choice: the previous thread blocked or exited. No ready
            // thread means termination or deadlock — terminal either way,
            // and not a manifestation.
            for u in (0..s.threads.len()).rev() {
                if s.threads[u].status == state::Status::Ready {
                    out.push(Choice::Switch(u as u32));
                }
            }
        }
    }
}

/// A terminal state (no outgoing edges: nothing running, nothing ready,
/// nothing committable) is a deadlock iff some thread never finished —
/// blocked on a lock, event, or join that can no longer be satisfied.
fn is_deadlock(s: &OState) -> bool {
    s.threads.iter().any(|t| t.status != state::Status::Done)
}

/// Exhaustively explores schedules of `workload` within the preemption
/// bound, returning the first NULL-reference witness found or a clean /
/// truncated verdict.
pub fn explore(workload: &Workload, config: &OracleConfig) -> OracleReport {
    let mut states_explored: u64;
    let mut memo_hits: u64 = 0;
    let mut sleep_prunes: u64 = 0;
    let mut revisits: u64 = 0;
    let mut memo = StateMemo::new(config.max_states);
    let mut scratch = EncodeScratch::default();

    let mut deadlocks: u64 = 0;

    let report = |verdict, states_explored, memo_hits, sleep_prunes, revisits, witness, deadlocks| {
        OracleReport {
            verdict,
            states_explored,
            memo_hits,
            sleep_prunes,
            revisits,
            witness,
            deadlocks,
        }
    };

    let mut frames: Vec<Frame> = Vec::with_capacity(32);
    frames.push(Frame::new(workload, config.memory));
    {
        let root = &mut frames[0];
        let mut fp = Footprint::default();
        root.state.advance_to_decision(workload, &mut fp);
        root.budget = config.preemption_bound;
        root.state.encode_into(&mut scratch);
        root.state_fp = fnv128(&scratch.buf);
        root.node_cost = root.state.switch_cost(workload);
        root.sleep.clear();
        memo.probe(root.state_fp ^ sleep_fingerprint(&[]), root.budget);
        states_explored = 1;
        enumerate_choices(&root.state, workload, root.budget, &mut root.choices);
        if root.choices.is_empty() && is_deadlock(&root.state) {
            deadlocks += 1;
        }
        root.next = 0;
    }

    let mut depth = 0usize;
    'dfs: loop {
        // Advance the cursor at the current frame to its next live edge,
        // popping exhausted frames.
        let (choice, is_last) = {
            let f = &mut frames[depth];
            loop {
                if f.next >= f.choices.len() {
                    if depth == 0 {
                        return report(
                            OracleVerdict::CleanWithinBound,
                            states_explored,
                            memo_hits,
                            sleep_prunes,
                            revisits,
                            Vec::new(),
                            deadlocks,
                        );
                    }
                    depth -= 1;
                    continue 'dfs;
                }
                let c = f.choices[f.next];
                f.next += 1;
                if config.reduce {
                    let id = match c {
                        Choice::Continue => None,
                        Choice::Switch(u) => Some(TransId::Thread(u)),
                        Choice::Drain { thread, obj, .. } => Some(TransId::Drain(thread, obj)),
                    };
                    if let Some(id) = id {
                        // A sleeping edge may only be pruned where its
                        // budget penalty is covered by this node's switch
                        // cost — the mirror schedule justifying the prune
                        // then fits the same preemption budget.
                        if let Some(e) = sleep_get(&f.sleep, id) {
                            if e.penalty <= f.node_cost {
                                sleep_prunes += 1;
                                continue;
                            }
                        }
                    }
                }
                break (c, f.next >= f.choices.len());
            }
        };

        // Materialize the child into the recycled frame at depth + 1. The
        // last sibling steals the parent's state (the parent never needs
        // it again); earlier siblings clone into the child's buffers.
        if frames.len() == depth + 1 {
            frames.push(Frame::new(workload, config.memory));
        }
        let (left, right) = frames.split_at_mut(depth + 1);
        let f = &mut left[depth];
        let child = &mut right[0];
        if is_last {
            std::mem::swap(&mut child.state, &mut f.state);
        } else {
            child.state.clone_from(&f.state);
        }

        let parent_cost = f.node_cost;
        let parent_budget = f.budget;
        let mut fp = Footprint::default();
        let mut child_budget = parent_budget;
        let edge_thread;
        match choice {
            Choice::Continue => {
                let t = child
                    .state
                    .running
                    .expect("continue edge requires a running thread")
                    as usize;
                edge_thread = t as u32;
                if child.state.at_access(workload, t) {
                    match child.state.exec_access(workload, t, &mut fp) {
                        Err((kind, obj)) => {
                            let mut witness: Vec<ScheduleStep> = left[1..=depth]
                                .iter()
                                .map(|fr| fr.via.step())
                                .collect();
                            witness.push(ScheduleStep::Continue);
                            return report(
                                OracleVerdict::Exposable {
                                    kind,
                                    obj,
                                    preemptions: config.preemption_bound - parent_budget,
                                },
                                states_explored,
                                memo_hits,
                                sleep_prunes,
                                revisits,
                                witness,
                                deadlocks,
                            );
                        }
                        Ok(()) => child.state.advance_to_decision(workload, &mut fp),
                    }
                } else {
                    // Parked at a flush point (weak model): continuing
                    // drains the buffer and executes the op.
                    let op = child
                        .state
                        .op_at(workload, t)
                        .expect("flush-point park has a current op")
                        .clone();
                    child.state.exec_simple(t, &op, &mut fp);
                    child.state.advance_to_decision(workload, &mut fp);
                }
            }
            Choice::Switch(u) => {
                edge_thread = u;
                if parent_cost != 0 {
                    child_budget = parent_budget - 1;
                }
                child.state.running = Some(u);
                child.state.advance_to_decision(workload, &mut fp);
            }
            Choice::Drain { thread, idx, obj } => {
                edge_thread = thread;
                child
                    .state
                    .commit_one(thread as usize, idx as usize)
                    .expect("enumerated drain choice is committable");
                fp.obj(obj);
            }
        }

        // Sleep bookkeeping. The child inherits the parent entries the
        // edge is independent of; the edge itself goes to sleep for the
        // parent's later siblings (unless its footprint is global —
        // dependent with everything, it would be woken immediately). The
        // entry's penalty, `max(switch_cost(here), switch_cost(child))`,
        // records how much budget the justifying mirror schedule may need
        // at the prune site; see [`SleepEntry`] for the argument. Drains
        // never move a park point and carry penalty zero.
        let child_cost = child.state.switch_cost(workload);
        if config.reduce {
            filter_sleep(&f.sleep, edge_thread, &fp, &mut child.sleep);
            if !is_last && !fp.is_global() {
                let entry = match choice {
                    Choice::Continue => None, // visited last; no later siblings
                    Choice::Switch(u) => Some((TransId::Thread(u), parent_cost.max(child_cost))),
                    Choice::Drain { thread, obj, .. } => Some((TransId::Drain(thread, obj), 0)),
                };
                if let Some((id, penalty)) = entry {
                    sleep_insert(
                        &mut f.sleep,
                        SleepEntry {
                            id,
                            thread: edge_thread,
                            fp,
                            penalty,
                        },
                    );
                }
            }
        } else {
            child.sleep.clear();
        }

        // Memoization: fingerprint of (canonical state, sleep identities),
        // keyed with the best remaining budget seen.
        child.state.encode_into(&mut scratch);
        let state_fp = fnv128(&scratch.buf);
        let key = state_fp ^ sleep_fingerprint(&child.sleep);
        match memo.probe(key, child_budget) {
            Probe::Dominated => {
                memo_hits += 1;
                continue 'dfs;
            }
            Probe::Updated => revisits += 1,
            Probe::Inserted => {
                states_explored += 1;
                if states_explored > config.max_states {
                    return report(
                        OracleVerdict::Truncated,
                        states_explored,
                        memo_hits,
                        sleep_prunes,
                        revisits,
                        Vec::new(),
                        deadlocks,
                    );
                }
            }
        }
        // On-path cycle guard: the bounded memo may evict the entry that
        // would normally terminate a free-switch cycle, so a child whose
        // state already appears on the current path with at least as much
        // budget and a no-larger sleep set is pruned outright.
        if left
            .iter()
            .any(|fr| {
                fr.state_fp == state_fp
                    && fr.budget >= child_budget
                    && sleep_subset(&fr.sleep, &child.sleep)
            })
        {
            memo_hits += 1;
            continue 'dfs;
        }

        child.budget = child_budget;
        child.state_fp = state_fp;
        child.node_cost = child_cost;
        child.via = choice;
        enumerate_choices(&child.state, workload, child_budget, &mut child.choices);
        if child.choices.is_empty() && is_deadlock(&child.state) {
            deadlocks += 1;
        }
        child.next = 0;
        depth += 1;
    }
}

/// Deterministically replays a witness schedule produced by [`explore`]
/// through the same (unreduced — a fixed schedule explores nothing)
/// state machine. Returns the manifestation the schedule ends in, or
/// `None` if the schedule is malformed or completes cleanly.
pub fn replay_schedule(
    workload: &Workload,
    memory: MemoryModel,
    steps: &[ScheduleStep],
) -> Option<ReplayOutcome> {
    let mut s = OState::new(workload, memory);
    let mut fp = Footprint::default();
    s.advance_to_decision(workload, &mut fp);
    let mut preemptions = 0u32;
    for &step in steps {
        match step {
            ScheduleStep::Continue => {
                let t = s.running? as usize;
                if s.at_access(workload, t) {
                    match s.exec_access(workload, t, &mut fp) {
                        Err((kind, obj)) => {
                            return Some(ReplayOutcome {
                                kind,
                                obj,
                                preemptions,
                            })
                        }
                        Ok(()) => s.advance_to_decision(workload, &mut fp),
                    }
                } else {
                    let op = s.op_at(workload, t)?.clone();
                    s.exec_simple(t, &op, &mut fp);
                    s.advance_to_decision(workload, &mut fp);
                }
            }
            ScheduleStep::Switch(u) => {
                if s.switch_cost(workload) == 1 {
                    preemptions += 1;
                }
                if s.threads.get(u as usize)?.status != state::Status::Ready {
                    return None;
                }
                s.running = Some(u);
                s.advance_to_decision(workload, &mut fp);
            }
            ScheduleStep::Drain { thread, idx } => {
                s.commit_one(thread as usize, idx as usize)?;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests;
