use super::*;
use waffle_sim::time::{ms, us};
use waffle_sim::WorkloadBuilder;

fn bound(k: u32) -> OracleConfig {
    OracleConfig {
        preemption_bound: k,
        ..OracleConfig::default()
    }
}

fn unreduced(cfg: &OracleConfig) -> OracleConfig {
    OracleConfig {
        reduce: false,
        ..*cfg
    }
}

/// Init and use race with no ordering edge: one preemption at the
/// parent's init access postpones it past the child's use.
fn racy_init() -> waffle_sim::Workload {
    let mut b = WorkloadBuilder::new("oracle.racy_init");
    let o = b.object("conn");
    let child = b.script("child", move |s| {
        s.compute(us(10)).use_(o, "child.use", us(5));
    });
    let m = b.script("main", move |s| {
        s.fork(child).init(o, "main.init", us(5)).join_children();
    });
    b.main(m);
    b.build()
}

#[test]
fn racy_init_is_exposable_with_one_preemption() {
    let r = explore(&racy_init(), &bound(1));
    assert!(
        matches!(
            r.verdict,
            OracleVerdict::Exposable {
                kind: NullRefKind::UseBeforeInit,
                ..
            }
        ),
        "verdict {:?}",
        r.verdict
    );
}

#[test]
fn racy_init_is_clean_at_bound_zero() {
    // Main is scheduled first and runs to its first access (the init)
    // before the child can be picked; without a preemption the init
    // always commits before any switch.
    let r = explore(&racy_init(), &bound(0));
    assert_eq!(r.verdict, OracleVerdict::CleanWithinBound);
}

#[test]
fn event_ordered_init_is_clean_at_any_bound() {
    let mut b = WorkloadBuilder::new("oracle.ordered");
    let o = b.object("conn");
    let ev = b.event("ready");
    let child = b.script("child", move |s| {
        s.wait(ev).use_(o, "child.use", us(5));
    });
    let m = b.script("main", move |s| {
        s.fork(child)
            .init(o, "main.init", us(5))
            .signal(ev)
            .join_children();
    });
    b.main(m);
    let r = explore(&b.build(), &bound(3));
    assert_eq!(r.verdict, OracleVerdict::CleanWithinBound);
}

#[test]
fn use_after_dispose_race_needs_no_preemption() {
    // Dispose-before-join: the child's use races the parent's dispose
    // through a free blocking switch (parent runs to completion of its
    // dispose, then blocks at join; the child then uses a disposed
    // ref). Exposable at bound 0.
    let mut b = WorkloadBuilder::new("oracle.uaf");
    let o = b.object("conn");
    let ev = b.event("go");
    let child = b.script("child", move |s| {
        s.wait(ev).compute(ms(1)).use_(o, "child.use", us(5));
    });
    let m = b.script("main", move |s| {
        s.init(o, "main.init", us(5))
            .fork(child)
            .signal(ev)
            .dispose(o, "main.dispose", us(5))
            .join_children();
    });
    b.main(m);
    let r = explore(&b.build(), &bound(0));
    assert!(
        matches!(
            r.verdict,
            OracleVerdict::Exposable {
                kind: NullRefKind::UseAfterFree,
                ..
            }
        ),
        "verdict {:?}",
        r.verdict
    );
}

#[test]
fn double_locked_race_is_unexposable_by_access_preemption() {
    // Both accesses are wrapped in the same lock and main acquires it
    // before its first preemption point (the init access). A switch to
    // the child just blocks it on the queue, so the use can never jump
    // ahead of the init — which is exactly delay injection's power: a
    // delay at the init holds the lock with it. The oracle must NOT
    // call this exposable, or it would charge the detector with
    // unreachable false negatives.
    let mut b = WorkloadBuilder::new("oracle.lock2");
    let o = b.object("conn");
    let lk = b.lock("mu");
    let child = b.script("child", move |s| {
        s.acquire(lk).use_(o, "child.use", us(5)).release(lk);
    });
    let m = b.script("main", move |s| {
        s.fork(child)
            .acquire(lk)
            .init(o, "main.init", us(5))
            .release(lk)
            .join_children();
    });
    b.main(m);
    let r = explore(&b.build(), &bound(3));
    assert_eq!(r.verdict, OracleVerdict::CleanWithinBound);
}

#[test]
fn fifo_lock_handoff_is_exercised_on_an_exposing_path() {
    // The witness schedule must park the child in the lock's FIFO
    // queue (switch while main holds the lock), hand the lock off at
    // main's release, and then commit main's dispose before the
    // child's queued use: blocked-enqueue, wake-with-pc-advance, and
    // the error all on one path.
    let mut b = WorkloadBuilder::new("oracle.fifo");
    let o = b.object("conn");
    let lk = b.lock("mu");
    let child = b.script("child", move |s| {
        s.acquire(lk).use_(o, "child.use", us(5)).release(lk);
    });
    let m = b.script("main", move |s| {
        s.acquire(lk)
            .fork(child)
            .init(o, "main.init", us(5))
            .release(lk)
            .dispose(o, "main.dispose", us(5))
            .join_children();
    });
    b.main(m);
    let r = explore(&b.build(), &bound(1));
    assert!(
        matches!(
            r.verdict,
            OracleVerdict::Exposable {
                kind: NullRefKind::UseAfterFree,
                ..
            }
        ),
        "verdict {:?}",
        r.verdict
    );
}

#[test]
fn task_queue_frames_round_trip() {
    // A pool worker drains two tasks; one uses an object initialized
    // only by the second task — order in the FIFO queue protects it,
    // so the workload is clean.
    let mut b = WorkloadBuilder::new("oracle.tasks");
    let o = b.object("doc");
    let t_init = b.script("t_init", move |s| {
        s.init(o, "task.init", us(5));
    });
    let t_use = b.script("t_use", move |s| {
        s.use_(o, "task.use", us(5));
    });
    let m = b.script("main", move |s| {
        s.spawn_task(t_init).spawn_task(t_use).run_tasks();
    });
    b.main(m);
    let r = explore(&b.build(), &bound(2));
    assert_eq!(r.verdict, OracleVerdict::CleanWithinBound);
}

#[test]
fn state_cap_truncates() {
    let r = explore(
        &racy_init(),
        &OracleConfig {
            preemption_bound: 1,
            max_states: 1,
            ..OracleConfig::default()
        },
    );
    // Either the witness is found within one state or the cap fires;
    // with the reorderings-first visit order the cap fires.
    assert!(matches!(
        r.verdict,
        OracleVerdict::Truncated | OracleVerdict::Exposable { .. }
    ));
}

/// Many independent per-thread objects: every interleaving of the
/// accesses reaches the same states through different orders, so the
/// space is dense with memo revisits (and, with reduction on, sleep-set
/// prunes).
fn independent_grid(threads: u32) -> waffle_sim::Workload {
    let mut b = WorkloadBuilder::new("oracle.grid");
    let mut scripts = Vec::new();
    for i in 0..threads {
        let o = b.object(&format!("obj{i}"));
        scripts.push(b.script(format!("worker{i}"), move |s| {
            s.init(o, "w.init", us(5)).use_(o, "w.use", us(5));
        }));
    }
    let m = b.script("main", move |s| {
        for &sc in &scripts {
            s.fork(sc);
        }
        s.join_children();
    });
    b.main(m);
    b.build()
}

/// Satellite regression: revisits pruned by the memo (and budget
/// upgrades re-expanded) must not count toward `max_states`. Setting the
/// cap to exactly the frontier size of an unconstrained run must
/// therefore still produce a full (non-truncated) verdict.
#[test]
fn memo_revisits_do_not_inflate_the_state_cap() {
    let w = independent_grid(3);
    let full = explore(&w, &unreduced(&bound(2)));
    assert_eq!(full.verdict, OracleVerdict::CleanWithinBound);
    assert!(
        full.memo_hits > 0 && full.revisits > 0,
        "grid workload should be revisit-heavy: {full:?}"
    );
    let capped = explore(
        &w,
        &OracleConfig {
            preemption_bound: 2,
            max_states: full.states_explored,
            memory: MemoryModel::Sc,
            reduce: false,
        },
    );
    assert_eq!(
        capped.verdict,
        OracleVerdict::CleanWithinBound,
        "cap equal to the true frontier must not truncate (revisits charged?)"
    );
    assert_eq!(capped.states_explored, full.states_explored);
}

/// The reduction must actually reduce: on the independent grid the
/// reduced frontier is strictly smaller and sleep prunes fire, while the
/// verdict matches the naive explorer.
#[test]
fn sleep_sets_prune_independent_interleavings() {
    let w = independent_grid(4);
    let naive = explore(&w, &unreduced(&bound(2)));
    let reduced = explore(&w, &bound(2));
    assert_eq!(naive.verdict, reduced.verdict);
    assert!(reduced.sleep_prunes > 0, "no sleep prunes: {reduced:?}");
    assert!(
        reduced.states_explored < naive.states_explored,
        "reduction did not shrink the frontier: {} vs {}",
        reduced.states_explored,
        naive.states_explored
    );
}

#[test]
fn witness_replays_to_the_same_manifestation() {
    for (w, model, k) in [
        (racy_init(), MemoryModel::Sc, 1),
        (racy_init(), MemoryModel::Tso, 1),
    ] {
        for reduce in [false, true] {
            let cfg = OracleConfig {
                preemption_bound: k,
                memory: model,
                reduce,
                ..OracleConfig::default()
            };
            let r = explore(&w, &cfg);
            let OracleVerdict::Exposable {
                kind,
                obj,
                preemptions,
            } = r.verdict
            else {
                panic!("expected exposable, got {:?}", r.verdict);
            };
            assert!(preemptions <= k, "witness overspent: {preemptions} > {k}");
            assert!(!r.witness.is_empty());
            let replay = replay_schedule(&w, model, &r.witness)
                .expect("witness schedule must replay to a manifestation");
            assert_eq!(replay.kind, kind);
            assert_eq!(replay.obj, obj);
            assert_eq!(replay.preemptions, preemptions);
        }
    }
}

#[test]
fn clean_reports_have_no_witness() {
    let r = explore(&racy_init(), &bound(0));
    assert!(r.witness.is_empty());
    assert!(replay_schedule(&racy_init(), MemoryModel::Sc, &[]).is_none());
}

/// A malformed schedule (switch to a blocked thread, out-of-range drain)
/// replays to `None`, never a panic.
#[test]
fn replay_rejects_malformed_schedules() {
    let w = racy_init();
    assert!(replay_schedule(&w, MemoryModel::Sc, &[ScheduleStep::Switch(99)]).is_none());
    assert!(replay_schedule(
        &w,
        MemoryModel::Tso,
        &[ScheduleStep::Drain { thread: 0, idx: 7 }]
    )
    .is_none());
}

/// Weak-model spot check in-module (the exhaustive reduced-vs-unreduced
/// sweep lives in `tests/oracle_equivalence.rs`): a TSO store left in
/// the buffer past an event signal is the canonical reordering bug, and
/// both explorers must agree it is exposable under TSO and clean under
/// SC.
#[test]
fn tso_buffered_publish_agrees_across_reduction() {
    let mut b = WorkloadBuilder::new("oracle.tso_pub");
    let o = b.object("data");
    let ev = b.event("ready");
    let reader = b.script("reader", move |s| {
        s.wait(ev).use_(o, "reader.use", us(5));
    });
    let m = b.script("main", move |s| {
        s.fork(reader)
            .init(o, "main.init", us(5))
            .signal(ev)
            .join_children();
    });
    b.main(m);
    let w = b.build();
    for model in [MemoryModel::Sc, MemoryModel::Tso] {
        let cfg = OracleConfig {
            preemption_bound: 2,
            memory: model,
            ..OracleConfig::default()
        };
        let reduced = explore(&w, &cfg);
        let naive = explore(&w, &unreduced(&cfg));
        assert_eq!(reduced.verdict, naive.verdict, "model {model:?}");
        match model {
            MemoryModel::Sc => assert_eq!(reduced.verdict, OracleVerdict::CleanWithinBound),
            _ => assert!(reduced.exposable(), "verdict {:?}", reduced.verdict),
        }
    }
}

/// A wait with no matching signal deadlocks every schedule: the verdict
/// is clean (nothing manifests), but the deadlock counter must expose
/// the vacuity — repair certification refuses such "clean" reports.
#[test]
fn unmatched_wait_counts_as_a_deadlock_not_a_clean_pass() {
    let mut b = WorkloadBuilder::new("oracle.deadlock");
    let o = b.object("conn");
    let ev = b.event("never");
    let child = b.script("child", move |s| {
        s.wait(ev).use_(o, "child.use", us(5));
    });
    let m = b.script("main", move |s| {
        s.init(o, "main.init", us(5)).fork(child).join_children();
    });
    b.main(m);
    let w = b.build();
    for reduce in [true, false] {
        let cfg = OracleConfig {
            reduce,
            ..bound(2)
        };
        let r = explore(&w, &cfg);
        assert_eq!(r.verdict, OracleVerdict::CleanWithinBound, "reduce {reduce}");
        assert!(r.deadlocks > 0, "deadlock not counted (reduce {reduce})");
    }
}

/// Deadlock-free workloads report zero deadlocks under both explorers.
#[test]
fn clean_and_exposable_workloads_report_zero_deadlocks() {
    for reduce in [true, false] {
        let cfg = OracleConfig {
            reduce,
            ..bound(2)
        };
        let r = explore(&racy_init(), &cfg);
        assert!(r.exposable());
        assert_eq!(r.deadlocks, 0, "reduce {reduce}");
    }
}
