//! Ground-truth workload fuzzing for differential detector testing.
//!
//! Tier-1 pins Waffle's headline claims — zero false positives, and
//! detection of every exposable MemOrder bug in a handful of runs — only
//! on the 18 hand-curated bug workloads. This crate machine-checks those
//! claims on *unseen* interleaving shapes with three layers:
//!
//! 1. [`gen`] — a seeded generator emitting random multi-threaded
//!    workloads with planted, labelled bugs and deliberately bug-free
//!    controls; the ground truth travels with the workload.
//! 2. [`oracle`] — a bounded exhaustive schedule explorer that decides,
//!    independently of delay injection, whether any schedule within a
//!    preemption budget raises a NULL-reference exception.
//! 3. [`harness`] — the differential loop: run the detectors on each
//!    generated case, classify disagreements against the oracle, and
//!    [`shrink`] failing workloads to minimal corpus entries replayed by
//!    tier-1 forever.

pub mod gen;
pub mod harness;
pub mod oracle;
pub mod repair;
pub mod shrink;

pub use gen::{generate_case, generate_case_for_model, FuzzCase, GroundTruth};
pub use harness::{
    classify_case, derive_plan, run_case, run_fuzz, CaseReport, CorpusCase, Disagreement,
    DisagreementKind, FuzzConfig, FuzzReport,
};
pub use oracle::{
    explore, replay_schedule, OracleConfig, OracleReport, OracleVerdict, ReplayOutcome,
    ScheduleStep,
};
pub use repair::{certify_unexposable, synthesize_with_oracle, RepairCorpusCase};
pub use shrink::shrink_case;
