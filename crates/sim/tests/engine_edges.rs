//! Edge-case integration tests for the simulation engine.

use waffle_mem::AccessKind;
use waffle_sim::time::{ms, us};
use waffle_sim::{
    AccessCtx, Monitor, NullMonitor, PreAction, SimConfig, SimTime, Simulator, Workload,
    WorkloadBuilder,
};

#[test]
fn join_script_waits_only_for_prior_forks() {
    // Main joins the workers forked so far, then forks one more: the late
    // worker is not awaited by the earlier join.
    let mut b = WorkloadBuilder::new("edge.joinscript");
    let o = b.object("o");
    let worker = b.script("worker", move |s| {
        s.compute(ms(1)).use_(o, "W.use:1", us(10));
    });
    let main = b.script("main", move |s| {
        s.init(o, "M.init:1", us(10))
            .fork(worker)
            .fork(worker)
            .join_script(worker)
            .dispose(o, "M.dispose:9", us(10))
            .compute(ms(5))
            .fork(worker) // late worker would fault on the disposed object
            .join_children();
    });
    b.main(main);
    let w = b.build();
    let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut NullMonitor);
    // The late worker uses a disposed object — a genuine (intended here)
    // manifestation proving the join only covered the first two.
    assert!(r.manifested());
    assert_eq!(r.heap.uses, 2);
}

#[test]
fn deadline_cuts_through_a_pending_delay() {
    struct BigDelay;
    impl Monitor for BigDelay {
        fn on_access_pre(&mut self, _ctx: &AccessCtx<'_>) -> PreAction {
            PreAction::Delay(ms(500))
        }
    }
    let mut b = WorkloadBuilder::new("edge.deadline");
    let o = b.object("o");
    let main = b.script("main", move |s| {
        s.init(o, "M.init:1", us(10)).use_(o, "M.use:2", us(10));
    });
    b.main(main);
    let w = b.build();
    let cfg = SimConfig {
        deadline: Some(ms(100)),
        ..SimConfig::with_seed(0).deterministic()
    };
    let r = Simulator::run(&w, cfg, &mut BigDelay);
    assert!(r.timed_out);
    assert_eq!(r.end_time, ms(100));
    // The first delayed access never executed.
    assert_eq!(r.instrumented_ops, 0);
}

#[test]
fn throw_inside_a_task_unwinds_the_worker() {
    let mut b = WorkloadBuilder::new("edge.taskthrow");
    let o = b.object("o");
    let lk = b.lock("mu");
    let throwing = b.script("throwing-task", move |s| {
        s.acquire(lk).throw("Task.bail:7");
    });
    let healthy = b.script("healthy-task", move |s| {
        s.init(o, "Task.init:1", us(10));
    });
    let worker = b.script("worker", |s| {
        s.run_tasks();
    });
    let main = b.script("main", move |s| {
        s.spawn_task(throwing)
            .spawn_task(healthy)
            .fork(worker)
            .fork(worker)
            .join_children()
            .acquire(lk) // must not deadlock: the thrower released it
            .release(lk);
    });
    b.main(main);
    let w = b.build();
    let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut NullMonitor);
    assert!(!r.manifested());
    assert_eq!(r.app_exceptions.len(), 1);
    assert_eq!(r.stranded_threads, 0);
    // The healthy task still ran (on the other worker).
    assert_eq!(r.heap.inits, 1);
}

#[test]
fn noise_respects_its_configured_bound() {
    let mut b = WorkloadBuilder::new("edge.noise");
    let main = b.script("main", |s| {
        s.compute(ms(100));
    });
    b.main(main);
    let w = b.build();
    for seed in 0..50 {
        let cfg = SimConfig {
            seed,
            timing_noise_pct: 10,
            ..SimConfig::default()
        };
        let r = Simulator::run(&w, cfg, &mut NullMonitor);
        assert!(
            r.end_time >= ms(90) && r.end_time <= ms(110),
            "seed {seed}: {} outside ±10%",
            r.end_time
        );
    }
}

#[test]
fn pads_are_noise_exempt() {
    let mut b = WorkloadBuilder::new("edge.pad");
    let main = b.script("main", |s| {
        s.pad(ms(100));
    });
    b.main(main);
    let w = b.build();
    for seed in 0..20 {
        let cfg = SimConfig {
            seed,
            timing_noise_pct: 30,
            ..SimConfig::default()
        };
        let r = Simulator::run(&w, cfg, &mut NullMonitor);
        assert_eq!(r.end_time, ms(100), "seed {seed}");
    }
}

#[test]
fn unsafe_call_on_disposed_object_is_a_mem_order_bug_too() {
    // The TSV instrumentation class still dereferences the object: calling
    // into a disposed dictionary raises the NULL-reference exception.
    let mut b = WorkloadBuilder::new("edge.tsvnull");
    let o = b.object("dict");
    let main = b.script("main", move |s| {
        s.init(o, "M.init:1", us(10))
            .dispose(o, "M.dispose:2", us(10))
            .unsafe_call(o, "M.Add:3", us(10));
    });
    b.main(main);
    let w = b.build();
    let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut NullMonitor);
    assert!(r.manifested());
    assert_eq!(r.exceptions[0].error.access, AccessKind::UnsafeApiCall);
}

#[test]
fn thread_contexts_capture_the_moment_of_manifestation() {
    let mut b = WorkloadBuilder::new("edge.ctx");
    let o = b.object("o");
    let started = b.event("s");
    let worker = b.script("worker", move |s| {
        s.wait(started).pad(ms(2)).use_(o, "W.use:1", us(10));
    });
    let main = b.script("main", move |s| {
        s.init(o, "M.init:1", us(10))
            .fork(worker)
            .signal(started)
            .dispose(o, "M.dispose:9", us(10))
            .join_children();
    });
    b.main(main);
    let w = b.build();
    // Dispose precedes the worker's use here (no race needed): the use
    // faults and the contexts are snapshotted.
    let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut NullMonitor);
    assert!(r.manifested());
    assert_eq!(r.thread_contexts.len(), 2);
    let faulting: Vec<_> = r.thread_contexts.iter().filter(|c| c.faulting).collect();
    assert_eq!(faulting.len(), 1);
    assert_eq!(faulting[0].script, "worker");
    // The faulting access is the last entry of the faulting context.
    let last = faulting[0].recent.last().unwrap();
    assert_eq!(last.kind, AccessKind::Use);
    // Contexts are only captured once (the first manifestation).
    let _ = SimTime::ZERO;
}

#[test]
fn site_dyn_counts_match_executed_accesses() {
    let mut b = WorkloadBuilder::new("edge.counts");
    let o = b.object("o");
    let main = b.script("main", move |s| {
        s.init(o, "a", us(1));
        for _ in 0..5 {
            s.use_(o, "b", us(1));
        }
    });
    b.main(main);
    let w = b.build();
    let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut NullMonitor);
    let b_site = w.sites.lookup("b").unwrap();
    assert_eq!(r.site_dyn_counts[&b_site], 5);
    assert_eq!(r.instrumented_ops, 6);
}

fn workload_with_two_pools() -> Workload {
    let mut b = WorkloadBuilder::new("edge.twopools");
    let objs = b.objects("o", 4);
    let tasks: Vec<_> = (0..4)
        .map(|i| {
            let o = objs[i as usize];
            b.script(format!("t{i}"), move |s| {
                s.init(o, "T.init", us(10)).use_(o, "T.use", us(10));
            })
        })
        .collect();
    let worker = b.script("w", |s| {
        s.run_tasks();
    });
    let main = b.script("main", move |s| {
        for t in &tasks {
            s.spawn_task(*t);
        }
        s.fork(worker).join_children();
        for t in &tasks {
            s.spawn_task(*t);
        }
        s.fork(worker).join_children();
    });
    b.main(main);
    b.build()
}

#[test]
fn task_queue_supports_multiple_drain_phases() {
    let w = workload_with_two_pools();
    let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut NullMonitor);
    assert!(!r.manifested());
    assert_eq!(r.tasks_spawned, 8);
    assert_eq!(r.heap.inits, 8);
}
