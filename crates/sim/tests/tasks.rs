//! Integration tests for task-pool execution and async-local hooks.

use waffle_mem::AccessKind;
use waffle_sim::time::{ms, us};
use waffle_sim::{
    AccessRecord, Monitor, NullMonitor, SimConfig, SimTime, Simulator, TaskId, TaskParent,
    ThreadId, Workload, WorkloadBuilder,
};

/// Monitor that records the task lifecycle and per-access task contexts.
#[derive(Default)]
struct TaskTap {
    spawns: Vec<(TaskParent, TaskId)>,
    starts: Vec<(TaskId, ThreadId)>,
    ends: Vec<(TaskId, ThreadId)>,
    accesses: Vec<AccessRecord>,
}

impl Monitor for TaskTap {
    fn on_task_spawn(&mut self, parent: TaskParent, task: TaskId, _time: SimTime) {
        self.spawns.push((parent, task));
    }
    fn on_task_start(&mut self, task: TaskId, worker: ThreadId, _time: SimTime) {
        self.starts.push((task, worker));
    }
    fn on_task_end(&mut self, task: TaskId, worker: ThreadId, _time: SimTime) {
        self.ends.push((task, worker));
    }
    fn on_access_post(&mut self, rec: &AccessRecord) {
        self.accesses.push(rec.clone());
    }
}

/// Main spawns `n_tasks` tasks, each initializing and using its own
/// object, then forks `n_workers` pool workers to drain the queue.
fn pool_workload(n_tasks: u32, n_workers: u32) -> Workload {
    let mut b = WorkloadBuilder::new("tasks.pool");
    let objs = b.objects("item", n_tasks);
    let task_scripts: Vec<_> = (0..n_tasks)
        .map(|i| {
            let o = objs[i as usize];
            b.script(format!("task{i}"), move |s| {
                s.init(o, "Task.setup", us(20))
                    .compute(ms(1))
                    .use_(o, "Task.work", us(30));
            })
        })
        .collect();
    let worker = b.script("pool-worker", |s| {
        s.run_tasks();
    });
    let main = b.script("main", move |s| {
        for t in &task_scripts {
            s.spawn_task(*t);
        }
        s.fork_n(worker, n_workers).join_children();
    });
    b.main(main);
    b.build()
}

#[test]
fn all_tasks_run_exactly_once() {
    let w = pool_workload(6, 2);
    let mut tap = TaskTap::default();
    let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut tap);
    assert!(!r.manifested());
    assert_eq!(r.tasks_spawned, 6);
    assert_eq!(tap.spawns.len(), 6);
    assert_eq!(tap.starts.len(), 6);
    assert_eq!(tap.ends.len(), 6);
    // Each task started exactly once, in spawn order overall.
    let mut started: Vec<u32> = tap.starts.iter().map(|(t, _)| t.0).collect();
    started.sort_unstable();
    assert_eq!(started, (0..6).collect::<Vec<_>>());
    // Every object went through its full lifecycle.
    assert_eq!(r.heap.inits, 6);
    assert_eq!(r.heap.uses, 6);
}

#[test]
fn tasks_are_shared_across_pool_workers() {
    let w = pool_workload(6, 2);
    let mut tap = TaskTap::default();
    let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut tap);
    let workers: std::collections::HashSet<ThreadId> =
        tap.starts.iter().map(|&(_, w)| w).collect();
    assert_eq!(workers.len(), 2, "both pool workers must pull tasks");
}

#[test]
fn accesses_carry_their_task_context() {
    let w = pool_workload(3, 1);
    let mut tap = TaskTap::default();
    let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut tap);
    // Every instrumented access in this workload runs inside some task.
    assert!(!tap.accesses.is_empty());
    for a in &tap.accesses {
        assert!(a.task.is_some(), "access at {} lacks task context", a.site.0);
    }
    // The task context matches the object index (task i owns object i).
    for a in &tap.accesses {
        assert_eq!(a.task.unwrap().0, a.obj.0);
    }
}

#[test]
fn nested_spawns_record_task_parents() {
    let mut b = WorkloadBuilder::new("tasks.nested");
    let o = b.object("o");
    let inner = b.script("inner", move |s| {
        s.init(o, "Inner.init", us(10));
    });
    let outer = b.script("outer", move |s| {
        s.compute(us(50)).spawn_task(inner);
    });
    let worker = b.script("worker", |s| {
        // Drain twice: the outer task enqueues the inner one mid-drain.
        s.run_tasks().compute(us(10)).run_tasks();
    });
    let main = b.script("main", move |s| {
        s.spawn_task(outer).fork(worker).join_children();
    });
    b.main(main);
    let w = b.build();
    let mut tap = TaskTap::default();
    let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut tap);
    assert_eq!(r.tasks_spawned, 2);
    assert_eq!(tap.spawns[0].0, TaskParent::Thread(ThreadId(0)));
    assert_eq!(tap.spawns[1].0, TaskParent::Task(TaskId(0)));
    assert_eq!(r.heap.inits, 1);
}

#[test]
fn worker_survives_a_faulting_task() {
    // A task that hits a NULL reference kills the *worker thread* (the
    // exception unwinds the whole stack), matching thread semantics; other
    // workers keep draining.
    let mut b = WorkloadBuilder::new("tasks.fault");
    let good = b.object("good");
    let bad = b.object("bad");
    let faulty = b.script("faulty", move |s| {
        s.use_(bad, "Faulty.use", us(10));
    });
    let fine = b.script("fine", move |s| {
        s.init(good, "Fine.init", us(10)).use_(good, "Fine.use", us(10));
    });
    let worker = b.script("worker", |s| {
        s.run_tasks();
    });
    let main = b.script("main", move |s| {
        s.spawn_task(faulty)
            .spawn_task(fine)
            .fork(worker)
            .fork(worker)
            .join_children();
    });
    b.main(main);
    let w = b.build();
    let r = Simulator::run(
        &w,
        SimConfig::with_seed(0).deterministic(),
        &mut NullMonitor,
    );
    assert!(r.manifested());
    assert_eq!(r.exceptions[0].error.access, AccessKind::Use);
    // The second worker still ran the healthy task.
    assert_eq!(r.heap.uses, 1);
    assert_eq!(r.stranded_threads, 0);
}

#[test]
fn run_tasks_on_empty_queue_is_a_no_op() {
    let mut b = WorkloadBuilder::new("tasks.empty");
    let main = b.script("main", |s| {
        s.run_tasks().compute(us(5));
    });
    b.main(main);
    let w = b.build();
    let r = Simulator::run(
        &w,
        SimConfig::with_seed(0).deterministic(),
        &mut NullMonitor,
    );
    assert_eq!(r.tasks_spawned, 0);
    assert_eq!(r.end_time, us(5));
}
