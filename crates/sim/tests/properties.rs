//! Property-based tests for simulator invariants.

use proptest::prelude::*;
use waffle_mem::AccessKind;
use waffle_sim::{
    AccessRecord, Monitor, NullMonitor, PreAction, SimConfig, SimTime, Simulator, Workload,
    WorkloadBuilder,
};

/// Records every access so properties can inspect per-thread order.
#[derive(Default)]
struct Recorder {
    accesses: Vec<AccessRecord>,
}

impl Monitor for Recorder {
    fn on_access_post(&mut self, rec: &AccessRecord) {
        self.accesses.push(rec.clone());
    }
}

/// Monitor that injects a fixed delay before every `Init`.
struct DelayInits(SimTime);

impl Monitor for DelayInits {
    fn on_access_pre(&mut self, ctx: &waffle_sim::AccessCtx<'_>) -> PreAction {
        if ctx.kind == AccessKind::Init {
            PreAction::Delay(self.0)
        } else {
            PreAction::Proceed
        }
    }
}

/// Builds a properly synchronized workload: main inits `n_objs` objects,
/// forks `n_workers` workers that use them (each worker waits on an event
/// signalled after all inits), joins, then disposes.
fn safe_workload(n_objs: u32, n_workers: u32, work_us: u64) -> Workload {
    let mut b = WorkloadBuilder::new("prop.safe");
    let objs = b.objects("o", n_objs);
    let ready = b.event("ready");
    let objs2 = objs.clone();
    let worker = b.script("worker", move |s| {
        s.wait(ready);
        for (i, o) in objs2.iter().enumerate() {
            s.compute(SimTime::from_us(work_us))
                .use_(*o, &format!("W.use:{i}"), SimTime::from_us(5));
        }
    });
    let objs3 = objs.clone();
    let main = b.script("main", move |s| {
        for (i, o) in objs3.iter().enumerate() {
            s.init(*o, &format!("M.init:{i}"), SimTime::from_us(10));
        }
        s.fork_n(worker, n_workers).signal(ready).join_children();
        for (i, o) in objs3.iter().enumerate() {
            s.dispose(*o, &format!("M.dispose:{i}"), SimTime::from_us(5));
        }
    });
    b.main(main);
    b.build()
}

/// A racy use-before-init workload: the worker uses the object after
/// `gap_us`; main initializes it right away. Safe unless the init is
/// delayed past the use.
fn racy_workload(gap_us: u64) -> Workload {
    let mut b = WorkloadBuilder::new("prop.racy");
    let o = b.object("o");
    let worker = b.script("worker", move |s| {
        s.compute(SimTime::from_us(gap_us))
            .use_(o, "W.use:1", SimTime::from_us(5));
    });
    let main = b.script("main", move |s| {
        s.fork(worker)
            .init(o, "M.init:1", SimTime::from_us(5))
            .join_children();
    });
    b.main(main);
    b.build()
}

proptest! {
    /// Properly synchronized workloads never manifest, for any seed/noise.
    #[test]
    fn synchronized_workloads_never_manifest(
        n_objs in 1u32..6,
        n_workers in 1u32..5,
        work in 1u64..200,
        seed in 0u64..1000,
        noise in 0u32..20,
    ) {
        let w = safe_workload(n_objs, n_workers, work);
        let cfg = SimConfig { seed, timing_noise_pct: noise, ..SimConfig::default() };
        let r = Simulator::run(&w, cfg, &mut NullMonitor);
        prop_assert!(!r.manifested(), "exceptions: {:?}", r.exceptions);
        prop_assert_eq!(r.stranded_threads, 0);
        prop_assert_eq!(r.heap.null_ref_errors, 0);
    }

    /// Per-thread access timestamps are monotonically non-decreasing, and
    /// dynamic indices per site count up from zero.
    #[test]
    fn per_thread_time_is_monotone(
        n_objs in 1u32..4,
        n_workers in 1u32..4,
        seed in 0u64..500,
    ) {
        let w = safe_workload(n_objs, n_workers, 20);
        let mut rec = Recorder::default();
        let cfg = SimConfig { seed, timing_noise_pct: 10, ..SimConfig::default() };
        let _ = Simulator::run(&w, cfg, &mut rec);
        use std::collections::HashMap;
        let mut last_time = HashMap::new();
        let mut dyn_count: HashMap<_, u64> = HashMap::new();
        for a in &rec.accesses {
            let prev = last_time.insert(a.thread, a.time).unwrap_or(SimTime::ZERO);
            prop_assert!(a.time >= prev, "thread time went backwards");
            let c = dyn_count.entry(a.site).or_insert(0);
            prop_assert_eq!(a.dyn_index, *c, "dyn index out of order");
            *c += 1;
        }
    }

    /// Identical configurations reproduce identical results bit-for-bit.
    #[test]
    fn runs_are_reproducible(seed in 0u64..1000, noise in 0u32..25) {
        let w = safe_workload(3, 2, 50);
        let cfg = SimConfig { seed, timing_noise_pct: noise, ..SimConfig::default() };
        let r1 = Simulator::run(&w, cfg.clone(), &mut NullMonitor);
        let r2 = Simulator::run(&w, cfg, &mut NullMonitor);
        prop_assert_eq!(r1.end_time, r2.end_time);
        prop_assert_eq!(r1.ops_executed, r2.ops_executed);
        prop_assert_eq!(r1.blocked.len(), r2.blocked.len());
    }

    /// The Fig. 2 order-violation condition: a delay longer than the gap
    /// between the threads' operations flips the order and manifests the
    /// bug; a much shorter delay does not. (Noise off for sharp bounds.)
    #[test]
    fn delay_threshold_controls_manifestation(gap in 20u64..5_000) {
        let w = racy_workload(gap);
        let cfg = SimConfig::with_seed(0).deterministic();
        // No delay: init (at ~20µs after fork cost) precedes the use
        // (fork_cost + gap): clean as long as gap ≥ init completion.
        let r = Simulator::run(&w, cfg.clone(), &mut NullMonitor);
        prop_assert!(!r.manifested());
        // Delay > gap: the init lands after the use → manifestation.
        let mut long = DelayInits(SimTime::from_us(gap + 100));
        let r = Simulator::run(&w, cfg.clone(), &mut long);
        prop_assert!(r.manifested());
        // Delay ≪ gap: still clean.
        if gap > 40 {
            let mut short = DelayInits(SimTime::from_us(gap / 4));
            let r = Simulator::run(&w, cfg, &mut short);
            prop_assert!(!r.manifested());
        }
    }

    /// End-to-end time dominates every single thread's total service time
    /// (work is never lost), and equals it for single-threaded workloads.
    #[test]
    fn end_time_dominates_serial_work(durs in proptest::collection::vec(1u64..500, 1..20)) {
        let mut b = WorkloadBuilder::new("serial");
        let total: u64 = durs.iter().sum();
        let main = b.script("main", |s| {
            for d in &durs {
                s.compute(SimTime::from_us(*d));
            }
        });
        b.main(main);
        let w = b.build();
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut NullMonitor);
        prop_assert_eq!(r.end_time, SimTime::from_us(total));
    }

    /// Mutual exclusion: N contending 1ms critical sections serialize, so
    /// the run takes at least N ms.
    #[test]
    fn lock_critical_sections_serialize(n in 2u32..6, seed in 0u64..200) {
        let mut b = WorkloadBuilder::new("mutex");
        let lk = b.lock("mu");
        let worker = b.script("worker", |s| {
            s.acquire(lk).compute(SimTime::from_ms(1)).release(lk);
        });
        let main = b.script("main", |s| {
            s.fork_n(worker, n).join_children();
        });
        b.main(main);
        let w = b.build();
        let cfg = SimConfig { seed, timing_noise_pct: 0, ..SimConfig::default() };
        let r = Simulator::run(&w, cfg, &mut NullMonitor);
        prop_assert!(r.end_time >= SimTime::from_ms(n as u64));
        prop_assert_eq!(r.stranded_threads, 0);
    }
}
