//! Robustness: degenerate workloads must not wedge the engine.

use waffle_sim::time::{ms, us};
use waffle_sim::{NullMonitor, SimConfig, SimTime, Simulator, WorkloadBuilder};

#[test]
fn empty_main_script_terminates_immediately() {
    let mut b = WorkloadBuilder::new("rob.empty");
    let m = b.script("main", |_s| {});
    b.main(m);
    let r = Simulator::run(&b.build(), SimConfig::with_seed(0), &mut NullMonitor);
    assert_eq!(r.end_time, SimTime::ZERO);
    assert_eq!(r.ops_executed, 0);
    assert_eq!(r.threads_spawned, 1);
}

#[test]
fn exit_op_skips_the_rest_of_the_script() {
    let mut b = WorkloadBuilder::new("rob.exit");
    let o = b.object("o");
    let m = b.script("main", move |s| {
        s.init(o, "i", us(1)).exit().use_(o, "never", us(1));
    });
    b.main(m);
    let r = Simulator::run(&b.build(), SimConfig::with_seed(0), &mut NullMonitor);
    assert_eq!(r.heap.inits, 1);
    assert_eq!(r.heap.uses, 0);
}

#[test]
fn double_signal_is_idempotent() {
    let mut b = WorkloadBuilder::new("rob.signal2");
    let ev = b.event("e");
    let w = b.script("w", move |s| {
        s.wait(ev).compute(us(1)).wait(ev).compute(us(1));
    });
    let m = b.script("main", move |s| {
        s.signal(ev).signal(ev).fork(w).join_children();
    });
    b.main(m);
    let r = Simulator::run(&b.build(), SimConfig::with_seed(0), &mut NullMonitor);
    assert_eq!(r.stranded_threads, 0);
}

#[test]
fn join_script_of_self_does_not_deadlock() {
    let mut b = WorkloadBuilder::new("rob.selfjoin");
    let m = b.declare_script("main");
    b.define_script(m, |s| {
        s.compute(us(1)).join_script(m);
    });
    b.main(m);
    let r = Simulator::run(&b.build(), SimConfig::with_seed(0), &mut NullMonitor);
    assert_eq!(r.stranded_threads, 0);
}

#[test]
fn release_of_unheld_lock_is_ignored() {
    let mut b = WorkloadBuilder::new("rob.release");
    let lk = b.lock("mu");
    let m = b.script("main", move |s| {
        s.release(lk).acquire(lk).release(lk).compute(us(1));
    });
    b.main(m);
    let w = b.build();
    // Default noise on, across many seeds: the engine's noise floor keeps
    // a 1µs compute at exactly 1µs (3% of 1µs truncates to zero in either
    // direction), so the exact end-time check holds for every seed.
    for seed in 0..32 {
        let r = Simulator::run(&w, SimConfig::with_seed(seed), &mut NullMonitor);
        assert_eq!(r.stranded_threads, 0, "seed {seed}");
        assert_eq!(r.end_time, us(1), "seed {seed}");
    }
}

#[test]
fn timing_noise_never_zeroes_a_nonzero_compute() {
    // The noise floor: at any noise level, a nonzero service time stays
    // nonzero, so noisy runs cannot collapse distinct schedule points onto
    // one timestamp.
    for pct in [1u32, 3, 10, 50] {
        for seed in 0..64 {
            let mut b = WorkloadBuilder::new("rob.floor");
            let m = b.script("main", |s| {
                s.compute(us(1));
            });
            b.main(m);
            let cfg = SimConfig {
                timing_noise_pct: pct,
                ..SimConfig::with_seed(seed)
            };
            let r = Simulator::run(&b.build(), cfg, &mut NullMonitor);
            assert!(
                r.end_time >= us(1),
                "pct {pct} seed {seed}: 1µs compute floored to {}",
                r.end_time
            );
        }
    }
}

#[test]
fn enormous_delays_saturate_instead_of_wrapping() {
    struct HugeDelay;
    impl waffle_sim::Monitor for HugeDelay {
        fn on_access_pre(&mut self, _c: &waffle_sim::AccessCtx<'_>) -> waffle_sim::PreAction {
            waffle_sim::PreAction::Delay(SimTime::MAX)
        }
    }
    let mut b = WorkloadBuilder::new("rob.huge");
    let o = b.object("o");
    let m = b.script("main", move |s| {
        s.init(o, "i", us(1));
    });
    b.main(m);
    let cfg = SimConfig {
        deadline: Some(ms(10)),
        ..SimConfig::with_seed(0)
    };
    let r = Simulator::run(&b.build(), cfg, &mut HugeDelay);
    assert!(r.timed_out);
    assert_eq!(r.end_time, ms(10));
}

#[test]
fn workload_without_sync_objects_runs() {
    let mut b = WorkloadBuilder::new("rob.plain");
    let m = b.script("main", |s| {
        s.compute(ms(1));
    });
    b.main(m);
    let w = b.build();
    assert_eq!(w.n_objects, 0);
    assert_eq!(w.n_locks, 0);
    let r = Simulator::run(&w, SimConfig::with_seed(0), &mut NullMonitor);
    assert!(!r.manifested());
}
