//! Inheritable thread-local storage.
//!
//! Waffle avoids instrumenting every thread-fork mechanism by leaning on a
//! language feature: a TLS region that is automatically copied from parent
//! to child at thread creation (C#'s `LogicalCallContext`, Java's
//! `InheritableThreadLocal`). The runtime stores its vector-clock object in
//! that region and lets the propagation drive fork-edge tracking (§4.1).
//!
//! [`InheritableTls`] reproduces that contract for simulated threads: a
//! typed slot per thread, with [`inherit`](InheritableTls::inherit) invoked
//! by the runtime at each fork to derive the child's value *from the
//! parent's slot* — the user hook plays the role of the TLS object's
//! "constructor" that runs when the region lands in the child.

use std::collections::HashMap;

use crate::ids::ThreadId;

/// A per-thread storage slot of `T`, propagated parent → child at fork.
#[derive(Debug, Clone, Default)]
pub struct InheritableTls<T> {
    slots: HashMap<ThreadId, T>,
}

impl<T> InheritableTls<T> {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self {
            slots: HashMap::new(),
        }
    }

    /// Installs the root thread's value (no parent to inherit from).
    pub fn init_root(&mut self, root: ThreadId, value: T) {
        self.slots.insert(root, value);
    }

    /// Runs the fork protocol: derives the child's value from the parent's
    /// slot via `derive` (which may also mutate the parent's value, exactly
    /// like Waffle's vector-clock constructor increments the parent's
    /// counter through the shared reference).
    ///
    /// Threads without a slot (never initialized) propagate nothing.
    pub fn inherit(
        &mut self,
        parent: ThreadId,
        child: ThreadId,
        derive: impl FnOnce(&mut T) -> T,
    ) {
        if let Some(pv) = self.slots.get_mut(&parent) {
            let cv = derive(pv);
            self.slots.insert(child, cv);
        }
    }

    /// Runs a join-style protocol: lets `merge` read thread `from`'s slot
    /// while mutating thread `into`'s, without cloning either value. A
    /// no-op when either slot is missing or the two ids are equal.
    pub fn merge_pair(&mut self, into: ThreadId, from: ThreadId, merge: impl FnOnce(&mut T, &T)) {
        if into == from {
            return;
        }
        // Lift `from`'s value out for the duration of the merge (a shallow
        // move) so `into` can be borrowed mutably at the same time.
        let Some(fv) = self.slots.remove(&from) else {
            return;
        };
        if let Some(iv) = self.slots.get_mut(&into) {
            merge(iv, &fv);
        }
        self.slots.insert(from, fv);
    }

    /// Reads a thread's slot.
    pub fn get(&self, tid: ThreadId) -> Option<&T> {
        self.slots.get(&tid)
    }

    /// Mutably reads a thread's slot.
    pub fn get_mut(&mut self, tid: ThreadId) -> Option<&mut T> {
        self.slots.get_mut(&tid)
    }

    /// Drops a finished thread's slot (TLS teardown).
    pub fn remove(&mut self, tid: ThreadId) -> Option<T> {
        self.slots.remove(&tid)
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slots are live.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inherit_derives_child_from_parent() {
        let mut tls: InheritableTls<Vec<u32>> = InheritableTls::new();
        tls.init_root(ThreadId(0), vec![0]);
        tls.inherit(ThreadId(0), ThreadId(1), |p| {
            let mut c = p.clone();
            c.push(1);
            c
        });
        assert_eq!(tls.get(ThreadId(1)).unwrap(), &vec![0, 1]);
    }

    #[test]
    fn derive_may_mutate_parent_slot() {
        // Models the vector-clock constructor bumping the parent's counter.
        let mut tls: InheritableTls<u64> = InheritableTls::new();
        tls.init_root(ThreadId(0), 1);
        tls.inherit(ThreadId(0), ThreadId(1), |p| {
            *p += 1;
            100
        });
        assert_eq!(*tls.get(ThreadId(0)).unwrap(), 2);
        assert_eq!(*tls.get(ThreadId(1)).unwrap(), 100);
    }

    #[test]
    fn inherit_from_uninitialized_parent_is_a_no_op() {
        let mut tls: InheritableTls<u64> = InheritableTls::new();
        tls.inherit(ThreadId(5), ThreadId(6), |p| *p);
        assert!(tls.get(ThreadId(6)).is_none());
        assert!(tls.is_empty());
    }

    #[test]
    fn merge_pair_borrows_without_cloning() {
        let mut tls: InheritableTls<Vec<u32>> = InheritableTls::new();
        tls.init_root(ThreadId(0), vec![1]);
        tls.init_root(ThreadId(1), vec![2, 3]);
        tls.merge_pair(ThreadId(0), ThreadId(1), |a, b| a.extend_from_slice(b));
        assert_eq!(tls.get(ThreadId(0)).unwrap(), &vec![1, 2, 3]);
        // The source slot survives the merge.
        assert_eq!(tls.get(ThreadId(1)).unwrap(), &vec![2, 3]);
        // Missing sources and self-merges are no-ops.
        tls.merge_pair(ThreadId(0), ThreadId(9), |a, _| a.clear());
        tls.merge_pair(ThreadId(0), ThreadId(0), |a, _| a.clear());
        assert_eq!(tls.get(ThreadId(0)).unwrap(), &vec![1, 2, 3]);
    }

    #[test]
    fn remove_tears_down_slot() {
        let mut tls: InheritableTls<u64> = InheritableTls::new();
        tls.init_root(ThreadId(0), 7);
        assert_eq!(tls.remove(ThreadId(0)), Some(7));
        assert!(tls.get(ThreadId(0)).is_none());
    }
}
