//! Inheritable thread-local storage.
//!
//! Waffle avoids instrumenting every thread-fork mechanism by leaning on a
//! language feature: a TLS region that is automatically copied from parent
//! to child at thread creation (C#'s `LogicalCallContext`, Java's
//! `InheritableThreadLocal`). The runtime stores its vector-clock object in
//! that region and lets the propagation drive fork-edge tracking (§4.1).
//!
//! [`InheritableTls`] reproduces that contract for simulated threads: a
//! typed slot per thread, with [`inherit`](InheritableTls::inherit) invoked
//! by the runtime at each fork to derive the child's value *from the
//! parent's slot* — the user hook plays the role of the TLS object's
//! "constructor" that runs when the region lands in the child.

use std::collections::HashMap;

use crate::ids::ThreadId;

/// A per-thread storage slot of `T`, propagated parent → child at fork.
#[derive(Debug, Clone, Default)]
pub struct InheritableTls<T> {
    slots: HashMap<ThreadId, T>,
}

impl<T> InheritableTls<T> {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self {
            slots: HashMap::new(),
        }
    }

    /// Installs the root thread's value (no parent to inherit from).
    pub fn init_root(&mut self, root: ThreadId, value: T) {
        self.slots.insert(root, value);
    }

    /// Runs the fork protocol: derives the child's value from the parent's
    /// slot via `derive` (which may also mutate the parent's value, exactly
    /// like Waffle's vector-clock constructor increments the parent's
    /// counter through the shared reference).
    ///
    /// Threads without a slot (never initialized) propagate nothing.
    pub fn inherit(
        &mut self,
        parent: ThreadId,
        child: ThreadId,
        derive: impl FnOnce(&mut T) -> T,
    ) {
        if let Some(pv) = self.slots.get_mut(&parent) {
            let cv = derive(pv);
            self.slots.insert(child, cv);
        }
    }

    /// Reads a thread's slot.
    pub fn get(&self, tid: ThreadId) -> Option<&T> {
        self.slots.get(&tid)
    }

    /// Mutably reads a thread's slot.
    pub fn get_mut(&mut self, tid: ThreadId) -> Option<&mut T> {
        self.slots.get_mut(&tid)
    }

    /// Drops a finished thread's slot (TLS teardown).
    pub fn remove(&mut self, tid: ThreadId) -> Option<T> {
        self.slots.remove(&tid)
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slots are live.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inherit_derives_child_from_parent() {
        let mut tls: InheritableTls<Vec<u32>> = InheritableTls::new();
        tls.init_root(ThreadId(0), vec![0]);
        tls.inherit(ThreadId(0), ThreadId(1), |p| {
            let mut c = p.clone();
            c.push(1);
            c
        });
        assert_eq!(tls.get(ThreadId(1)).unwrap(), &vec![0, 1]);
    }

    #[test]
    fn derive_may_mutate_parent_slot() {
        // Models the vector-clock constructor bumping the parent's counter.
        let mut tls: InheritableTls<u64> = InheritableTls::new();
        tls.init_root(ThreadId(0), 1);
        tls.inherit(ThreadId(0), ThreadId(1), |p| {
            *p += 1;
            100
        });
        assert_eq!(*tls.get(ThreadId(0)).unwrap(), 2);
        assert_eq!(*tls.get(ThreadId(1)).unwrap(), 100);
    }

    #[test]
    fn inherit_from_uninitialized_parent_is_a_no_op() {
        let mut tls: InheritableTls<u64> = InheritableTls::new();
        tls.inherit(ThreadId(5), ThreadId(6), |p| *p);
        assert!(tls.get(ThreadId(6)).is_none());
        assert!(tls.is_empty());
    }

    #[test]
    fn remove_tears_down_slot() {
        let mut tls: InheritableTls<u64> = InheritableTls::new();
        tls.init_root(ThreadId(0), 7);
        assert_eq!(tls.remove(ThreadId(0)), Some(7));
        assert!(tls.get(ThreadId(0)).is_none());
    }
}
