//! Monitor interposition: the simulated instrumentation boundary.
//!
//! Waffle's instrumenter wraps every heap-object access in a proxy function
//! that transfers control to the runtime library (§5). In the simulator the
//! same boundary is the [`Monitor`] trait: the engine calls
//! [`Monitor::on_access_pre`] before applying an instrumented access —
//! giving the runtime the chance to inject a delay — and
//! [`Monitor::on_access_post`] after, with the resolved timestamp and
//! outcome. Fork/exit hooks support TLS-based bookkeeping (vector clocks),
//! and [`Monitor::instr_overhead`] charges the per-access cost of the proxy
//! so overhead experiments are meaningful.

use waffle_mem::{AccessKind, AccessOutcome, NullRefError, ObjectId, SiteId};

use crate::ids::ThreadId;
use crate::result::{BlockedInterval, RunResult};
use crate::tasks::{TaskId, TaskParent};
use crate::time::SimTime;

/// A delay currently in progress (some thread is paused inside it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveDelay {
    /// The paused thread.
    pub thread: ThreadId,
    /// Site the delay was injected before.
    pub site: SiteId,
    /// When the delay ends.
    pub end: SimTime,
}

/// Context passed to [`Monitor::on_access_pre`].
#[derive(Debug)]
pub struct AccessCtx<'a> {
    /// Current virtual time of the accessing thread (pre-delay).
    pub time: SimTime,
    /// The accessing thread.
    pub thread: ThreadId,
    /// Static location of the access.
    pub site: SiteId,
    /// Target object.
    pub obj: ObjectId,
    /// Operation class.
    pub kind: AccessKind,
    /// Zero-based dynamic instance index of `site` in this run.
    pub dyn_index: u64,
    /// The task whose code performs the access, when running inside one.
    pub task: Option<TaskId>,
    /// Delays currently in progress in other threads (and this one's
    /// scheduled ones), sorted by end time.
    pub active_delays: &'a [ActiveDelay],
    /// The most recent synchronization block of this thread, if any.
    pub last_block: Option<&'a BlockedInterval>,
}

/// Decision returned by the pre-access hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreAction {
    /// Execute the access immediately.
    Proceed,
    /// Pause the thread for the given span, then execute the access.
    Delay(SimTime),
}

/// A completed instrumented access.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Virtual time at which the access executed (after any delay).
    pub time: SimTime,
    /// The accessing thread.
    pub thread: ThreadId,
    /// Static location.
    pub site: SiteId,
    /// Target object.
    pub obj: ObjectId,
    /// Operation class.
    pub kind: AccessKind,
    /// Zero-based dynamic instance index of `site` in this run.
    pub dyn_index: u64,
    /// The task whose code performed the access, when inside one.
    pub task: Option<TaskId>,
    /// Delay injected before this access (zero when none).
    pub delayed_by: SimTime,
    /// Heap outcome: success or the NULL-reference exception raised.
    pub outcome: Result<AccessOutcome, NullRefError>,
}

/// The instrumentation boundary. All methods have no-op defaults so simple
/// monitors implement only what they need.
pub trait Monitor {
    /// Per-access cost of the instrumentation proxy, charged by the engine
    /// on every instrumented access.
    fn instr_overhead(&self, kind: AccessKind) -> SimTime {
        let _ = kind;
        SimTime::ZERO
    }

    /// Called before an instrumented access; may inject a delay.
    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        let _ = ctx;
        PreAction::Proceed
    }

    /// Called after an instrumented access executed.
    fn on_access_post(&mut self, rec: &AccessRecord) {
        let _ = rec;
    }

    /// Called when `parent` forks `child` (after TLS inheritance).
    fn on_fork(&mut self, parent: ThreadId, child: ThreadId, time: SimTime) {
        let _ = (parent, child, time);
    }

    /// Called when `waiter` resumes from a join, once per thread it
    /// awaited. Join edges are *not* used by the paper's analysis (§4.1
    /// tracks fork edges only); the hook powers the join-aware precision
    /// extension.
    fn on_join(&mut self, waiter: ThreadId, joined: ThreadId, time: SimTime) {
        let _ = (waiter, joined, time);
    }

    /// Called when a thread finishes (normally, by exception, or killed).
    fn on_thread_exit(&mut self, thread: ThreadId, time: SimTime) {
        let _ = (thread, time);
    }

    /// Called when a task is enqueued (the async-local inheritance edge:
    /// derive the task's state from `parent`'s here).
    fn on_task_spawn(&mut self, parent: TaskParent, task: TaskId, time: SimTime) {
        let _ = (parent, task, time);
    }

    /// Called when a pool worker dequeues `task` and starts running it.
    fn on_task_start(&mut self, task: TaskId, worker: ThreadId, time: SimTime) {
        let _ = (task, worker, time);
    }

    /// Called when a task's script completes.
    fn on_task_end(&mut self, task: TaskId, worker: ThreadId, time: SimTime) {
        let _ = (task, worker, time);
    }

    /// Called once when the run ends, with the complete result.
    fn on_run_end(&mut self, result: &RunResult) {
        let _ = result;
    }
}

/// The do-nothing monitor: an uninstrumented ("base") run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}

/// A monitor that only charges a fixed per-access overhead — models an
/// instrumented binary whose runtime does no work (used in overhead
/// calibration tests).
#[derive(Debug, Clone, Copy)]
pub struct OverheadMonitor {
    /// Cost charged per instrumented access.
    pub per_access: SimTime,
}

impl Monitor for OverheadMonitor {
    fn instr_overhead(&self, _kind: AccessKind) -> SimTime {
        self.per_access
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_monitor_defaults_are_inert() {
        let mut m = NullMonitor;
        assert_eq!(m.instr_overhead(AccessKind::Use), SimTime::ZERO);
        let ctx = AccessCtx {
            time: SimTime::ZERO,
            thread: ThreadId(0),
            site: SiteId(0),
            obj: ObjectId(0),
            kind: AccessKind::Use,
            dyn_index: 0,
            task: None,
            active_delays: &[],
            last_block: None,
        };
        assert_eq!(m.on_access_pre(&ctx), PreAction::Proceed);
    }

    #[test]
    fn overhead_monitor_charges_flat_cost() {
        let m = OverheadMonitor {
            per_access: crate::time::us(3),
        };
        assert_eq!(m.instr_overhead(AccessKind::Init), crate::time::us(3));
    }
}
