//! Run results: everything a run produces, with timing context.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use waffle_mem::{HeapStats, NullRefError, ObjectId, SiteId};

use crate::ids::ThreadId;
use crate::time::SimTime;

/// An unhandled NULL-reference exception, with run context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimException {
    /// The underlying heap error.
    pub error: NullRefError,
    /// Thread that faulted (and was killed).
    pub thread: ThreadId,
    /// Virtual time of the faulting access.
    pub time: SimTime,
}

/// A handled application exception (`Op::Throw`): a graceful early exit,
/// not a bug manifestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppException {
    /// Static location of the `throw`.
    pub site: SiteId,
    /// Thread that threw.
    pub thread: ThreadId,
    /// Virtual time of the throw.
    pub time: SimTime,
}

/// A thread-safety violation: two thread-unsafe API calls on one object
/// with overlapping execution windows (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TsvViolation {
    /// The shared object.
    pub obj: ObjectId,
    /// Static location of the earlier call.
    pub first_site: SiteId,
    /// Static location of the later (overlapping) call.
    pub second_site: SiteId,
    /// Threads involved (earlier, later).
    pub threads: (ThreadId, ThreadId),
    /// Virtual time at which the overlap was established.
    pub time: SimTime,
}

/// One injected delay, as recorded by the engine's delay ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayRecord {
    /// Delayed thread.
    pub thread: ThreadId,
    /// Site the delay was injected before.
    pub site: SiteId,
    /// Object of the delayed access.
    pub obj: ObjectId,
    /// Start of the delay.
    pub start: SimTime,
    /// Length of the delay.
    pub dur: SimTime,
}

impl DelayRecord {
    /// End instant of the delay.
    pub fn end(&self) -> SimTime {
        self.start + self.dur
    }
}

/// Why a thread was blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockedBy {
    /// Waiting to acquire a mutex.
    Lock(crate::ids::LockId),
    /// Waiting on a sticky event.
    Event(crate::ids::EventId),
    /// Waiting for other threads to finish.
    Join,
}

/// An interval during which a thread was blocked on synchronization.
///
/// WaffleBasic's happens-before inference consumes these: a delay at ℓ1
/// that shows up as a proportional blocked interval right before ℓ2 in
/// another thread implies a likely ordering (§2, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockedInterval {
    /// The blocked thread.
    pub thread: ThreadId,
    /// Block start.
    pub start: SimTime,
    /// Block end (resumption).
    pub end: SimTime,
    /// Cause of the block.
    pub by: BlockedBy,
}

impl BlockedInterval {
    /// Length of the interval.
    pub fn len(&self) -> SimTime {
        self.end - self.start
    }

    /// Whether the interval is empty (uncontended operation).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// One recently executed instrumented access, as kept in a thread's
/// context ring buffer (the "stack trace" analogue of §5's bug reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecentOp {
    /// Static location.
    pub site: SiteId,
    /// Operation class.
    pub kind: waffle_mem::AccessKind,
    /// Target object.
    pub obj: ObjectId,
    /// Execution time.
    pub time: SimTime,
}

/// A thread's execution context, snapshotted when a bug manifests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadContext {
    /// The thread.
    pub thread: ThreadId,
    /// Script the thread was executing.
    pub script: String,
    /// Whether this thread raised the exception.
    pub faulting: bool,
    /// The last instrumented accesses the thread performed (most recent
    /// last), the simulated analogue of its stack trace.
    pub recent: Vec<RecentOp>,
}

/// A fork edge in the run's thread tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForkEdge {
    /// Forking thread.
    pub parent: ThreadId,
    /// Created thread.
    pub child: ThreadId,
    /// Fork instant.
    pub time: SimTime,
}

/// Everything one simulated run produced.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunResult {
    /// Virtual end-to-end time (max thread finish time, or the deadline).
    pub end_time: SimTime,
    /// Whether the run hit the configured deadline.
    pub timed_out: bool,
    /// Unhandled NULL-reference exceptions (MemOrder manifestations).
    pub exceptions: Vec<SimException>,
    /// Handled application exceptions.
    pub app_exceptions: Vec<AppException>,
    /// Thread-safety violations detected.
    pub tsv_violations: Vec<TsvViolation>,
    /// Every delay injected (the delay ledger).
    pub delays: Vec<DelayRecord>,
    /// Every synchronization block.
    pub blocked: Vec<BlockedInterval>,
    /// The fork tree.
    pub forks: Vec<ForkEdge>,
    /// Heap statistics.
    pub heap: HeapStats,
    /// Dynamic execution count per static site.
    pub site_dyn_counts: HashMap<SiteId, u64>,
    /// Threads spawned (including the root).
    pub threads_spawned: u32,
    /// Total operations executed.
    pub ops_executed: u64,
    /// Instrumented operations executed.
    pub instrumented_ops: u64,
    /// Threads still blocked when the run ended (e.g. their signaller died
    /// from an exception).
    pub stranded_threads: u32,
    /// Tasks spawned onto the task queue.
    pub tasks_spawned: u32,
    /// Per-thread execution contexts snapshotted at the first unhandled
    /// NULL-reference exception (the §5 bug-report "stack traces for all
    /// threads"); empty for clean runs.
    pub thread_contexts: Vec<ThreadContext>,
}

impl RunResult {
    /// Total injected delay time (the `D` of §3.3).
    pub fn total_delay(&self) -> SimTime {
        self.delays.iter().map(|d| d.dur).sum()
    }

    /// Length of the union ("time projection") of all delay intervals.
    pub fn delay_projection(&self) -> SimTime {
        let mut iv: Vec<(SimTime, SimTime)> =
            self.delays.iter().map(|d| (d.start, d.end())).collect();
        iv.sort();
        let mut total = SimTime::ZERO;
        let mut cur: Option<(SimTime, SimTime)> = None;
        for (s, e) in iv {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        cur = Some((cs, ce.max(e)));
                    } else {
                        total += ce - cs;
                        cur = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }

    /// The delay-overlap measure of §3.3: the complement of the ratio
    /// between the time projection of all delays and the total delay
    /// injected (`0` when no delays overlap, approaching `1` when all do).
    /// Returns `0.0` for delay-free runs.
    pub fn delay_overlap_ratio(&self) -> f64 {
        let total = self.total_delay();
        if total == SimTime::ZERO {
            return 0.0;
        }
        1.0 - self.delay_projection().as_us() as f64 / total.as_us() as f64
    }

    /// Whether the run manifested a MemOrder bug (an unhandled NULL
    /// reference exception).
    pub fn manifested(&self) -> bool {
        !self.exceptions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    fn delay(site: u32, start: u64, dur: u64) -> DelayRecord {
        DelayRecord {
            thread: ThreadId(0),
            site: SiteId(site),
            obj: ObjectId(0),
            start: us(start),
            dur: us(dur),
        }
    }

    #[test]
    fn overlap_ratio_zero_when_disjoint() {
        let r = RunResult {
            delays: vec![delay(0, 0, 10), delay(1, 20, 10)],
            ..RunResult::default()
        };
        assert_eq!(r.total_delay(), us(20));
        assert_eq!(r.delay_projection(), us(20));
        assert!(r.delay_overlap_ratio().abs() < 1e-9);
    }

    #[test]
    fn overlap_ratio_half_when_fully_overlapping_pair() {
        let r = RunResult {
            delays: vec![delay(0, 0, 10), delay(1, 0, 10)],
            ..RunResult::default()
        };
        assert_eq!(r.delay_projection(), us(10));
        assert!((r.delay_overlap_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn overlap_ratio_handles_partial_and_unsorted_intervals() {
        let r = RunResult {
            delays: vec![delay(1, 15, 10), delay(0, 0, 20)],
            ..RunResult::default()
        };
        // Union is [0, 25] = 25; total = 30.
        assert_eq!(r.delay_projection(), us(25));
        assert!((r.delay_overlap_ratio() - (1.0 - 25.0 / 30.0)).abs() < 1e-9);
    }

    #[test]
    fn overlap_ratio_zero_for_delay_free_run() {
        let r = RunResult::default();
        assert_eq!(r.delay_overlap_ratio(), 0.0);
        assert!(!r.manifested());
    }

    #[test]
    fn blocked_interval_len() {
        let b = BlockedInterval {
            thread: ThreadId(1),
            start: us(5),
            end: us(12),
            by: BlockedBy::Join,
        };
        assert_eq!(b.len(), us(7));
        assert!(!b.is_empty());
    }
}
