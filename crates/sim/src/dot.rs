//! Graphviz export of workloads.
//!
//! Renders a [`crate::workload::Workload`] as a `dot` digraph:
//! one cluster per script with its operations in program order, edges for
//! forks, task spawns, and event signal/wait pairs. Useful for inspecting
//! the benchmark suite's structure and for documenting new workloads.

use std::fmt::Write as _;

use crate::op::Op;
use crate::workload::Workload;

/// Renders the workload as a Graphviz digraph.
pub fn to_dot(w: &Workload) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {:?} {{", w.name);
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontsize=9];");
    // Per-script clusters.
    let mut signalers: Vec<(usize, usize, u32)> = Vec::new(); // (script, op, event)
    let mut waiters: Vec<(usize, usize, u32)> = Vec::new();
    let mut forks: Vec<(usize, usize, u32)> = Vec::new(); // target script id
    let mut spawns: Vec<(usize, usize, u32)> = Vec::new();
    for (si, script) in w.scripts.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{si} {{");
        let _ = writeln!(out, "    label={:?};", script.name);
        let mut prev: Option<usize> = None;
        for (oi, op) in script.ops.iter().enumerate() {
            let label = match op {
                Op::Compute { dur } => format!("compute {dur}"),
                Op::Pad { dur } => format!("pad {dur}"),
                Op::Access {
                    obj, kind, site, ..
                } => format!("{kind} {} {obj}", w.sites.name(*site)),
                Op::Fork { script } => {
                    forks.push((si, oi, script.0));
                    format!("fork {}", w.scripts[script.0 as usize].name)
                }
                Op::JoinScript { script } => {
                    format!("join {}", w.scripts[script.0 as usize].name)
                }
                Op::JoinChildren => "join children".into(),
                Op::Acquire { lock } => format!("acquire {lock}"),
                Op::Release { lock } => format!("release {lock}"),
                Op::SignalEvent { ev } => {
                    signalers.push((si, oi, ev.0));
                    format!("signal {ev}")
                }
                Op::WaitEvent { ev } => {
                    waiters.push((si, oi, ev.0));
                    format!("wait {ev}")
                }
                Op::Throw { site } => format!("throw {}", w.sites.name(*site)),
                Op::SkipIf { obj, cond, skip } => {
                    format!("skip {skip} if {obj} {cond:?}")
                }
                Op::SpawnTask { script } => {
                    spawns.push((si, oi, script.0));
                    format!("spawn task {}", w.scripts[script.0 as usize].name)
                }
                Op::RunTasks => "run tasks".into(),
                Op::Exit => "exit".into(),
                Op::Fence => "fence".into(),
            };
            let _ = writeln!(out, "    n{si}_{oi} [label={label:?}];");
            if let Some(p) = prev {
                let _ = writeln!(out, "    n{si}_{p} -> n{si}_{oi};");
            }
            prev = Some(oi);
        }
        if script.ops.is_empty() {
            let _ = writeln!(out, "    n{si}_0 [label=\"(empty)\"];");
        }
        let _ = writeln!(out, "  }}");
    }
    // Fork and spawn edges to the target script's first op.
    for (si, oi, target) in forks {
        let _ = writeln!(
            out,
            "  n{si}_{oi} -> n{target}_0 [style=bold, color=blue, label=\"fork\"];"
        );
    }
    for (si, oi, target) in spawns {
        let _ = writeln!(
            out,
            "  n{si}_{oi} -> n{target}_0 [style=dashed, color=purple, label=\"spawn\"];"
        );
    }
    // Signal → wait edges per event.
    for (ssi, soi, ev) in &signalers {
        for (wsi, woi, wev) in &waiters {
            if ev == wev {
                let _ = writeln!(
                    out,
                    "  n{ssi}_{soi} -> n{wsi}_{woi} [style=dotted, color=darkgreen];"
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;
    use crate::workload::WorkloadBuilder;

    fn sample() -> Workload {
        let mut b = WorkloadBuilder::new("dot.sample");
        let o = b.object("o");
        let ev = b.event("go");
        let task = b.script("task", move |s| {
            s.use_(o, "T.use:1", us(5));
        });
        let worker = b.script("worker", move |s| {
            s.wait(ev).run_tasks();
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", us(5))
                .fork(worker)
                .spawn_task(task)
                .signal(ev)
                .join_children()
                .dispose(o, "M.dispose:9", us(5));
        });
        b.main(main);
        b.build()
    }

    #[test]
    fn dot_contains_every_script_and_edge_kind() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph"));
        for needle in [
            "cluster_0",
            "cluster_1",
            "cluster_2",
            "label=\"fork\"",
            "label=\"spawn\"",
            "style=dotted",
            "M.init:1",
            "M.dispose:9",
        ] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
    }

    #[test]
    fn dot_is_balanced() {
        let dot = to_dot(&sample());
        let open = dot.matches('{').count();
        let close = dot.matches('}').count();
        assert_eq!(open, close);
    }
}
