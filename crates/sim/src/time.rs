//! Virtual time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point in (or span of) virtual time, in microseconds.
///
/// The paper works in milliseconds (near-miss window δ = 100 ms, delays of
/// 10/100 ms, gaps of 1–100 ms); microsecond resolution keeps sub-delay
/// effects (instrumentation overhead, short service times) representable.
/// All arithmetic is saturating: a simulation never wraps, it just pins at
/// the (unreachable) maximum.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    Serialize,
    Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant / empty span.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// A span of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// A span of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// This time expressed in whole milliseconds (truncating).
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000
    }

    /// This time expressed in microseconds.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference (`self - other`, pinned at zero).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Absolute difference between two instants.
    pub fn abs_diff(self, other: SimTime) -> SimTime {
        SimTime(self.0.abs_diff(other.0))
    }

    /// Scales this span by a rational factor `num/den` (used for the
    /// paper's α = 1.15 delay-length factor without floating point).
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn scale(self, num: u64, den: u64) -> SimTime {
        assert!(den != 0, "scale denominator must be non-zero");
        SimTime((self.0.saturating_mul(num)) / den)
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

/// Convenience constructor: `ms(100)` is 100 milliseconds.
pub const fn ms(v: u64) -> SimTime {
    SimTime::from_ms(v)
}

/// Convenience constructor: `us(50)` is 50 microseconds.
pub const fn us(v: u64) -> SimTime {
    SimTime::from_us(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(ms(100).as_ms(), 100);
        assert_eq!(ms(1).as_us(), 1_000);
        assert_eq!(us(500).as_ms(), 0);
        assert!((us(1_500).as_ms_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + ms(1), SimTime::MAX);
        assert_eq!(us(1) - us(5), SimTime::ZERO);
        assert_eq!(us(3).saturating_sub(us(10)), SimTime::ZERO);
    }

    #[test]
    fn scale_applies_rational_factor() {
        // α = 1.15 from the paper.
        assert_eq!(ms(100).scale(115, 100), ms(115));
        assert_eq!(us(10).scale(115, 100), us(11));
    }

    #[test]
    fn min_max_and_abs_diff() {
        assert_eq!(us(3).max(us(9)), us(9));
        assert_eq!(us(3).min(us(9)), us(3));
        assert_eq!(us(3).abs_diff(us(9)), us(6));
        assert_eq!(us(9).abs_diff(us(3)), us(6));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(us(42).to_string(), "42µs");
        assert_eq!(ms(2).to_string(), "2.000ms");
    }

    #[test]
    fn sum_accumulates() {
        let total: SimTime = [us(1), us(2), us(3)].into_iter().sum();
        assert_eq!(total, us(6));
    }
}
