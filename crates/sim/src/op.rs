//! Workload operations: the instruction set of simulated threads.

use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, ObjectId, SiteId};

use crate::ids::{EventId, LockId, ScriptId};
use crate::time::SimTime;

/// A condition on a reference cell used by branch operations.
///
/// Branch reads are *uninstrumented* (they model reading a local flag or an
/// already-loaded field); programs that dereference the object to evaluate
/// a condition put an instrumented [`Op::Access`] in front, which is where
/// the NULL-reference exception can strike (cf. `ChkDisposed` in the
/// paper's Fig. 4b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cond {
    /// The reference is live.
    IsLive,
    /// The reference is NULL and was never initialized.
    IsNull,
    /// The reference was disposed.
    IsDisposed,
}

/// One operation in a thread script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Local computation for `dur` of virtual time. Uninstrumented;
    /// subject to timing noise.
    Compute {
        /// Service time.
        dur: SimTime,
    },
    /// Fixed-duration padding (test setup/teardown): like [`Op::Compute`]
    /// but exempt from timing noise, so that large paddings do not swamp
    /// the timing of the racing windows.
    Pad {
        /// Service time.
        dur: SimTime,
    },
    /// An instrumented access to a heap object: the unit of interposition.
    ///
    /// For `AccessKind::UnsafeApiCall`, `dur` is also the *execution
    /// window* used for thread-safety-violation overlap detection.
    Access {
        /// Target object.
        obj: ObjectId,
        /// Operation class.
        kind: AccessKind,
        /// Static location performing the access.
        site: SiteId,
        /// Service time (and TSV window for unsafe API calls).
        dur: SimTime,
    },
    /// Spawn a new thread running `script`. The child inherits the parent's
    /// TLS (see [`crate::tls::InheritableTls`]) and starts immediately.
    Fork {
        /// Script the child executes.
        script: ScriptId,
    },
    /// Block until every already-forked thread running `script` has
    /// finished.
    JoinScript {
        /// Script whose threads are awaited.
        script: ScriptId,
    },
    /// Block until every direct child of this thread has finished.
    JoinChildren,
    /// Acquire a mutex (FIFO queuing).
    Acquire {
        /// The mutex.
        lock: LockId,
    },
    /// Release a mutex held by this thread.
    Release {
        /// The mutex.
        lock: LockId,
    },
    /// Signal a sticky event: all current and future waiters proceed.
    SignalEvent {
        /// The event.
        ev: EventId,
    },
    /// Block until `ev` is signalled (no-op if already signalled).
    WaitEvent {
        /// The event.
        ev: EventId,
    },
    /// Raise a *handled* application exception: the thread unwinds
    /// gracefully (releases held locks) and exits. Not a bug manifestation.
    Throw {
        /// Static location of the `throw`.
        site: SiteId,
    },
    /// Skip the next `skip` operations when `cond` holds for `obj`.
    SkipIf {
        /// Object whose cell state is read (uninstrumented).
        obj: ObjectId,
        /// Condition to test.
        cond: Cond,
        /// Number of following operations to skip when the condition holds.
        skip: u32,
    },
    /// Enqueue `script` as a task on the global task queue, capturing the
    /// spawning context for async-local inheritance (§4.1's task note).
    SpawnTask {
        /// Script the task executes.
        script: ScriptId,
    },
    /// Turn this thread into a pool worker: drain the task queue, running
    /// each task's operations inline, until the queue is empty. Workloads
    /// sequence spawns before workers start draining (e.g. with an event).
    RunTasks,
    /// Terminate this thread early (normal exit).
    Exit,
    /// Full memory fence: under a weak memory model
    /// ([`MemoryModel`](crate::memory::MemoryModel) `Tso`/`Pso`) this
    /// thread's store buffer drains completely before the next operation.
    /// A no-op under sequential consistency, where stores are globally
    /// visible the instant they execute.
    Fence,
}

impl Op {
    /// Whether the engine routes this op through the monitor hook.
    pub fn is_instrumented(&self) -> bool {
        matches!(self, Op::Access { .. })
    }

    /// Nominal service time of the op, before timing noise.
    pub fn duration(&self) -> SimTime {
        match self {
            Op::Compute { dur } | Op::Pad { dur } | Op::Access { dur, .. } => *dur,
            _ => SimTime::ZERO,
        }
    }
}

/// A static thread body: a named sequence of operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Script {
    /// Human-readable script name (e.g. `"worker"`).
    pub name: String,
    /// The operations, executed in order.
    pub ops: Vec<Op>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    #[test]
    fn only_accesses_are_instrumented() {
        let access = Op::Access {
            obj: ObjectId(0),
            kind: AccessKind::Use,
            site: SiteId(0),
            dur: us(10),
        };
        assert!(access.is_instrumented());
        assert!(!Op::Compute { dur: us(10) }.is_instrumented());
        assert!(!Op::JoinChildren.is_instrumented());
    }

    #[test]
    fn duration_defaults_to_zero_for_control_ops() {
        assert_eq!(Op::JoinChildren.duration(), SimTime::ZERO);
        assert_eq!(Op::Compute { dur: us(7) }.duration(), us(7));
    }

    #[test]
    fn fence_is_an_uninstrumented_free_op() {
        assert!(!Op::Fence.is_instrumented());
        assert_eq!(Op::Fence.duration(), SimTime::ZERO);
    }
}
