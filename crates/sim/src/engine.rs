//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use waffle_mem::{AccessKind, AccessOutcome, Heap, ObjectId, RefState, SiteId};

use crate::ids::{LockId, ScriptId, ThreadId};
use crate::memory::{DrainPolicy, MemoryConfig, MemoryModel};
use crate::monitor::{AccessCtx, AccessRecord, ActiveDelay, Monitor, PreAction};
use crate::op::{Cond, Op};
use crate::result::{
    AppException, BlockedBy, BlockedInterval, DelayRecord, ForkEdge, RecentOp, RunResult,
    SimException, ThreadContext,
};
use crate::result::TsvViolation;
use crate::tasks::{TaskId, TaskParent};
use crate::time::SimTime;
use crate::workload::Workload;

/// Engine configuration for one run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for timing noise (the run-to-run variation real machines have).
    pub seed: u64,
    /// Percentage (0–50) by which operation service times vary uniformly
    /// around their nominal value. Zero makes runs fully deterministic.
    pub timing_noise_pct: u32,
    /// Virtual-time budget; exceeding it marks the run timed out. Models
    /// the paper's test-case timeouts (Table 5/6, MQTT.Net).
    pub deadline: Option<SimTime>,
    /// Cost of a fork operation (charged to the parent; the child starts
    /// once the fork completes).
    pub fork_cost: SimTime,
    /// The memory subsystem: sequential consistency (default, stores
    /// globally visible immediately) or a weak model with per-thread store
    /// buffers (see [`crate::memory`]).
    pub memory: MemoryConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            timing_noise_pct: 3,
            deadline: None,
            fork_cost: SimTime::from_us(20),
            memory: MemoryConfig::default(),
        }
    }
}

impl SimConfig {
    /// A configuration with a specific noise seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Disables timing noise (bit-for-bit deterministic runs).
    pub fn deterministic(mut self) -> Self {
        self.timing_noise_pct = 0;
        self
    }

    /// Selects the memory subsystem configuration.
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Blocked(BlockedBy, SimTime),
    Done,
}

#[derive(Debug, Clone)]
struct PendingAccess {
    obj: ObjectId,
    kind: AccessKind,
    site: SiteId,
    dur: SimTime,
    dyn_index: u64,
    delayed_by: SimTime,
}

#[derive(Debug)]
struct ThreadState {
    script: ScriptId,
    pc: usize,
    now: SimTime,
    gen: u64,
    status: Status,
    children: Vec<ThreadId>,
    held: Vec<LockId>,
    pending: Option<PendingAccess>,
    last_block: Option<BlockedInterval>,
    /// Saved (script, pc) frames: a pool worker pushes its own frame here
    /// while it runs a task inline.
    frames: Vec<(ScriptId, usize)>,
    /// The task whose code this thread is currently executing, if any.
    current_task: Option<TaskId>,
    /// Ring buffer of the last instrumented accesses (bug-report context).
    recent: VecDeque<RecentOp>,
}

/// Depth of the per-thread recent-access ring buffer.
const RECENT_DEPTH: usize = 8;

/// Converts an index into the engine's thread table back into a
/// [`ThreadId`]. Every table entry was created through
/// [`ThreadId::try_new`] at spawn, so this cannot fail — the expect
/// documents the invariant instead of a bare `as u32` silently wrapping.
fn checked_thread_id(index: usize) -> ThreadId {
    ThreadId::try_new(index).expect("thread table index validated at spawn")
}

/// Converts a dense site-counter index back into a
/// [`SiteId`](waffle_mem::SiteId). The counter table is indexed by ids
/// that were already 32-bit, so this cannot fail.
fn checked_site_id(index: usize) -> SiteId {
    SiteId::try_new(index).expect("site counter index validated at registration")
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<ThreadId>,
    waiters: VecDeque<ThreadId>,
}

#[derive(Debug, Default)]
struct EventState {
    signaled: bool,
    waiters: Vec<ThreadId>,
}

#[derive(Debug, Clone, Copy)]
struct TsvWindow {
    thread: ThreadId,
    start: SimTime,
    end: SimTime,
    site: SiteId,
}

/// A store sitting in a thread's store buffer: validated and counted when
/// it executed, globally visible only once it drains (`Heap::commit`).
#[derive(Debug, Clone, Copy)]
struct BufferedStore {
    obj: ObjectId,
    to: RefState,
    drain_at: SimTime,
}

/// The simulator: executes one [`Workload`] under one [`Monitor`].
pub struct Simulator<'w> {
    workload: &'w Workload,
    config: SimConfig,
    rng: SmallRng,
    heap: Heap,
    threads: Vec<ThreadState>,
    locks: Vec<LockState>,
    events: Vec<EventState>,
    queue: BinaryHeap<Reverse<(SimTime, u64, ThreadId, u64)>>,
    seq: u64,
    join_waiting: HashMap<ThreadId, HashSet<ThreadId>>,
    join_targets: HashMap<ThreadId, Vec<ThreadId>>,
    task_queue: VecDeque<(TaskId, ScriptId)>,
    tasks_spawned: u32,
    active_delays: Vec<ActiveDelay>,
    tsv_windows: HashMap<ObjectId, Vec<TsvWindow>>,
    /// Dense per-site dynamic-access counters, indexed by `SiteId`. The
    /// dispatch loop bumps these with a plain array index; they fold into
    /// the public `RunResult::site_dyn_counts` map once, at run end.
    site_dyn_counts: Vec<u64>,
    /// Reused buffer for joiners woken by an exiting thread, so thread
    /// churn does not allocate per exit.
    waiter_scratch: Vec<ThreadId>,
    /// Per-thread store buffers (parallel to `threads`); always empty
    /// under `Sc`, where `buffering` is false and none of the buffer
    /// machinery runs.
    store_buffers: Vec<Vec<BufferedStore>>,
    /// Cached `config.memory.buffered()` — keeps the SC hot path free of
    /// any store-buffer bookkeeping.
    buffering: bool,
    result: RunResult,
    max_time: SimTime,
}

impl<'w> Simulator<'w> {
    /// Creates a simulator for `workload` under `config`.
    pub fn new(workload: &'w Workload, config: SimConfig) -> Self {
        // Capacity hints for the hot structures: at least one thread per
        // script, and a few in-flight events per expected thread. Churn
        // workloads respawn the same scripts, so these are floors, not
        // bounds — but they absorb the growth reallocations of the
        // common case.
        let thread_hint = workload.scripts.len().max(8);
        let buffering = config.memory.buffered();
        Self {
            workload,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            heap: Heap::new(workload.n_objects as usize),
            threads: Vec::with_capacity(thread_hint),
            locks: (0..workload.n_locks).map(|_| LockState::default()).collect(),
            events: (0..workload.n_events)
                .map(|_| EventState::default())
                .collect(),
            queue: BinaryHeap::with_capacity(thread_hint * 4),
            seq: 0,
            join_waiting: HashMap::new(),
            join_targets: HashMap::new(),
            task_queue: VecDeque::new(),
            tasks_spawned: 0,
            active_delays: Vec::new(),
            tsv_windows: HashMap::new(),
            site_dyn_counts: vec![0; workload.sites.len()],
            waiter_scratch: Vec::new(),
            store_buffers: Vec::with_capacity(if buffering { thread_hint } else { 0 }),
            buffering,
            result: RunResult::default(),
            max_time: SimTime::ZERO,
        }
    }

    /// Convenience: run `workload` to completion under `monitor`.
    pub fn run(workload: &Workload, config: SimConfig, monitor: &mut dyn Monitor) -> RunResult {
        let sim = Simulator::new(workload, config);
        sim.execute(monitor)
    }

    /// Executes the workload to completion and returns the run result.
    pub fn execute(mut self, monitor: &mut dyn Monitor) -> RunResult {
        let root = self.spawn_thread(self.workload.main, None, SimTime::ZERO);
        debug_assert_eq!(root, ThreadId(0));
        while let Some(Reverse((t, gen, tid, _))) = self.queue.pop() {
            if let Some(deadline) = self.config.deadline {
                if t > deadline {
                    self.result.timed_out = true;
                    self.max_time = deadline;
                    break;
                }
            }
            let th = &self.threads[tid.0 as usize];
            if th.gen != gen || th.status != Status::Ready {
                continue; // Stale event.
            }
            self.step(tid, t, monitor);
        }
        self.finish_run(monitor)
    }

    fn finish_run(mut self, monitor: &mut dyn Monitor) -> RunResult {
        // Any store still buffered when the run ends drains now: its write
        // already executed, there are no more readers to observe an order,
        // and heap stats must reflect every committed store.
        if self.buffering {
            for buf in &mut self.store_buffers {
                for e in buf.drain(..) {
                    self.heap.commit(e.obj, e.to);
                }
            }
        }
        // Threads still blocked when the queue drains are stranded (e.g.
        // their signaller died from an exception).
        for (i, th) in self.threads.iter_mut().enumerate() {
            if let Status::Blocked(by, since) = th.status {
                self.result.blocked.push(BlockedInterval {
                    thread: checked_thread_id(i),
                    start: since,
                    end: self.max_time.max(since),
                    by,
                });
                self.result.stranded_threads += 1;
            }
        }
        self.result.end_time = self.max_time;
        self.result.heap = self.heap.stats();
        self.result.threads_spawned = u32::try_from(self.threads.len())
            .expect("thread count outgrew u32 (checked at spawn, so unreachable)");
        // Fold the dense counters into the public map (accessed sites only,
        // matching the old per-access `entry()` behaviour).
        self.result.site_dyn_counts = self
            .site_dyn_counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (checked_site_id(i), *c))
            .collect();
        let result = std::mem::take(&mut self.result);
        monitor.on_run_end(&result);
        result
    }

    fn schedule(&mut self, tid: ThreadId, at: SimTime) {
        let th = &mut self.threads[tid.0 as usize];
        th.gen += 1;
        let gen = th.gen;
        self.seq += 1;
        self.queue.push(Reverse((at, gen, tid, self.seq)));
    }

    fn spawn_thread(
        &mut self,
        script: ScriptId,
        parent: Option<ThreadId>,
        at: SimTime,
    ) -> ThreadId {
        // Checked conversion: a churn workload that forks past u32::MAX
        // threads used to wrap silently and alias ThreadId(0); the typed
        // `IdOverflow` makes it a diagnosable construction-scale failure.
        let tid = ThreadId::try_new(self.threads.len())
            .unwrap_or_else(|e| panic!("{e}: workload forks more threads than the engine can identify"));
        if self.buffering {
            self.store_buffers.push(Vec::new());
        }
        self.threads.push(ThreadState {
            script,
            pc: 0,
            now: at,
            gen: 0,
            status: Status::Ready,
            children: Vec::new(),
            held: Vec::new(),
            pending: None,
            last_block: None,
            frames: Vec::new(),
            current_task: None,
            recent: VecDeque::with_capacity(RECENT_DEPTH),
        });
        if let Some(p) = parent {
            self.threads[p.0 as usize].children.push(tid);
        }
        self.schedule(tid, at);
        tid
    }

    /// Applies seeded timing noise to a nominal duration.
    ///
    /// The result never rounds a nonzero duration down to zero: a 1µs
    /// compute at 3% noise used to floor to 0µs on factors below 100,
    /// collapsing distinct schedule points onto one timestamp and turning
    /// exact end-time assertions into a seed lottery. Real hardware jitter
    /// shortens an operation; it does not make it free.
    fn noised(&mut self, dur: SimTime) -> SimTime {
        let pct = self.config.timing_noise_pct.min(50);
        if pct == 0 || dur == SimTime::ZERO {
            return dur;
        }
        let span = 2 * pct as u64;
        let factor = 100 - pct as u64 + self.rng.gen_range(0..=span);
        SimTime::from_us((dur.as_us().saturating_mul(factor) / 100).max(1))
    }

    fn prune_active_delays(&mut self, now: SimTime) {
        self.active_delays.retain(|d| d.end > now);
    }

    fn step(&mut self, tid: ThreadId, t: SimTime, monitor: &mut dyn Monitor) {
        self.max_time = self.max_time.max(t);
        // Commit every store whose drain time has arrived — across all
        // threads, since this thread may be about to read shared memory.
        // Queue pops are globally time-ordered, so draining up to `t` here
        // never commits a store "early" relative to any observer.
        if self.buffering {
            self.drain_due(t);
        }
        // A pending access means the injected delay elapsed; perform it.
        if let Some(pending) = self.threads[tid.0 as usize].pending.take() {
            self.perform_access(tid, t, pending, monitor);
            return;
        }
        let th = &self.threads[tid.0 as usize];
        let script = self.workload.script(th.script);
        let Some(op) = script.ops.get(th.pc).cloned() else {
            // End of the current script: a pool worker returns to its own
            // frame (completing the task); a plain thread exits.
            if let Some((script, pc)) = self.threads[tid.0 as usize].frames.pop() {
                let finished = self.threads[tid.0 as usize]
                    .current_task
                    .take()
                    .expect("a popped frame implies a running task");
                monitor.on_task_end(finished, tid, t);
                let th = &mut self.threads[tid.0 as usize];
                th.script = script;
                th.pc = pc;
                th.now = t;
                self.schedule(tid, t);
            } else {
                self.exit_thread(tid, t, monitor);
            }
            return;
        };
        self.result.ops_executed += 1;
        match op {
            Op::Compute { dur } => {
                let d = self.noised(dur);
                self.advance(tid, t + d);
            }
            Op::Pad { dur } => {
                self.advance(tid, t + dur);
            }
            Op::Access {
                obj,
                kind,
                site,
                dur,
            } => self.begin_access(tid, t, obj, kind, site, dur, monitor),
            Op::Fork { script } => {
                if self.buffering {
                    self.flush_buffer(tid);
                }
                let start = t + self.config.fork_cost;
                let child = self.spawn_thread(script, Some(tid), start);
                self.result.forks.push(ForkEdge {
                    parent: tid,
                    child,
                    time: t,
                });
                monitor.on_fork(tid, child, t);
                self.advance(tid, start);
            }
            Op::JoinScript { script } => {
                if self.buffering {
                    self.flush_buffer(tid);
                }
                let all: Vec<ThreadId> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(i, th2)| checked_thread_id(*i) != tid && th2.script == script)
                    .map(|(i, _)| checked_thread_id(i))
                    .collect();
                let live: HashSet<ThreadId> = all
                    .iter()
                    .copied()
                    .filter(|c| self.threads[c.0 as usize].status != Status::Done)
                    .collect();
                // Already-finished threads are joined instantly.
                for done in all.iter().filter(|c| !live.contains(c)) {
                    monitor.on_join(tid, *done, t);
                }
                self.begin_join(tid, t, live);
            }
            Op::JoinChildren => {
                if self.buffering {
                    self.flush_buffer(tid);
                }
                let all: Vec<ThreadId> = self.threads[tid.0 as usize].children.clone();
                let live: HashSet<ThreadId> = all
                    .iter()
                    .copied()
                    .filter(|c| self.threads[c.0 as usize].status != Status::Done)
                    .collect();
                for done in all.iter().filter(|c| !live.contains(c)) {
                    monitor.on_join(tid, *done, t);
                }
                self.begin_join(tid, t, live);
            }
            Op::Acquire { lock } => {
                // Lock operations are drain points: real mutexes carry
                // full barriers. Sticky events deliberately do NOT — an
                // event publication without a barrier is exactly the
                // TSO-visible bug shape this subsystem exists to model.
                if self.buffering {
                    self.flush_buffer(tid);
                }
                let ls = &mut self.locks[lock.0 as usize];
                match ls.holder {
                    None => {
                        ls.holder = Some(tid);
                        self.threads[tid.0 as usize].held.push(lock);
                        self.advance(tid, t);
                    }
                    Some(_) => {
                        ls.waiters.push_back(tid);
                        self.block(tid, t, BlockedBy::Lock(lock));
                    }
                }
            }
            Op::Release { lock } => {
                if self.buffering {
                    self.flush_buffer(tid);
                }
                self.release_lock(tid, lock, t);
                self.advance(tid, t);
            }
            Op::SignalEvent { ev } => {
                let es = &mut self.events[ev.0 as usize];
                es.signaled = true;
                let mut waiters = std::mem::take(&mut es.waiters);
                for w in waiters.drain(..) {
                    self.unblock(w, t);
                }
                // Hand the (now empty) buffer back so repeated wait/signal
                // cycles on the same event reuse its capacity.
                self.events[ev.0 as usize].waiters = waiters;
                self.advance(tid, t);
            }
            Op::WaitEvent { ev } => {
                let es = &mut self.events[ev.0 as usize];
                if es.signaled {
                    self.advance(tid, t);
                } else {
                    es.waiters.push(tid);
                    self.block(tid, t, BlockedBy::Event(ev));
                }
            }
            Op::Throw { site } => {
                self.result.app_exceptions.push(AppException {
                    site,
                    thread: tid,
                    time: t,
                });
                self.exit_thread(tid, t, monitor);
            }
            Op::SkipIf { obj, cond, skip } => {
                let state = if self.buffering {
                    self.view_of(tid, obj)
                } else {
                    self.heap.state(obj)
                };
                let holds = match cond {
                    Cond::IsLive => state == waffle_mem::RefState::Live,
                    Cond::IsNull => state == waffle_mem::RefState::Null,
                    Cond::IsDisposed => state == waffle_mem::RefState::Disposed,
                };
                if holds {
                    self.threads[tid.0 as usize].pc += skip as usize;
                }
                self.advance(tid, t);
            }
            Op::SpawnTask { script } => {
                let task = TaskId(self.tasks_spawned);
                self.tasks_spawned += 1;
                self.result.tasks_spawned = self.tasks_spawned;
                let parent = match self.threads[tid.0 as usize].current_task {
                    Some(owner) => TaskParent::Task(owner),
                    None => TaskParent::Thread(tid),
                };
                self.task_queue.push_back((task, script));
                monitor.on_task_spawn(parent, task, t);
                self.advance(tid, t);
            }
            Op::RunTasks => {
                match self.task_queue.pop_front() {
                    Some((task, script)) => {
                        // Run the task inline: save this frame (still
                        // pointing at `RunTasks`, so the drain loops) and
                        // switch to the task's script.
                        let th = &mut self.threads[tid.0 as usize];
                        th.frames.push((th.script, th.pc));
                        th.script = script;
                        th.pc = 0;
                        th.current_task = Some(task);
                        th.now = t;
                        monitor.on_task_start(task, tid, t);
                        self.schedule(tid, t);
                    }
                    None => {
                        // Queue drained: the pool worker moves on.
                        self.advance(tid, t);
                    }
                }
            }
            Op::Exit => {
                self.exit_thread(tid, t, monitor);
            }
            Op::Fence => {
                if self.buffering {
                    self.flush_buffer(tid);
                }
                self.advance(tid, t);
            }
        }
    }

    /// The reference state thread `tid` observes for `obj`: its own most
    /// recent buffered store, else shared memory. A core always sees its
    /// own stores (store-to-load forwarding).
    fn view_of(&self, tid: ThreadId, obj: ObjectId) -> RefState {
        self.store_buffers[tid.0 as usize]
            .iter()
            .rev()
            .find(|e| e.obj == obj)
            .map(|e| e.to)
            .unwrap_or_else(|| self.heap.state(obj))
    }

    /// Commits every store across all buffers whose drain time has
    /// arrived, earliest first (ties broken by thread id), respecting the
    /// model's ordering constraint: whole-buffer FIFO under TSO,
    /// per-location FIFO under PSO.
    fn drain_due(&mut self, now: SimTime) {
        loop {
            let mut best: Option<(SimTime, usize, usize)> = None;
            for (ti, buf) in self.store_buffers.iter().enumerate() {
                if self.config.memory.model == MemoryModel::Pso {
                    for (i, e) in buf.iter().enumerate() {
                        if e.drain_at <= now
                            && buf[..i].iter().all(|p| p.obj != e.obj)
                            && best.is_none_or(|(bt, bi, _)| (e.drain_at, ti) < (bt, bi))
                        {
                            best = Some((e.drain_at, ti, i));
                        }
                    }
                } else if let Some(e) = buf.first() {
                    if e.drain_at <= now
                        && best.is_none_or(|(bt, bi, _)| (e.drain_at, ti) < (bt, bi))
                    {
                        best = Some((e.drain_at, ti, 0));
                    }
                }
            }
            let Some((_, ti, i)) = best else { return };
            let e = self.store_buffers[ti].remove(i);
            self.heap.commit(e.obj, e.to);
        }
    }

    /// Forced drain point: commits this thread's entire buffer now, in
    /// buffer order (which preserves per-location order under both
    /// models).
    fn flush_buffer(&mut self, tid: ThreadId) {
        for e in self.store_buffers[tid.0 as usize].drain(..) {
            self.heap.commit(e.obj, e.to);
        }
    }

    /// Buffers (or immediately commits) a just-executed store.
    ///
    /// `injected` is the delay the monitor asked for when
    /// [`MemoryConfig::delay_stretches_drain`] holds: it lands on the
    /// drain time — widening the window in which other threads read the
    /// stale value — while the storing thread runs ahead undelayed.
    fn buffer_store(
        &mut self,
        tid: ThreadId,
        t: SimTime,
        dur: SimTime,
        obj: ObjectId,
        to: RefState,
        injected: SimTime,
    ) {
        match self.config.memory.drain {
            DrainPolicy::EveryStore => self.heap.commit(obj, to),
            DrainPolicy::Window { latency } => {
                let lat = self.noised(latency);
                let mut drain_at = t + dur + lat + injected;
                let buf = &mut self.store_buffers[tid.0 as usize];
                // FIFO preservation: a store never drains before an
                // earlier store it is ordered after — the whole buffer
                // under TSO, same-location entries under PSO. This is
                // what keeps a PSO-only plant unexposable under TSO even
                // with injection.
                let floor = match self.config.memory.model {
                    MemoryModel::Pso => {
                        buf.iter().rev().find(|e| e.obj == obj).map(|e| e.drain_at)
                    }
                    _ => buf.last().map(|e| e.drain_at),
                };
                if let Some(f) = floor {
                    drain_at = drain_at.max(f);
                }
                buf.push(BufferedStore { obj, to, drain_at });
            }
        }
    }

    /// Advances past the current op and reschedules the thread.
    fn advance(&mut self, tid: ThreadId, at: SimTime) {
        let th = &mut self.threads[tid.0 as usize];
        th.pc += 1;
        th.now = at;
        self.schedule(tid, at);
    }

    fn begin_join(&mut self, tid: ThreadId, t: SimTime, targets: HashSet<ThreadId>) {
        if targets.is_empty() {
            self.advance(tid, t);
        } else {
            self.join_targets
                .insert(tid, targets.iter().copied().collect());
            self.join_waiting.insert(tid, targets);
            self.block(tid, t, BlockedBy::Join);
        }
    }

    /// Emits the join edges for a joiner that just resumed.
    fn notify_join(&mut self, tid: ThreadId, t: SimTime, monitor: &mut dyn Monitor) {
        if let Some(targets) = self.join_targets.remove(&tid) {
            for joined in targets {
                monitor.on_join(tid, joined, t);
            }
        }
    }

    fn block(&mut self, tid: ThreadId, t: SimTime, by: BlockedBy) {
        let th = &mut self.threads[tid.0 as usize];
        th.status = Status::Blocked(by, t);
        th.now = t;
    }

    /// Resumes a blocked thread at time `t` (or its block start if later,
    /// which cannot happen under monotone virtual time but is kept safe).
    fn unblock(&mut self, tid: ThreadId, t: SimTime) {
        let th = &mut self.threads[tid.0 as usize];
        let Status::Blocked(by, since) = th.status else {
            return;
        };
        let resume = t.max(since);
        let interval = BlockedInterval {
            thread: tid,
            start: since,
            end: resume,
            by,
        };
        self.result.blocked.push(interval);
        th.last_block = Some(interval);
        th.status = Status::Ready;
        th.now = resume;
        // The blocking op completed; move past it.
        th.pc += 1;
        self.schedule(tid, resume);
    }

    fn release_lock(&mut self, tid: ThreadId, lock: LockId, t: SimTime) {
        let ls = &mut self.locks[lock.0 as usize];
        if ls.holder == Some(tid) {
            ls.holder = None;
            self.threads[tid.0 as usize].held.retain(|&l| l != lock);
            if let Some(next) = ls.waiters.pop_front() {
                ls.holder = Some(next);
                self.threads[next.0 as usize].held.push(lock);
                self.unblock(next, t);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn begin_access(
        &mut self,
        tid: ThreadId,
        t: SimTime,
        obj: ObjectId,
        kind: AccessKind,
        site: SiteId,
        dur: SimTime,
        monitor: &mut dyn Monitor,
    ) {
        let dyn_index = {
            let idx = site.0 as usize;
            if idx >= self.site_dyn_counts.len() {
                // Sites are registered up front, so this only triggers for
                // monitors that synthesize sites mid-run.
                self.site_dyn_counts.resize(idx + 1, 0);
            }
            let c = &mut self.site_dyn_counts[idx];
            let dyn_index = *c;
            *c += 1;
            dyn_index
        };
        self.prune_active_delays(t);
        let action = {
            let th = &self.threads[tid.0 as usize];
            let ctx = AccessCtx {
                time: t,
                thread: tid,
                site,
                obj,
                kind,
                dyn_index,
                task: th.current_task,
                active_delays: &self.active_delays,
                last_block: th.last_block.as_ref(),
            };
            monitor.on_access_pre(&ctx)
        };
        let pending = PendingAccess {
            obj,
            kind,
            site,
            dur,
            dyn_index,
            delayed_by: SimTime::ZERO,
        };
        match action {
            PreAction::Proceed => self.perform_access(tid, t, pending, monitor),
            PreAction::Delay(d) => {
                self.result.delays.push(DelayRecord {
                    thread: tid,
                    site,
                    obj,
                    start: t,
                    dur: d,
                });
                self.active_delays.push(ActiveDelay {
                    thread: tid,
                    site,
                    end: t + d,
                });
                // Under a weak model with a drain window, a delay at a
                // *store* does not pause the thread: it stretches the
                // store's residence in the buffer instead. The thread
                // publishes its downstream signals on time while the
                // store is still invisible — which is how injection
                // widens the stale-read window other threads race into.
                // Loads (and every access under SC or drain-every-store)
                // keep the classical pause semantics.
                let stretches = self.config.memory.delay_stretches_drain()
                    && matches!(kind, AccessKind::Init | AccessKind::Dispose);
                if stretches {
                    self.perform_access(
                        tid,
                        t,
                        PendingAccess {
                            delayed_by: d,
                            ..pending
                        },
                        monitor,
                    );
                } else {
                    let th = &mut self.threads[tid.0 as usize];
                    th.pending = Some(PendingAccess {
                        delayed_by: d,
                        ..pending
                    });
                    th.now = t + d;
                    self.schedule(tid, t + d);
                }
            }
        }
    }

    fn perform_access(
        &mut self,
        tid: ThreadId,
        t: SimTime,
        p: PendingAccess,
        monitor: &mut dyn Monitor,
    ) {
        self.max_time = self.max_time.max(t);
        self.result.instrumented_ops += 1;
        let outcome = if self.buffering {
            // The access classifies against this thread's *view*: its own
            // buffered stores first, then shared memory. The cell itself is
            // only written when the store drains.
            let view = self.view_of(tid, p.obj);
            self.heap.apply_buffered(p.obj, p.site, p.kind, view)
        } else {
            self.heap.apply(p.obj, p.site, p.kind)
        };
        let dur = self.noised(p.dur);
        if self.buffering {
            if let Ok(AccessOutcome::Transition { to, .. }) = outcome {
                self.buffer_store(tid, t, dur, p.obj, to, p.delayed_by);
            }
        }
        if p.kind == AccessKind::UnsafeApiCall && outcome.is_ok() {
            // TSVD trap semantics: a thread paused by an injected delay is
            // conceptually *at* the call boundary for the whole pause, so
            // the conflict window opens when the delay started.
            self.check_tsv(tid, t - p.delayed_by, t + dur, p.obj, p.site);
        }
        {
            let th = &mut self.threads[tid.0 as usize];
            if th.recent.len() == RECENT_DEPTH {
                th.recent.pop_front();
            }
            th.recent.push_back(RecentOp {
                site: p.site,
                kind: p.kind,
                obj: p.obj,
                time: t,
            });
        }
        let rec = AccessRecord {
            time: t,
            thread: tid,
            site: p.site,
            obj: p.obj,
            kind: p.kind,
            dyn_index: p.dyn_index,
            task: self.threads[tid.0 as usize].current_task,
            delayed_by: p.delayed_by,
            outcome,
        };
        monitor.on_access_post(&rec);
        match outcome {
            Ok(_) => {
                let overhead = monitor.instr_overhead(p.kind);
                self.advance(tid, t + dur + overhead);
            }
            Err(error) => {
                if self.result.exceptions.is_empty() {
                    // First manifestation: snapshot every thread's context
                    // (the §5 bug report records "stack traces for all
                    // threads").
                    self.result.thread_contexts = self
                        .threads
                        .iter()
                        .enumerate()
                        .map(|(i, th)| ThreadContext {
                            thread: checked_thread_id(i),
                            script: self.workload.script(th.script).name.clone(),
                            faulting: checked_thread_id(i) == tid,
                            recent: th.recent.iter().copied().collect(),
                        })
                        .collect();
                }
                self.result.exceptions.push(SimException {
                    error,
                    thread: tid,
                    time: t,
                });
                self.exit_thread(tid, t, monitor);
            }
        }
    }

    fn check_tsv(&mut self, tid: ThreadId, start: SimTime, end: SimTime, obj: ObjectId, site: SiteId) {
        let windows = self.tsv_windows.entry(obj).or_default();
        windows.retain(|w| w.end > start);
        for w in windows.iter() {
            if w.thread != tid && w.start < end && w.end > start {
                self.result.tsv_violations.push(TsvViolation {
                    obj,
                    first_site: w.site,
                    second_site: site,
                    threads: (w.thread, tid),
                    time: start,
                });
            }
        }
        windows.push(TsvWindow {
            thread: tid,
            start,
            end,
            site,
        });
    }

    fn exit_thread(&mut self, tid: ThreadId, t: SimTime, monitor: &mut dyn Monitor) {
        self.max_time = self.max_time.max(t);
        if self.buffering {
            // Thread exit is a full barrier: a dying thread's stores become
            // globally visible (the OS drains the buffer on context loss).
            self.flush_buffer(tid);
        }
        {
            let th = &mut self.threads[tid.0 as usize];
            th.status = Status::Done;
            th.now = t;
        }
        // Unwind: release every held lock (finally-block semantics). The
        // thread is done, so its `held` list can be taken outright instead
        // of cloned; `release_lock`'s retain on the emptied list is a no-op.
        let held: Vec<LockId> = std::mem::take(&mut self.threads[tid.0 as usize].held);
        for lock in held {
            self.release_lock(tid, lock, t);
        }
        // Wake joiners waiting on this thread, collecting them into the
        // reused scratch buffer (thread churn exits constantly; this path
        // must not allocate).
        let mut waiters = std::mem::take(&mut self.waiter_scratch);
        waiters.clear();
        for (w, set) in self.join_waiting.iter_mut() {
            set.remove(&tid);
            if set.is_empty() {
                waiters.push(*w);
            }
        }
        for w in &waiters {
            self.join_waiting.remove(w);
        }
        for &w in &waiters {
            self.unblock(w, t);
            self.notify_join(w, t, monitor);
        }
        self.waiter_scratch = waiters;
        monitor.on_thread_exit(tid, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ms, us};
    use crate::workload::WorkloadBuilder;

    fn det() -> SimConfig {
        SimConfig::with_seed(1).deterministic()
    }

    /// Workload: main inits, forks a worker that uses, joins, disposes.
    fn safe_workload() -> Workload {
        let mut b = WorkloadBuilder::new("safe");
        let o = b.object("o");
        let w = b.script("worker", |s| {
            s.compute(us(10)).use_(o, "W.use:1", us(5));
        });
        let m = b.script("main", |s| {
            s.init(o, "M.init:1", us(10))
                .fork(w)
                .join_children()
                .dispose(o, "M.dispose:9", us(5));
        });
        b.main(m);
        b.build()
    }

    #[test]
    fn safe_workload_runs_clean() {
        let w = safe_workload();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert!(!r.manifested());
        assert!(!r.timed_out);
        assert_eq!(r.threads_spawned, 2);
        assert_eq!(r.heap.inits, 1);
        assert_eq!(r.heap.uses, 1);
        assert_eq!(r.heap.disposes, 1);
        assert_eq!(r.stranded_threads, 0);
        // Join must have ordered the dispose after the worker's use.
        assert!(r.blocked.iter().any(|b| b.by == BlockedBy::Join));
    }

    #[test]
    fn virtual_time_accumulates_service_times() {
        let mut b = WorkloadBuilder::new("t");
        let m = b.script("main", |s| {
            s.compute(ms(1)).compute(ms(2));
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert_eq!(r.end_time, ms(3));
        assert_eq!(r.ops_executed, 2);
    }

    #[test]
    fn use_before_init_race_depends_on_timing() {
        // Main forks a worker that uses the object after 50µs; main inits
        // at 100µs: the use strikes a NULL reference.
        let mut b = WorkloadBuilder::new("ubi");
        let o = b.object("o");
        let wk = b.script("worker", |s| {
            s.compute(us(50)).use_(o, "W.use:1", us(5));
        });
        let m = b.script("main", |s| {
            s.fork(wk).compute(us(100)).init(o, "M.init:1", us(5));
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert!(r.manifested());
        assert_eq!(
            r.exceptions[0].error.kind,
            waffle_mem::NullRefKind::UseBeforeInit
        );
        // The faulting thread died; main completed.
        assert_eq!(r.exceptions[0].thread, ThreadId(1));
    }

    #[test]
    fn delay_injection_reorders_accesses() {
        // Init at t=0 (main), use at t=10µs (worker) — safe without delays.
        // A monitor that delays the use... wait, delaying the *use* makes
        // it run later, still after init: safe. Delay the *init* instead,
        // pushing it past the use: use-before-init manifests. This is the
        // paper's Fig. 2 order-violation timing condition.
        struct DelayInit;
        impl Monitor for DelayInit {
            fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
                if ctx.kind == AccessKind::Init {
                    PreAction::Delay(ms(1))
                } else {
                    PreAction::Proceed
                }
            }
        }
        let mut b = WorkloadBuilder::new("delayable");
        let o = b.object("o");
        let wk = b.script("worker", |s| {
            s.compute(us(10)).use_(o, "W.use:1", us(5));
        });
        let m = b.script("main", |s| {
            s.fork(wk).init(o, "M.init:1", us(5)).join_children();
        });
        b.main(m);
        let w = b.build();
        // Without delays: clean.
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert!(!r.manifested());
        // With the init delayed: the worker's use hits NULL.
        let r = Simulator::run(&w, det(), &mut DelayInit);
        assert!(r.manifested());
        assert_eq!(r.delays.len(), 1);
        assert_eq!(r.delays[0].dur, ms(1));
    }

    #[test]
    fn locks_provide_mutual_exclusion_and_fifo_handoff() {
        let mut b = WorkloadBuilder::new("locks");
        let o = b.object("o");
        let lk = b.lock("mu");
        let wk = b.script("worker", |s| {
            s.acquire(lk).compute(ms(1)).release(lk);
        });
        let m = b.script("main", |s| {
            s.init(o, "M.init:1", us(1))
                .fork(wk)
                .fork(wk)
                .acquire(lk)
                .compute(ms(1))
                .release(lk)
                .join_children();
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert!(!r.manifested());
        // Three 1ms critical sections serialize: end-to-end ≥ 3ms.
        assert!(r.end_time >= ms(3), "end={}", r.end_time);
        // Two of the three threads must have blocked on the lock.
        let lock_blocks = r
            .blocked
            .iter()
            .filter(|b| matches!(b.by, BlockedBy::Lock(_)))
            .count();
        assert_eq!(lock_blocks, 2);
    }

    #[test]
    fn events_are_sticky() {
        let mut b = WorkloadBuilder::new("ev");
        let ev = b.event("done");
        let wk = b.script("worker", |s| {
            s.wait(ev).compute(us(1));
        });
        let m = b.script("main", |s| {
            s.signal(ev).fork(wk).join_children();
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        // The worker waited after the signal: no block recorded for it.
        assert!(r
            .blocked
            .iter()
            .all(|bi| !matches!(bi.by, BlockedBy::Event(_))));
        assert_eq!(r.stranded_threads, 0);
    }

    #[test]
    fn event_wait_blocks_until_signal() {
        let mut b = WorkloadBuilder::new("ev2");
        let ev = b.event("go");
        let wk = b.script("worker", |s| {
            s.wait(ev).compute(us(1));
        });
        let m = b.script("main", |s| {
            s.fork(wk).compute(ms(2)).signal(ev).join_children();
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        let ev_block = r
            .blocked
            .iter()
            .find(|bi| matches!(bi.by, BlockedBy::Event(_)))
            .expect("worker must block on event");
        assert!(ev_block.len() >= ms(1));
    }

    #[test]
    fn faulting_thread_strands_its_joiner_but_run_completes() {
        // The worker faults before signalling; main joins it fine (death
        // wakes joiners), but a second waiter on the event is stranded.
        let mut b = WorkloadBuilder::new("strand");
        let o = b.object("o");
        let ev = b.event("never");
        let waiter = b.script("waiter", |s| {
            s.wait(ev).compute(us(1));
        });
        let faulty = b.script("faulty", |s| {
            s.use_(o, "F.use:1", us(1)).signal(ev);
        });
        let m = b.script("main", |s| {
            s.fork(waiter).fork(faulty).join_script(faulty);
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert!(r.manifested());
        assert_eq!(r.stranded_threads, 1);
    }

    #[test]
    fn faulting_thread_releases_its_locks() {
        let mut b = WorkloadBuilder::new("unwind");
        let o = b.object("o");
        let lk = b.lock("mu");
        let faulty = b.script("faulty", |s| {
            s.acquire(lk).use_(o, "F.use:1", us(1)).release(lk);
        });
        let m = b.script("main", |s| {
            s.fork(faulty)
                .compute(us(50))
                .acquire(lk)
                .compute(us(1))
                .release(lk)
                .join_children();
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert!(r.manifested());
        // Main must not be stranded on the lock.
        assert_eq!(r.stranded_threads, 0);
    }

    #[test]
    fn tsv_overlap_detected_only_across_threads() {
        let mut b = WorkloadBuilder::new("tsv");
        let o = b.object("dict");
        let wk = b.script("worker", |s| {
            s.unsafe_call(o, "W.Add:1", ms(1));
        });
        let m = b.script("main", |s| {
            s.init(o, "M.init:1", us(1))
                .fork(wk)
                .unsafe_call(o, "M.Add:5", ms(1))
                .join_children();
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert_eq!(r.tsv_violations.len(), 1);
        let v = r.tsv_violations[0];
        assert_ne!(v.threads.0, v.threads.1);
    }

    #[test]
    fn sequential_unsafe_calls_do_not_violate() {
        let mut b = WorkloadBuilder::new("tsv-seq");
        let o = b.object("dict");
        let m = b.script("main", |s| {
            s.init(o, "M.init:1", us(1))
                .unsafe_call(o, "M.Add:5", ms(1))
                .unsafe_call(o, "M.Add:6", ms(1));
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert!(r.tsv_violations.is_empty());
    }

    #[test]
    fn deadline_marks_timeout() {
        let mut b = WorkloadBuilder::new("slow");
        let m = b.script("main", |s| {
            s.compute(ms(10)).compute(ms(10));
        });
        b.main(m);
        let w = b.build();
        let cfg = SimConfig {
            deadline: Some(ms(5)),
            ..det()
        };
        let r = Simulator::run(&w, cfg, &mut crate::monitor::NullMonitor);
        assert!(r.timed_out);
        assert_eq!(r.end_time, ms(5));
    }

    #[test]
    fn skip_if_branches_on_heap_state() {
        let mut b = WorkloadBuilder::new("branch");
        let o = b.object("o");
        let flag = b.object("flag");
        let m = b.script("main", |s| {
            // o is NULL: skip the init of flag, then check flag is NULL.
            s.skip_if(o, Cond::IsNull, 1)
                .init(flag, "M.flag:1", us(1))
                .init(o, "M.o:2", us(1))
                .skip_if(flag, Cond::IsNull, 1)
                .use_(flag, "M.useflag:3", us(1)); // skipped (flag NULL)
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert!(!r.manifested());
        assert_eq!(r.heap.inits, 1); // Only `o` got initialized.
        assert_eq!(r.heap.uses, 0);
    }

    #[test]
    fn timing_noise_perturbs_end_time_but_preserves_safety() {
        let w = safe_workload();
        let r1 = Simulator::run(
            &w,
            SimConfig {
                seed: 1,
                timing_noise_pct: 10,
                ..SimConfig::default()
            },
            &mut crate::monitor::NullMonitor,
        );
        let r2 = Simulator::run(
            &w,
            SimConfig {
                seed: 2,
                timing_noise_pct: 10,
                ..SimConfig::default()
            },
            &mut crate::monitor::NullMonitor,
        );
        assert!(!r1.manifested() && !r2.manifested());
        assert_ne!(r1.end_time, r2.end_time);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let w = safe_workload();
        let cfg = SimConfig {
            seed: 42,
            timing_noise_pct: 10,
            ..SimConfig::default()
        };
        let r1 = Simulator::run(&w, cfg.clone(), &mut crate::monitor::NullMonitor);
        let r2 = Simulator::run(&w, cfg, &mut crate::monitor::NullMonitor);
        assert_eq!(r1.end_time, r2.end_time);
        assert_eq!(r1.ops_executed, r2.ops_executed);
    }

    #[test]
    fn instr_overhead_is_charged_per_access() {
        let mut b = WorkloadBuilder::new("oh");
        let o = b.object("o");
        let m = b.script("main", |s| {
            s.init(o, "a", us(10)).use_(o, "b", us(10)).dispose(o, "c", us(10));
        });
        b.main(m);
        let w = b.build();
        let base = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        let mut oh = crate::monitor::OverheadMonitor { per_access: us(5) };
        let inst = Simulator::run(&w, det(), &mut oh);
        assert_eq!(inst.end_time, base.end_time + us(15));
    }

    // ---- weak-memory (store-buffer) semantics -------------------------

    use crate::memory::{DrainPolicy, MemoryConfig, MemoryModel};

    fn weak_cfg(model: MemoryModel) -> SimConfig {
        det().with_memory(MemoryConfig::weak(model))
    }

    /// The canonical TSO bug shape: publish-by-event without a fence. The
    /// event edge orders the *signal* after the *init instruction*, but the
    /// init's store is still in main's buffer when the consumer wakes.
    fn tso_handoff(with_fence: bool) -> Workload {
        let mut b = WorkloadBuilder::new("tso.handoff");
        let o = b.object("conn");
        let ready = b.event("ready");
        let wk = b.script("consumer", move |s| {
            s.wait(ready).use_(o, "C.use:1", us(5));
        });
        let m = b.script("main", move |s| {
            s.fork(wk).init(o, "M.init:1", us(10));
            if with_fence {
                s.fence();
            }
            s.signal(ready).join_children();
        });
        b.main(m);
        b.build()
    }

    #[test]
    fn tso_store_buffer_exposes_unfenced_event_handoff() {
        let w = tso_handoff(false);
        // Sequentially consistent: the init is globally visible the moment
        // it executes, so the event edge is enough.
        let r = Simulator::run(&w, det(), &mut crate::monitor::NullMonitor);
        assert!(!r.manifested());
        // TSO: the consumer wakes while the init still sits in main's
        // store buffer (drain window > signal latency) and reads NULL.
        let r = Simulator::run(&w, weak_cfg(MemoryModel::Tso), &mut crate::monitor::NullMonitor);
        assert!(r.manifested(), "consumer must observe the pre-init value");
        assert_eq!(
            r.exceptions[0].error.kind,
            waffle_mem::NullRefKind::UseBeforeInit
        );
    }

    #[test]
    fn fence_restores_the_handoff_under_tso_and_pso() {
        let w = tso_handoff(true);
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let r = Simulator::run(&w, weak_cfg(model), &mut crate::monitor::NullMonitor);
            assert!(!r.manifested(), "fence must drain the buffer under {model}");
        }
    }

    #[test]
    fn drain_at_every_store_is_observationally_sequential() {
        // With the buffer drained inline at every store, Tso/Pso runs are
        // indistinguishable from Sc — the byte-identity invariant the rest
        // of the repo's baselines rest on.
        for wl in [safe_workload(), tso_handoff(false)] {
            let sc = Simulator::run(&wl, det(), &mut crate::monitor::NullMonitor);
            for model in [MemoryModel::Tso, MemoryModel::Pso] {
                let cfg = det().with_memory(MemoryConfig {
                    model,
                    drain: DrainPolicy::EveryStore,
                });
                let weak = Simulator::run(&wl, cfg, &mut crate::monitor::NullMonitor);
                assert_eq!(sc.end_time, weak.end_time);
                assert_eq!(sc.ops_executed, weak.ops_executed);
                assert_eq!(sc.manifested(), weak.manifested());
                assert_eq!(sc.heap, weak.heap);
            }
        }
    }

    #[test]
    fn pso_reorders_per_object_streams_where_tso_keeps_fifo() {
        // Main publishes data then a flag. A delay injected at the data
        // init stretches its drain; under PSO the flag (a different
        // object) drains on time, so the consumer sees flag=Live while
        // data is still NULL. Under TSO the flag's drain is floored at
        // the data's (total FIFO), so the consumer skips cleanly.
        struct DelayDataInit(ObjectId);
        impl Monitor for DelayDataInit {
            fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
                if ctx.kind == AccessKind::Init && ctx.obj == self.0 {
                    PreAction::Delay(ms(1))
                } else {
                    PreAction::Proceed
                }
            }
        }
        let mut b = WorkloadBuilder::new("pso.flag");
        let data = b.object("data");
        let flag = b.object("flag");
        let wk = b.script("consumer", move |s| {
            s.compute(us(200))
                .skip_if(flag, Cond::IsNull, 1)
                .use_(data, "C.use:1", us(5));
        });
        let m = b.script("main", move |s| {
            s.fork(wk)
                .init(data, "M.data:1", us(10))
                .init(flag, "M.flag:2", us(10))
                // Keep main busy: join is a flush point, and joining
                // immediately would publish both stores before the
                // consumer's read.
                .compute(ms(2))
                .join_children();
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, weak_cfg(MemoryModel::Pso), &mut DelayDataInit(data));
        assert!(r.manifested(), "PSO must let the flag outrun the data");
        assert_eq!(
            r.exceptions[0].error.kind,
            waffle_mem::NullRefKind::UseBeforeInit
        );
        let r = Simulator::run(&w, weak_cfg(MemoryModel::Tso), &mut DelayDataInit(data));
        assert!(!r.manifested(), "TSO's total store FIFO must protect it");
        let r = Simulator::run(&w, det(), &mut DelayDataInit(data));
        assert!(!r.manifested(), "SC pauses the thread instead");
    }

    #[test]
    fn injected_delay_stretches_the_drain_without_pausing_the_thread() {
        struct DelayInit;
        impl Monitor for DelayInit {
            fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
                if ctx.kind == AccessKind::Init {
                    PreAction::Delay(ms(5))
                } else {
                    PreAction::Proceed
                }
            }
        }
        let w = tso_handoff(true); // fenced: clean without injection
        let r = Simulator::run(&w, weak_cfg(MemoryModel::Tso), &mut crate::monitor::NullMonitor);
        assert!(!r.manifested());
        // Under SC the same delay pauses main before the init, which only
        // pushes the whole publish later: still clean.
        let r = Simulator::run(&w, det(), &mut DelayInit);
        assert!(!r.manifested());
        assert_eq!(r.delays.len(), 1);
        // Under TSO the delay lands on the *drain*: main reaches the fence
        // (a flush point) which commits the store, so the fenced variant
        // stays clean — but the unfenced one now has a 5ms stale window.
        let r = Simulator::run(&w, weak_cfg(MemoryModel::Tso), &mut DelayInit);
        assert!(!r.manifested());
        let unfenced = tso_handoff(false);
        let r = Simulator::run(&unfenced, weak_cfg(MemoryModel::Tso), &mut DelayInit);
        assert!(r.manifested());
        // The thread ran ahead: the recorded delay did not shift its clock,
        // so the manifestation happens inside the stale window, well before
        // the 5ms pause would have ended.
        assert!(r.exceptions[0].time < ms(5));
    }

    #[test]
    fn residual_buffers_drain_at_end_of_run() {
        // A store still buffered when its thread exits must land in shared
        // memory: heap stats and final cell state agree with SC.
        let mut b = WorkloadBuilder::new("residual");
        let o = b.object("o");
        let m = b.script("main", move |s| {
            s.init(o, "M.init:1", us(1));
        });
        b.main(m);
        let w = b.build();
        let r = Simulator::run(&w, weak_cfg(MemoryModel::Tso), &mut crate::monitor::NullMonitor);
        assert!(!r.manifested());
        assert_eq!(r.heap.inits, 1);
    }
}
