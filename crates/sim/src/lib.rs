//! Deterministic virtual-time concurrency simulator.
//!
//! The paper evaluates Waffle on real multi-threaded C# applications running
//! on real threads and wall-clock time. This crate substitutes that substrate
//! with a discrete-event simulation that preserves everything the paper's
//! algorithms consume:
//!
//! - **threads** with fork/join, mutexes, and (sticky) events;
//! - **virtual time** in microseconds: every operation has a service time,
//!   blocking propagates timestamps exactly like real blocking does, and
//!   *delay injection* advances a thread's clock by the injected amount;
//! - **instrumentation interposition**: every heap-object access flows
//!   through a [`monitor::Monitor`] hook that can observe the
//!   access (site, object, thread, timestamp, kind) and inject a delay
//!   before it, and that charges a configurable per-access overhead — the
//!   analogue of Waffle's Mono.Cecil proxy functions;
//! - **inheritable TLS** ([`tls::InheritableTls`]): a per-thread storage
//!   slot cloned from parent to child at fork through a user hook, the
//!   mechanism Waffle uses to maintain fork-edge vector clocks (§4.1);
//! - **manifestation**: a use of a NULL/disposed reference raises the
//!   modelled NULL-reference exception and kills the thread, and
//!   overlapping thread-unsafe API calls on one object record a
//!   thread-safety violation (for the TSVD comparison tooling).
//!
//! Determinism: runs are a pure function of `(workload, config, monitor)`.
//! Run-to-run timing variation — which the paper's probabilistic method
//! needs — comes from seeded per-operation timing noise
//! ([`SimConfig::timing_noise_pct`](engine::SimConfig)).
//!
//! # Examples
//!
//! ```
//! use waffle_sim::time::{ms, us};
//! use waffle_sim::{NullMonitor, SimConfig, Simulator, WorkloadBuilder};
//!
//! let mut b = WorkloadBuilder::new("doc.demo");
//! let obj = b.object("connection");
//! let started = b.event("started");
//! let worker = b.script("worker", move |s| {
//!     s.wait(started).compute(ms(1)).use_(obj, "Worker.poll:4", us(50));
//! });
//! let main = b.script("main", move |s| {
//!     s.init(obj, "Main.open:1", us(100))
//!         .fork(worker)
//!         .signal(started)
//!         .join_children()
//!         .dispose(obj, "Main.close:9", us(50));
//! });
//! b.main(main);
//! let workload = b.build();
//!
//! let result = Simulator::run(
//!     &workload,
//!     SimConfig::with_seed(0).deterministic(),
//!     &mut NullMonitor,
//! );
//! assert!(!result.manifested());
//! assert_eq!(result.threads_spawned, 2);
//! ```

pub mod dot;
pub mod engine;
pub mod ids;
pub mod memory;
pub mod monitor;
pub mod op;
pub mod repair;
pub mod result;
pub mod tasks;
pub mod time;
pub mod tls;
pub mod workload;

pub use engine::{SimConfig, Simulator};
pub use ids::{EventId, IdOverflow, LockId, ScriptId, ThreadId};
pub use memory::{DrainPolicy, MemoryConfig, MemoryModel, DEFAULT_DRAIN_LATENCY};
pub use monitor::{AccessCtx, AccessRecord, ActiveDelay, Monitor, NullMonitor, PreAction};
pub use op::{Cond, Op};
pub use repair::{RepairKind, RepairPatch};
pub use result::{
    AppException, BlockedBy, BlockedInterval, DelayRecord, ForkEdge, RecentOp, RunResult,
    SimException, ThreadContext, TsvViolation,
};
pub use tasks::{TaskId, TaskParent};
pub use time::SimTime;
pub use workload::{ScriptBuilder, Workload, WorkloadBuilder};
