//! Identifiers for simulated threads, scripts, and synchronization objects.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A table index outgrew the 32-bit id space.
///
/// The engine's entity tables (threads, scripts, …) are indexed by `usize`
/// but identified by 32-bit ids; a bare `as u32` cast on a table length
/// would silently wrap past `u32::MAX` entities and alias an unrelated
/// early id. Every index-to-id conversion goes through `try_new` instead
/// (the same discipline `ClockPool`/`TraceIndex` use for `ClockId`), and
/// this typed error is what the failure looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdOverflow {
    /// Which id space overflowed (e.g. `"thread"`).
    pub kind: &'static str,
    /// The offending table index.
    pub index: usize,
}

impl fmt::Display for IdOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} id overflow: index {} does not fit the 32-bit id space",
            self.kind, self.index
        )
    }
}

impl std::error::Error for IdOverflow {}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $kind:literal) => {
        $(#[$doc])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            Eq,
            PartialOrd,
            Ord,
            Hash,
            Default,
            Serialize,
            Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Checked construction from a table index: an [`IdOverflow`]
            /// once the index has outgrown the 32-bit id space, instead of
            /// the silent wrap a bare `as u32` cast would produce.
            pub fn try_new(index: usize) -> Result<Self, IdOverflow> {
                u32::try_from(index).map($name).map_err(|_| IdOverflow {
                    kind: $kind,
                    index,
                })
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A simulated thread. The root thread is always `ThreadId(0)`; children
    /// are numbered in fork order, which makes thread ids deterministic.
    ThreadId,
    "thd",
    "thread"
);
id_type!(
    /// A script (static thread body) within a workload.
    ScriptId,
    "script",
    "script"
);
id_type!(
    /// A mutex within a workload.
    LockId,
    "lock",
    "lock"
);
id_type!(
    /// A sticky (manual-reset) event within a workload.
    EventId,
    "event",
    "event"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(ThreadId(0).to_string(), "thd0");
        assert_eq!(ScriptId(2).to_string(), "script2");
        assert_eq!(LockId(1).to_string(), "lock1");
        assert_eq!(EventId(3).to_string(), "event3");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ThreadId(1) < ThreadId(2));
        assert_eq!(ThreadId::default(), ThreadId(0));
    }

    #[test]
    fn try_new_accepts_in_range_indices() {
        assert_eq!(ThreadId::try_new(0), Ok(ThreadId(0)));
        assert_eq!(ThreadId::try_new(u32::MAX as usize), Ok(ThreadId(u32::MAX)));
    }

    #[test]
    fn try_new_rejects_overflow_with_a_typed_error() {
        let err = ThreadId::try_new(u32::MAX as usize + 1).unwrap_err();
        assert_eq!(err.kind, "thread");
        assert_eq!(err.index, u32::MAX as usize + 1);
        assert!(err.to_string().contains("thread id overflow"));
        assert!(ScriptId::try_new(usize::MAX).is_err());
    }
}
