//! Identifiers for simulated threads, scripts, and synchronization objects.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            Eq,
            PartialOrd,
            Ord,
            Hash,
            Default,
            Serialize,
            Deserialize,
        )]
        pub struct $name(pub u32);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A simulated thread. The root thread is always `ThreadId(0)`; children
    /// are numbered in fork order, which makes thread ids deterministic.
    ThreadId,
    "thd"
);
id_type!(
    /// A script (static thread body) within a workload.
    ScriptId,
    "script"
);
id_type!(
    /// A mutex within a workload.
    LockId,
    "lock"
);
id_type!(
    /// A sticky (manual-reset) event within a workload.
    EventId,
    "event"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(ThreadId(0).to_string(), "thd0");
        assert_eq!(ScriptId(2).to_string(), "script2");
        assert_eq!(LockId(1).to_string(), "lock1");
        assert_eq!(EventId(3).to_string(), "event3");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ThreadId(1) < ThreadId(2));
        assert_eq!(ThreadId::default(), ThreadId(0));
    }
}
