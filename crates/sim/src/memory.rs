//! Modeled memory subsystem: store-buffer semantics for weak models.
//!
//! The engine is sequentially consistent by default: an `Init`/`Dispose`
//! writes the shared reference cell the instant it executes, so no thread
//! can ever read a stale (pre-init / post-dispose) value. Real hardware is
//! weaker — a store lingers in the writing core's store buffer until it
//! drains, and only *drain points* (fences, lock operations) bound how
//! long. MemOrder bugs that only fire under that reordering are invisible
//! to an SC simulator; this module adds them as a modeled, opt-in
//! subsystem (ROADMAP item 3(a), following "Don't sit on the fence" and
//! the reorder-bounded-BMC line of related work).
//!
//! Semantics, by [`MemoryModel`]:
//!
//! - [`Sc`](MemoryModel::Sc) (default): stores apply immediately. The
//!   engine takes exactly the pre-existing code path — every result is
//!   byte-identical to the simulator before this module existed.
//! - [`Tso`](MemoryModel::Tso): each thread owns one FIFO store buffer.
//!   A store executes (validates against the thread's own view, counts in
//!   heap stats, appears in the trace) at its program-order time but the
//!   shared cell is only written when the entry *drains*. Reads hit the
//!   thread's own buffer first (a core always sees its own stores), then
//!   shared memory. Buffer order is preserved: an entry never drains
//!   before an earlier entry of the same buffer.
//! - [`Pso`](MemoryModel::Pso): like TSO, but FIFO only *per location* —
//!   stores to different objects may drain out of program order (the
//!   data/flag publication bug class TSO still protects).
//!
//! When a store drains is the [`DrainPolicy`]:
//!
//! - [`EveryStore`](DrainPolicy::EveryStore): the buffer drains at the
//!   store itself. The buffer machinery runs (validate against the own
//!   view, commit separately) but is never observable — runs are
//!   byte-identical to `Sc`, which is the equivalence the proptests pin.
//!   Injected delays pause the storing thread classically, exactly as
//!   under `Sc`.
//! - [`Window`](DrainPolicy::Window): a store drains `latency` after it
//!   executes (subject to timing noise), or earlier at a forced drain
//!   point: lock acquire/release, fork, join, thread exit, or an explicit
//!   [`Op::Fence`](crate::op::Op::Fence). Crucially, an injected delay at
//!   a store does **not** pause the thread here — it stretches the
//!   store's drain time while the thread runs ahead. That is what turns
//!   WAFFLE's delay injection into a weak-memory exposure tool: the
//!   thread publishes its signal on time, but the delayed store is still
//!   sitting in the buffer when the reader looks, so the reader observes
//!   the stale value. The candidate/interference machinery upstream is
//!   unchanged; only what a delay *means* at a store differs.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Which memory consistency model the simulated hardware provides.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum MemoryModel {
    /// Sequential consistency: stores are globally visible immediately.
    #[default]
    Sc,
    /// Total store order: one FIFO store buffer per thread.
    Tso,
    /// Partial store order: per-location FIFO — stores to different
    /// objects may drain out of program order.
    Pso,
}

impl MemoryModel {
    /// Parses a CLI spelling (`sc` / `tso` / `pso`, case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "sc" => Some(Self::Sc),
            "tso" => Some(Self::Tso),
            "pso" => Some(Self::Pso),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Sc => "sc",
            Self::Tso => "tso",
            Self::Pso => "pso",
        }
    }

    /// Whether stores go through a store buffer at all.
    pub fn is_weak(self) -> bool {
        !matches!(self, Self::Sc)
    }

    /// Whether this is the sequentially consistent default (serializers
    /// omit the field under `Sc` so default-model artifacts stay
    /// byte-identical to their pre-weak-memory serializations).
    pub fn is_sc(&self) -> bool {
        matches!(self, Self::Sc)
    }
}

impl std::fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// When a buffered store becomes globally visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DrainPolicy {
    /// Drain at the store itself: the buffer is never observable and runs
    /// are byte-identical to [`MemoryModel::Sc`].
    EveryStore,
    /// Drain `latency` after the store executes (noised like any service
    /// time), or earlier at a forced drain point. Injected delays at
    /// stores stretch the drain instead of pausing the thread.
    Window {
        /// Nominal residence time of a store in the buffer.
        latency: SimTime,
    },
}

/// Default store-buffer residence time under [`DrainPolicy::Window`]:
/// long enough to be a real reordering window, far below the ≥2ms racing
/// gaps the fuzzer plants (so weak-memory bugs stay *latent* until a
/// delay stretches the drain past the reader).
pub const DEFAULT_DRAIN_LATENCY: SimTime = SimTime::from_us(50);

impl Default for DrainPolicy {
    fn default() -> Self {
        Self::Window {
            latency: DEFAULT_DRAIN_LATENCY,
        }
    }
}

/// The memory subsystem configuration carried by
/// [`SimConfig`](crate::engine::SimConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// The consistency model.
    pub model: MemoryModel,
    /// When buffered stores drain (ignored under `Sc`).
    pub drain: DrainPolicy,
}

impl MemoryConfig {
    /// Sequential consistency (the default).
    pub fn sc() -> Self {
        Self::default()
    }

    /// `model` with the default drain window.
    pub fn weak(model: MemoryModel) -> Self {
        Self {
            model,
            drain: DrainPolicy::default(),
        }
    }

    /// [`sc`](Self::sc) for `Sc`, [`weak`](Self::weak) otherwise: the
    /// one-argument form CLI/harness layers use.
    pub fn from_model(model: MemoryModel) -> Self {
        if model.is_weak() {
            Self::weak(model)
        } else {
            Self::sc()
        }
    }

    /// Whether the engine must run the store-buffer machinery.
    pub fn buffered(&self) -> bool {
        self.model.is_weak()
    }

    /// Whether an injected delay at a store stretches the drain instead of
    /// pausing the thread.
    pub fn delay_stretches_drain(&self) -> bool {
        self.buffered() && matches!(self.drain, DrainPolicy::Window { .. })
    }

    /// The nominal drain latency (zero under `EveryStore`).
    pub fn latency(&self) -> SimTime {
        match self.drain {
            DrainPolicy::EveryStore => SimTime::ZERO,
            DrainPolicy::Window { latency } => latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_name_round_trip() {
        for m in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            assert_eq!(MemoryModel::parse(m.name()), Some(m));
        }
        assert_eq!(MemoryModel::parse("TSO"), Some(MemoryModel::Tso));
        assert_eq!(MemoryModel::parse("weak"), None);
    }

    #[test]
    fn default_is_sequentially_consistent() {
        let cfg = MemoryConfig::default();
        assert!(cfg.model.is_sc());
        assert!(!cfg.buffered());
        assert!(!cfg.delay_stretches_drain());
    }

    #[test]
    fn every_store_drains_never_stretch_delays() {
        let cfg = MemoryConfig {
            model: MemoryModel::Tso,
            drain: DrainPolicy::EveryStore,
        };
        assert!(cfg.buffered());
        assert!(!cfg.delay_stretches_drain());
        assert_eq!(cfg.latency(), SimTime::ZERO);
    }

    #[test]
    fn weak_window_stretches_delays() {
        let cfg = MemoryConfig::weak(MemoryModel::Pso);
        assert!(cfg.delay_stretches_drain());
        assert_eq!(cfg.latency(), DEFAULT_DRAIN_LATENCY);
    }
}
