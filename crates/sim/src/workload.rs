//! Workloads and their builders.
//!
//! A [`Workload`] is the simulated analogue of "one test input": a set of
//! pre-declared heap objects, locks, and events, plus thread scripts, with
//! every instrumented operation tagged by a stable [`SiteId`](waffle_mem::SiteId). Builders
//! register sites deterministically (by name, in construction order), so
//! the same workload construction yields identical site ids in every run —
//! which is what lets plans and decay state persist across runs.

use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, ObjectId, SiteRegistry};

use crate::ids::{EventId, LockId, ScriptId};
use crate::op::{Cond, Op, Script};
use crate::time::SimTime;

/// A complete simulated test input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Name, conventionally `"<app>.<test>"`.
    pub name: String,
    /// Static site table.
    pub sites: SiteRegistry,
    /// Thread scripts; `scripts[main.0]` is the entry script.
    pub scripts: Vec<Script>,
    /// Entry script run by the root thread.
    pub main: ScriptId,
    /// Number of pre-declared heap objects.
    pub n_objects: u32,
    /// Number of mutexes.
    pub n_locks: u32,
    /// Number of sticky events.
    pub n_events: u32,
}

impl Workload {
    /// Returns the script for `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range (workload construction bug).
    pub fn script(&self, id: ScriptId) -> &Script {
        &self.scripts[id.0 as usize]
    }

    /// Total static operations across all scripts.
    pub fn total_ops(&self) -> usize {
        self.scripts.iter().map(|s| s.ops.len()).sum()
    }

    /// Number of static instrumentation sites of the MemOrder class.
    pub fn mem_order_sites(&self) -> usize {
        self.sites.count_where(AccessKind::is_mem_order)
    }

    /// Number of static instrumentation sites of the TSV class.
    pub fn tsv_sites(&self) -> usize {
        self.sites.count_where(AccessKind::is_tsv)
    }

    /// Checks referential integrity: every op's object, lock, event, and
    /// script reference is in range, and every `Access` site is
    /// registered. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let check = |cond: bool, msg: String| if cond { Ok(()) } else { Err(msg) };
        for (si, script) in self.scripts.iter().enumerate() {
            for (oi, op) in script.ops.iter().enumerate() {
                let at = format!("script {:?} op {oi}", script.name);
                match op {
                    Op::Access { obj, site, .. } => {
                        check(obj.0 < self.n_objects, format!("{at}: object {obj} undeclared"))?;
                        check(
                            self.sites.info(*site).is_some(),
                            format!("{at}: site {site} unregistered"),
                        )?;
                    }
                    Op::SkipIf { obj, skip, .. } => {
                        check(obj.0 < self.n_objects, format!("{at}: object {obj} undeclared"))?;
                        check(
                            oi + 1 + *skip as usize <= script.ops.len(),
                            format!("{at}: skip {skip} runs past the script end"),
                        )?;
                    }
                    Op::Fork { script } | Op::JoinScript { script } | Op::SpawnTask { script } => {
                        check(
                            (script.0 as usize) < self.scripts.len(),
                            format!("{at}: script {script} undeclared"),
                        )?;
                    }
                    Op::Acquire { lock } | Op::Release { lock } => {
                        check(lock.0 < self.n_locks, format!("{at}: lock {lock} undeclared"))?;
                    }
                    Op::SignalEvent { ev } | Op::WaitEvent { ev } => {
                        check(ev.0 < self.n_events, format!("{at}: event {ev} undeclared"))?;
                    }
                    _ => {}
                }
            }
            let _ = si;
        }
        check(
            (self.main.0 as usize) < self.scripts.len(),
            format!("main script {} undeclared", self.main),
        )
    }
}

/// Builder for [`Workload`]s.
#[derive(Debug, Default)]
pub struct WorkloadBuilder {
    name: String,
    sites: SiteRegistry,
    scripts: Vec<Script>,
    n_objects: u32,
    n_locks: u32,
    n_events: u32,
    main: Option<ScriptId>,
}

impl WorkloadBuilder {
    /// Starts a workload named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Declares a heap object (the `_name` is documentation only).
    pub fn object(&mut self, _name: &str) -> ObjectId {
        let id = ObjectId(self.n_objects);
        self.n_objects += 1;
        id
    }

    /// Declares `n` heap objects.
    pub fn objects(&mut self, _name: &str, n: u32) -> Vec<ObjectId> {
        (0..n).map(|_| self.object(_name)).collect()
    }

    /// Declares a mutex.
    pub fn lock(&mut self, _name: &str) -> LockId {
        let id = LockId(self.n_locks);
        self.n_locks += 1;
        id
    }

    /// Declares a sticky event.
    pub fn event(&mut self, _name: &str) -> EventId {
        let id = EventId(self.n_events);
        self.n_events += 1;
        id
    }

    /// Pre-declares an empty script so it can be referenced (forked) before
    /// it is defined. Define it later with [`define_script`].
    ///
    /// [`define_script`]: WorkloadBuilder::define_script
    pub fn declare_script(&mut self, name: impl Into<String>) -> ScriptId {
        let id = ScriptId(self.scripts.len() as u32);
        self.scripts.push(Script {
            name: name.into(),
            ops: Vec::new(),
        });
        id
    }

    /// Fills in the body of a previously declared script.
    ///
    /// # Panics
    ///
    /// Panics when the script was already defined.
    pub fn define_script(&mut self, id: ScriptId, build: impl FnOnce(&mut ScriptBuilder<'_>)) {
        assert!(
            self.scripts[id.0 as usize].ops.is_empty(),
            "script {} defined twice",
            self.scripts[id.0 as usize].name
        );
        let mut ops = Vec::new();
        {
            let mut sb = ScriptBuilder {
                sites: &mut self.sites,
                ops: &mut ops,
            };
            build(&mut sb);
        }
        self.scripts[id.0 as usize].ops = ops;
    }

    /// Declares and defines a script in one step.
    pub fn script(
        &mut self,
        name: impl Into<String>,
        build: impl FnOnce(&mut ScriptBuilder<'_>),
    ) -> ScriptId {
        let id = self.declare_script(name);
        self.define_script(id, build);
        id
    }

    /// Marks the entry script.
    pub fn main(&mut self, id: ScriptId) -> &mut Self {
        self.main = Some(id);
        self
    }

    /// Finalizes the workload.
    ///
    /// # Panics
    ///
    /// Panics when no entry script was set.
    pub fn build(self) -> Workload {
        let main = self.main.expect("workload has no main script");
        let w = Workload {
            name: self.name,
            sites: self.sites,
            scripts: self.scripts,
            main,
            n_objects: self.n_objects,
            n_locks: self.n_locks,
            n_events: self.n_events,
        };
        if let Err(e) = w.validate() {
            panic!("invalid workload {:?}: {e}", w.name);
        }
        w
    }
}

/// Appends operations to one script; created by [`WorkloadBuilder`].
#[derive(Debug)]
pub struct ScriptBuilder<'a> {
    sites: &'a mut SiteRegistry,
    ops: &'a mut Vec<Op>,
}

impl ScriptBuilder<'_> {
    /// Local computation (subject to timing noise).
    pub fn compute(&mut self, dur: SimTime) -> &mut Self {
        self.ops.push(Op::Compute { dur });
        self
    }

    /// Fixed-duration padding, exempt from timing noise (models setup and
    /// teardown phases whose duration does not vary run to run).
    pub fn pad(&mut self, dur: SimTime) -> &mut Self {
        self.ops.push(Op::Pad { dur });
        self
    }

    /// Instrumented access with explicit kind.
    pub fn access(
        &mut self,
        obj: ObjectId,
        kind: AccessKind,
        site: &str,
        dur: SimTime,
    ) -> &mut Self {
        let site = self.sites.register(site, kind);
        self.ops.push(Op::Access {
            obj,
            kind,
            site,
            dur,
        });
        self
    }

    /// Object initialization (NULL → live).
    pub fn init(&mut self, obj: ObjectId, site: &str, dur: SimTime) -> &mut Self {
        self.access(obj, AccessKind::Init, site, dur)
    }

    /// Object use (field access / method call).
    pub fn use_(&mut self, obj: ObjectId, site: &str, dur: SimTime) -> &mut Self {
        self.access(obj, AccessKind::Use, site, dur)
    }

    /// Object disposal (live → NULL).
    pub fn dispose(&mut self, obj: ObjectId, site: &str, dur: SimTime) -> &mut Self {
        self.access(obj, AccessKind::Dispose, site, dur)
    }

    /// Thread-unsafe API call (TSV instrumentation class); `dur` is the
    /// call's execution window.
    pub fn unsafe_call(&mut self, obj: ObjectId, site: &str, dur: SimTime) -> &mut Self {
        self.access(obj, AccessKind::UnsafeApiCall, site, dur)
    }

    /// Fork a thread running `script`.
    pub fn fork(&mut self, script: ScriptId) -> &mut Self {
        self.ops.push(Op::Fork { script });
        self
    }

    /// Fork `n` threads running `script`.
    pub fn fork_n(&mut self, script: ScriptId, n: u32) -> &mut Self {
        for _ in 0..n {
            self.fork(script);
        }
        self
    }

    /// Wait for every already-forked thread of `script`.
    pub fn join_script(&mut self, script: ScriptId) -> &mut Self {
        self.ops.push(Op::JoinScript { script });
        self
    }

    /// Wait for all direct children.
    pub fn join_children(&mut self) -> &mut Self {
        self.ops.push(Op::JoinChildren);
        self
    }

    /// Acquire a mutex.
    pub fn acquire(&mut self, lock: LockId) -> &mut Self {
        self.ops.push(Op::Acquire { lock });
        self
    }

    /// Release a mutex.
    pub fn release(&mut self, lock: LockId) -> &mut Self {
        self.ops.push(Op::Release { lock });
        self
    }

    /// Signal a sticky event.
    pub fn signal(&mut self, ev: EventId) -> &mut Self {
        self.ops.push(Op::SignalEvent { ev });
        self
    }

    /// Wait for a sticky event.
    pub fn wait(&mut self, ev: EventId) -> &mut Self {
        self.ops.push(Op::WaitEvent { ev });
        self
    }

    /// Raise a handled application exception (graceful thread exit).
    pub fn throw(&mut self, site: &str) -> &mut Self {
        // A `throw` site is a use-class location for bookkeeping purposes
        // but is not instrumented (it is not an `Op::Access`).
        let site = self.sites.register(site, AccessKind::Use);
        self.ops.push(Op::Throw { site });
        self
    }

    /// Skip the next `skip` ops when `cond` holds for `obj`.
    pub fn skip_if(&mut self, obj: ObjectId, cond: Cond, skip: u32) -> &mut Self {
        self.ops.push(Op::SkipIf { obj, cond, skip });
        self
    }

    /// Enqueue `script` as a task (async-local inheritance from the
    /// spawning context).
    pub fn spawn_task(&mut self, script: ScriptId) -> &mut Self {
        self.ops.push(Op::SpawnTask { script });
        self
    }

    /// Drain the task queue on this thread (pool-worker loop).
    pub fn run_tasks(&mut self) -> &mut Self {
        self.ops.push(Op::RunTasks);
        self
    }

    /// Terminate the thread early.
    pub fn exit(&mut self) -> &mut Self {
        self.ops.push(Op::Exit);
        self
    }

    /// Full memory fence: drains this thread's store buffer under a weak
    /// memory model; a no-op under sequential consistency.
    pub fn fence(&mut self) -> &mut Self {
        self.ops.push(Op::Fence);
        self
    }

    /// Repeats `build` `n` times (loop unrolling); the iteration index is
    /// passed so bodies can vary objects or site names per iteration.
    pub fn repeat(&mut self, n: u32, mut build: impl FnMut(&mut Self, u32)) -> &mut Self {
        for i in 0..n {
            build(self, i);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    #[test]
    fn builder_assembles_workload() {
        let mut b = WorkloadBuilder::new("demo.t1");
        let obj = b.object("o");
        let lk = b.lock("mu");
        let ev = b.event("done");
        let worker = b.script("worker", |s| {
            s.wait(ev).acquire(lk).use_(obj, "W.use:1", us(5)).release(lk);
        });
        let main = b.script("main", |s| {
            s.init(obj, "M.ctor:1", us(10))
                .fork(worker)
                .signal(ev)
                .join_children()
                .dispose(obj, "M.drop:9", us(5));
        });
        b.main(main);
        let w = b.build();
        assert_eq!(w.name, "demo.t1");
        assert_eq!(w.scripts.len(), 2);
        assert_eq!(w.n_objects, 1);
        assert_eq!(w.mem_order_sites(), 3);
        assert_eq!(w.tsv_sites(), 0);
        assert_eq!(w.script(main).ops.len(), 5);
        assert_eq!(w.total_ops(), 9);
    }

    #[test]
    fn sites_are_stable_across_rebuilds() {
        let build = || {
            let mut b = WorkloadBuilder::new("x");
            let o = b.object("o");
            let s = b.script("m", |s| {
                s.init(o, "a", us(1)).use_(o, "b", us(1));
            });
            b.main(s);
            b.build()
        };
        let w1 = build();
        let w2 = build();
        assert_eq!(w1.sites.lookup("a"), w2.sites.lookup("a"));
        assert_eq!(w1.sites.lookup("b"), w2.sites.lookup("b"));
    }

    #[test]
    fn repeat_unrolls_loops() {
        let mut b = WorkloadBuilder::new("x");
        let objs = b.objects("msg", 4);
        let s = b.script("m", |s| {
            s.repeat(4, |s, i| {
                s.init(objs[i as usize], &format!("loop.init:{i}"), us(1));
            });
        });
        b.main(s);
        let w = b.build();
        assert_eq!(w.script(s).ops.len(), 4);
        assert_eq!(w.mem_order_sites(), 4);
    }

    #[test]
    #[should_panic(expected = "no main script")]
    fn build_without_main_panics() {
        WorkloadBuilder::new("x").build();
    }

    #[test]
    fn validate_catches_dangling_references() {
        // Hand-assemble a workload referencing an undeclared object.
        let mut b = WorkloadBuilder::new("bad");
        let o = b.object("o");
        let m = b.script("main", move |s| {
            s.init(o, "i", us(1));
        });
        b.main(m);
        let mut w = b.build();
        w.n_objects = 0; // Corrupt it.
        let err = w.validate().unwrap_err();
        assert!(err.contains("undeclared"), "{err}");
    }

    #[test]
    fn validate_catches_overlong_skips() {
        let mut b = WorkloadBuilder::new("bad-skip");
        let o = b.object("o");
        let m = b.script("main", move |s| {
            s.skip_if(o, crate::op::Cond::IsNull, 5).compute(us(1));
        });
        b.main(m);
        // `build` itself panics on the invalid skip.
        let result = std::panic::catch_unwind(move || b.build());
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_define_panics() {
        let mut b = WorkloadBuilder::new("x");
        let id = b.declare_script("s");
        b.define_script(id, |s| {
            s.compute(us(1));
        });
        b.define_script(id, |s| {
            s.compute(us(1));
        });
    }
}
