//! Synchronization-repair patches over workload models.
//!
//! A [`RepairPatch`] is a small, mechanical edit to a [`Workload`]: insert a
//! fence after a store, thread a fresh sticky event between two racing
//! segments, or wrap both racing regions in a fresh mutex. Patches are
//! *candidates* — the schedule oracle decides whether a patched workload is
//! actually unexposable — so this module only guarantees that applying a
//! patch yields a structurally valid workload and that every insertion
//! respects existing `SkipIf` guard windows (an op inserted inside a guard's
//! span must stay inside it, or the guard would start skipping the wrong
//! ops).
//!
//! The candidate grammar and its enumeration live in `waffle_analysis`; the
//! oracle-backed certification loop lives in `waffle_fuzz`.

use serde::{Deserialize, Serialize};

use crate::ids::{EventId, LockId, ScriptId};
use crate::op::Op;
use crate::workload::Workload;

/// The three shapes the repair grammar can produce, in ascending cost
/// order: a fence is free at the source level, an event edge adds one
/// blocking handoff, a lock serializes two whole regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairKind {
    /// `Op::Fence` inserted after the offending store (weak-memory bugs).
    Fence,
    /// A fresh sticky event: `SignalEvent` after the earlier access,
    /// `WaitEvent` before the later one.
    EventEdge,
    /// A fresh mutex wrapped around both racing regions.
    LockScope,
}

impl RepairKind {
    /// Stable label used in reports and metrics keys.
    pub fn label(&self) -> &'static str {
        match self {
            RepairKind::Fence => "fence",
            RepairKind::EventEdge => "event-edge",
            RepairKind::LockScope => "lock",
        }
    }

    /// Position in the cost order `fence < event edge < lock`.
    pub fn cost(&self) -> u32 {
        match self {
            RepairKind::Fence => 0,
            RepairKind::EventEdge => 1,
            RepairKind::LockScope => 2,
        }
    }
}

/// One concrete candidate patch. Positions are op indices into the *unpatched*
/// script; `apply` performs all insertions atomically so indices never need
/// pre-adjustment by the caller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairPatch {
    /// Insert `Op::Fence` immediately after `scripts[script].ops[pos]`.
    Fence {
        /// Script holding the offending store.
        script: ScriptId,
        /// Op index of the store; the fence lands at `pos + 1`.
        pos: usize,
    },
    /// Allocate a fresh event; insert `SignalEvent` immediately after
    /// `signal_pos` in `signal_script` and `WaitEvent` immediately before
    /// `wait_pos` in `wait_script`.
    EventEdge {
        /// Script of the access that must happen first.
        signal_script: ScriptId,
        /// Op index of that access; the signal lands at `signal_pos + 1`.
        signal_pos: usize,
        /// Script of the access that must happen second.
        wait_script: ScriptId,
        /// Op index of that access; the wait lands at `wait_pos`.
        wait_pos: usize,
    },
    /// Allocate a fresh lock; wrap the inclusive op ranges
    /// `[a_start, a_end]` of `a_script` and `[b_start, b_end]` of
    /// `b_script` in `Acquire`/`Release`.
    LockScope {
        /// Script of the first racing region.
        a_script: ScriptId,
        /// First op of the first region.
        a_start: usize,
        /// Last op of the first region (inclusive).
        a_end: usize,
        /// Script of the second racing region.
        b_script: ScriptId,
        /// First op of the second region.
        b_start: usize,
        /// Last op of the second region (inclusive).
        b_end: usize,
    },
}

/// A single op insertion: `op` lands at index `pos` of script `script`.
struct Insertion {
    script: usize,
    pos: usize,
    op: Op,
}

impl RepairPatch {
    /// The grammar production this patch instantiates.
    pub fn kind(&self) -> RepairKind {
        match self {
            RepairPatch::Fence { .. } => RepairKind::Fence,
            RepairPatch::EventEdge { .. } => RepairKind::EventEdge,
            RepairPatch::LockScope { .. } => RepairKind::LockScope,
        }
    }

    /// Cost of this patch in the `fence < event edge < lock` order.
    pub fn cost(&self) -> u32 {
        self.kind().cost()
    }

    /// Human-readable one-line description against the unpatched workload.
    pub fn describe(&self, w: &Workload) -> String {
        let site_at = |script: ScriptId, pos: usize| -> String {
            match w.scripts.get(script.0 as usize).and_then(|s| s.ops.get(pos)) {
                Some(Op::Access { site, .. }) => w.sites.name(*site).to_string(),
                _ => format!("op {pos}"),
            }
        };
        let script_name = |script: ScriptId| -> &str {
            w.scripts
                .get(script.0 as usize)
                .map(|s| s.name.as_str())
                .unwrap_or("?")
        };
        match self {
            RepairPatch::Fence { script, pos } => format!(
                "fence after {} in {}",
                site_at(*script, *pos),
                script_name(*script)
            ),
            RepairPatch::EventEdge {
                signal_script,
                signal_pos,
                wait_script,
                wait_pos,
            } => format!(
                "event edge: signal after {} in {} -> wait before {} in {}",
                site_at(*signal_script, *signal_pos),
                script_name(*signal_script),
                site_at(*wait_script, *wait_pos),
                script_name(*wait_script)
            ),
            RepairPatch::LockScope {
                a_script,
                a_start,
                a_end,
                b_script,
                b_start,
                b_end,
            } => format!(
                "lock scope over {}[{}..={}] and {}[{}..={}]",
                script_name(*a_script),
                a_start,
                a_end,
                script_name(*b_script),
                b_start,
                b_end
            ),
        }
    }

    /// Applies the patch to a clone of `w`, returning the patched workload.
    ///
    /// Fails if any referenced script or op index is out of range, or if the
    /// patched workload does not validate.
    pub fn apply(&self, w: &Workload) -> Result<Workload, String> {
        let insertions = self.insertions(w)?;
        let (events, locks) = match self {
            RepairPatch::Fence { .. } => (0, 0),
            RepairPatch::EventEdge { .. } => (1, 0),
            RepairPatch::LockScope { .. } => (0, 1),
        };
        apply_insertions(w, insertions, events, locks)
    }

    /// Every strictly weaker variant of this patch, labeled: dropping the
    /// fence, keeping only one half of the event edge, shrinking the lock
    /// scope to a single region, or dropping the patch outright. Used by the
    /// minimality property — each weakening must flip the oracle back to
    /// exposable. The lone `WaitEvent` weakening is deliberately absent: a
    /// wait on an event nobody signals deadlocks, and a deadlocked schedule
    /// space would let the oracle certify vacuously.
    pub fn weakenings(&self, w: &Workload) -> Vec<(&'static str, Workload)> {
        let mut out = Vec::new();
        match self {
            RepairPatch::Fence { .. } => {
                out.push(("drop-fence", w.clone()));
            }
            RepairPatch::EventEdge {
                signal_script,
                signal_pos,
                ..
            } => {
                let signal_only = apply_insertions(
                    w,
                    vec![Insertion {
                        script: signal_script.0 as usize,
                        pos: signal_pos + 1,
                        op: Op::SignalEvent {
                            ev: EventId(w.n_events),
                        },
                    }],
                    1,
                    0,
                )
                .expect("signal-only weakening of an applicable edge applies");
                out.push(("drop-wait", signal_only));
                out.push(("drop-edge", w.clone()));
            }
            RepairPatch::LockScope {
                a_script,
                a_start,
                a_end,
                b_script,
                b_start,
                b_end,
            } => {
                let one_region = |script: ScriptId, start: usize, end: usize| {
                    apply_insertions(
                        w,
                        lock_region(script, start, end, LockId(w.n_locks)),
                        0,
                        1,
                    )
                    .expect("single-region weakening of an applicable lock applies")
                };
                out.push((
                    "shrink-to-first",
                    one_region(*a_script, *a_start, *a_end),
                ));
                out.push((
                    "shrink-to-second",
                    one_region(*b_script, *b_start, *b_end),
                ));
                out.push(("drop-lock", w.clone()));
            }
        }
        out
    }

    /// The raw insertion list for this patch against `w`, with bounds
    /// checks but before any index shifting.
    fn insertions(&self, w: &Workload) -> Result<Vec<Insertion>, String> {
        let ops_len = |script: ScriptId| -> Result<usize, String> {
            w.scripts
                .get(script.0 as usize)
                .map(|s| s.ops.len())
                .ok_or_else(|| format!("repair: script {script} out of range"))
        };
        match self {
            RepairPatch::Fence { script, pos } => {
                let len = ops_len(*script)?;
                if *pos >= len {
                    return Err(format!("repair: fence position {pos} out of range"));
                }
                Ok(vec![Insertion {
                    script: script.0 as usize,
                    pos: pos + 1,
                    op: Op::Fence,
                }])
            }
            RepairPatch::EventEdge {
                signal_script,
                signal_pos,
                wait_script,
                wait_pos,
            } => {
                let slen = ops_len(*signal_script)?;
                let wlen = ops_len(*wait_script)?;
                if *signal_pos >= slen || *wait_pos >= wlen {
                    return Err("repair: event-edge position out of range".into());
                }
                let ev = EventId(w.n_events);
                Ok(vec![
                    Insertion {
                        script: signal_script.0 as usize,
                        pos: signal_pos + 1,
                        op: Op::SignalEvent { ev },
                    },
                    Insertion {
                        script: wait_script.0 as usize,
                        pos: *wait_pos,
                        op: Op::WaitEvent { ev },
                    },
                ])
            }
            RepairPatch::LockScope {
                a_script,
                a_start,
                a_end,
                b_script,
                b_start,
                b_end,
            } => {
                for (script, start, end) in
                    [(*a_script, *a_start, *a_end), (*b_script, *b_start, *b_end)]
                {
                    let len = ops_len(script)?;
                    if start > end || end >= len {
                        return Err(format!(
                            "repair: lock region {start}..={end} out of range in {script}"
                        ));
                    }
                }
                let lock = LockId(w.n_locks);
                let mut out = lock_region(*a_script, *a_start, *a_end, lock);
                out.extend(lock_region(*b_script, *b_start, *b_end, lock));
                Ok(out)
            }
        }
    }
}

/// Acquire-before / release-after insertions for one inclusive op region.
fn lock_region(script: ScriptId, start: usize, end: usize, lock: LockId) -> Vec<Insertion> {
    vec![
        Insertion {
            script: script.0 as usize,
            pos: start,
            op: Op::Acquire { lock },
        },
        Insertion {
            script: script.0 as usize,
            pos: end + 1,
            op: Op::Release { lock },
        },
    ]
}

/// Splices `insertions` into a clone of `w`, allocating `events` fresh
/// events and `locks` fresh locks, then validates.
///
/// Per script, insertions run in descending position order so earlier
/// positions stay valid. Each insertion at position `p` first widens any
/// `SkipIf` guard whose span `[i+1, i+skip]` contains `p` — the inserted op
/// becomes part of the guarded window, so a taken skip jumps over it too.
/// An insertion at `i + skip + 1` is just *past* the span and the guard is
/// left alone.
fn apply_insertions(
    w: &Workload,
    mut insertions: Vec<Insertion>,
    events: u32,
    locks: u32,
) -> Result<Workload, String> {
    let mut patched = w.clone();
    patched.n_events += events;
    patched.n_locks += locks;
    // Descending by position; for equal positions, later list entries go
    // first so the earlier entry ends up in front after both inserts.
    insertions.sort_by_key(|ins| std::cmp::Reverse((ins.script, ins.pos)));
    for ins in insertions {
        let ops = &mut patched
            .scripts
            .get_mut(ins.script)
            .ok_or_else(|| format!("repair: script index {} out of range", ins.script))?
            .ops;
        if ins.pos > ops.len() {
            return Err(format!(
                "repair: insertion at {} past end of script {}",
                ins.pos, ins.script
            ));
        }
        for (i, op) in ops.iter_mut().enumerate().take(ins.pos) {
            if let Op::SkipIf { skip, .. } = op {
                if ins.pos <= i + *skip as usize {
                    *skip += 1;
                }
            }
        }
        ops.insert(ins.pos, ins.op);
    }
    patched.validate().map_err(|e| format!("repair: {e}"))?;
    Ok(patched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Cond;
    use crate::time::SimTime;
    use crate::workload::WorkloadBuilder;

    /// main: init(obj) / fork(reader) / dispose(obj); reader guarded by a
    /// SkipIf window over its use — the shape every guard-aware insertion
    /// must handle.
    fn guarded() -> Workload {
        let mut b = WorkloadBuilder::new("repair.guarded");
        let obj = b.object("obj");
        let reader = b.script("reader", move |s| {
            s.compute(SimTime(2_000));
            s.skip_if(obj, Cond::IsDisposed, 1);
            s.use_(obj, "guarded.use", SimTime(40));
        });
        let m = b.script("main", move |s| {
            s.init(obj, "guarded.init", SimTime(40));
            s.fork(reader);
            s.dispose(obj, "guarded.dispose", SimTime(40));
            s.join_children();
        });
        b.main(m);
        b.build()
    }

    #[test]
    fn fence_inserts_after_the_store() {
        let w = guarded();
        let patch = RepairPatch::Fence {
            script: ScriptId(1),
            pos: 0,
        };
        let p = patch.apply(&w).expect("fence applies");
        assert_eq!(p.scripts[1].ops[1], Op::Fence);
        assert_eq!(p.scripts[1].ops.len(), w.scripts[1].ops.len() + 1);
        assert_eq!(p.n_events, w.n_events);
        assert_eq!(p.n_locks, w.n_locks);
    }

    #[test]
    fn event_edge_allocates_a_fresh_event() {
        let w = guarded();
        let patch = RepairPatch::EventEdge {
            signal_script: ScriptId(1),
            signal_pos: 0,
            wait_script: ScriptId(0),
            wait_pos: 0,
        };
        let p = patch.apply(&w).expect("edge applies");
        assert_eq!(p.n_events, w.n_events + 1);
        assert_eq!(
            p.scripts[1].ops[1],
            Op::SignalEvent {
                ev: EventId(w.n_events)
            }
        );
        assert_eq!(
            p.scripts[0].ops[0],
            Op::WaitEvent {
                ev: EventId(w.n_events)
            }
        );
    }

    #[test]
    fn insertion_inside_a_guard_window_widens_the_skip() {
        let w = guarded();
        // Wait inserted at position 2 (before the use) sits inside the
        // SkipIf span [2, 2], so the guard must widen to cover it: a taken
        // skip jumps both the wait and the use, never just one.
        let patch = RepairPatch::EventEdge {
            signal_script: ScriptId(1),
            signal_pos: 2,
            wait_script: ScriptId(0),
            wait_pos: 2,
        };
        let p = patch.apply(&w).expect("edge applies");
        match p.scripts[0].ops[1] {
            Op::SkipIf { skip, .. } => assert_eq!(skip, 2, "guard window widened"),
            ref other => panic!("expected SkipIf, got {other:?}"),
        }
    }

    #[test]
    fn lock_release_lands_outside_the_guard_window() {
        let w = guarded();
        // Region [1, 2] in the reader: acquire before the SkipIf, release
        // after the use. The release at span_end + 1 is outside the guard
        // window, so the skip count stays 1 and a taken skip still reaches
        // the release — no held-lock exit.
        let patch = RepairPatch::LockScope {
            a_script: ScriptId(0),
            a_start: 1,
            a_end: 2,
            b_script: ScriptId(1),
            b_start: 2,
            b_end: 2,
        };
        let p = patch.apply(&w).expect("lock applies");
        assert_eq!(p.n_locks, w.n_locks + 1);
        let reader = &p.scripts[0].ops;
        assert!(matches!(reader[1], Op::Acquire { .. }));
        match reader[2] {
            Op::SkipIf { skip, .. } => assert_eq!(skip, 1, "release stays outside the window"),
            ref other => panic!("expected SkipIf, got {other:?}"),
        }
        assert!(matches!(reader[4], Op::Release { .. }));
        let main = &p.scripts[1].ops;
        assert!(matches!(main[2], Op::Acquire { .. }));
        assert!(matches!(main[4], Op::Release { .. }));
    }

    #[test]
    fn weakenings_cover_every_strictly_weaker_shape() {
        let w = guarded();
        let fence = RepairPatch::Fence {
            script: ScriptId(1),
            pos: 0,
        };
        assert_eq!(
            fence
                .weakenings(&w)
                .iter()
                .map(|(l, _)| *l)
                .collect::<Vec<_>>(),
            ["drop-fence"]
        );
        let edge = RepairPatch::EventEdge {
            signal_script: ScriptId(1),
            signal_pos: 0,
            wait_script: ScriptId(0),
            wait_pos: 0,
        };
        let labels: Vec<_> = edge.weakenings(&w).iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["drop-wait", "drop-edge"]);
        let lock = RepairPatch::LockScope {
            a_script: ScriptId(0),
            a_start: 1,
            a_end: 2,
            b_script: ScriptId(1),
            b_start: 2,
            b_end: 2,
        };
        let labels: Vec<_> = lock.weakenings(&w).iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["shrink-to-first", "shrink-to-second", "drop-lock"]);
        for (label, weak) in lock.weakenings(&w) {
            weak.validate()
                .unwrap_or_else(|e| panic!("weakening {label} validates: {e}"));
        }
    }

    #[test]
    fn patches_round_trip_through_serde() {
        let patch = RepairPatch::LockScope {
            a_script: ScriptId(0),
            a_start: 1,
            a_end: 2,
            b_script: ScriptId(1),
            b_start: 2,
            b_end: 2,
        };
        let v = serde::Serialize::to_value(&patch);
        let back: RepairPatch = serde::Deserialize::from_value(&v).expect("round-trips");
        assert_eq!(back, patch);
        assert_eq!(patch.kind(), RepairKind::LockScope);
        assert_eq!(patch.cost(), 2);
        assert!(RepairKind::Fence.cost() < RepairKind::EventEdge.cost());
        assert!(RepairKind::EventEdge.cost() < RepairKind::LockScope.cost());
    }
}
