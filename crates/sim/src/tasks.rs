//! Task-oriented execution: spawn queues, pool workers, and async-local
//! state propagation.
//!
//! The paper notes (§4.1) that while Waffle tracks *threads*, .NET's
//! task-oriented programs need the analogous *async-local* storage: state
//! that propagates from a parent task to a child task "irrespective of
//! which thread these tasks are scheduled to run on". This module adds
//! tasks to the simulator:
//!
//! - [`Op::SpawnTask`](crate::op::Op::SpawnTask) enqueues a script as a
//!   task, capturing the spawner's identity;
//! - [`Op::RunTasks`](crate::op::Op::RunTasks) turns the executing thread
//!   into a pool worker: it drains the task queue, running each task's
//!   ops inline, and finishes when the queue is empty and no spawner can
//!   add more;
//! - the [`Monitor`](crate::monitor::Monitor) receives
//!   `on_task_spawn(spawner, task)` and `on_task_start(task, worker)`
//!   hooks, which is exactly where an async-local vector clock is cloned
//!   from the spawner and installed for the task (see
//!   `waffle-trace`'s async-local recorder mode).
//!
//! Scheduling is deterministic: tasks start in spawn order (FIFO), pulled
//! by whichever pool worker is free earliest.

use serde::{Deserialize, Serialize};

/// Identity of a spawned task (dense, in spawn order).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub u32);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// What spawned a task: the root of an async-local inheritance edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskParent {
    /// Spawned from plain thread code.
    Thread(crate::ids::ThreadId),
    /// Spawned from inside another task.
    Task(TaskId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_ids_display_and_order() {
        assert_eq!(TaskId(3).to_string(), "task3");
        assert!(TaskId(1) < TaskId(2));
    }

    #[test]
    fn parents_distinguish_threads_and_tasks() {
        let a = TaskParent::Thread(crate::ids::ThreadId(0));
        let b = TaskParent::Task(TaskId(0));
        assert_ne!(a, b);
    }
}
