//! Immutable, by-value clock snapshots and their partial order.
//!
//! Trace events are stamped with a [`ClockSnapshot`] taken from the active
//! thread's live clock at event time. The trace analyzer compares snapshots
//! with [`ClockSnapshot::order`] to decide whether two accesses "cannot be
//! partially ordered" (§4.1) before admitting them to the candidate set.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Result of comparing two clock snapshots under the component-wise partial
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockOrder {
    /// `self` happens before `other` (`self ≤ other` and `self ≠ other`).
    Before,
    /// `other` happens before `self`.
    After,
    /// The snapshots are identical component-wise.
    Equal,
    /// Neither dominates the other: the events are concurrent.
    Concurrent,
}

impl ClockOrder {
    /// Returns `true` when the two snapshots are ordered one way or the
    /// other (including equality), i.e. the pair must be pruned from the
    /// candidate set.
    pub fn is_ordered(self) -> bool {
        !matches!(self, ClockOrder::Concurrent)
    }
}

/// A by-value snapshot of a vector clock: a map from thread id to logical
/// counter value. Missing entries are implicitly zero.
///
/// The derived `Ord` is the lexicographic order on the canonical entry
/// list — unrelated to the causal partial order ([`order`]) — and exists
/// so snapshots can key ordered containers, e.g. the trace clock pool
/// that interns one copy of each distinct snapshot.
///
/// [`order`]: ClockSnapshot::order
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClockSnapshot<K: Ord> {
    entries: BTreeMap<K, u64>,
}

impl<K: Ord + Copy> ClockSnapshot<K> {
    /// Creates an empty snapshot (the bottom element of the lattice).
    pub fn new() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }

    /// Builds a snapshot from explicit `(tid, counter)` pairs.
    pub fn from_entries(entries: impl IntoIterator<Item = (K, u64)>) -> Self {
        Self {
            entries: entries.into_iter().filter(|&(_, v)| v != 0).collect(),
        }
    }

    /// Returns the counter value for `tid` (zero when absent).
    pub fn get(&self, tid: &K) -> u64 {
        self.entries.get(tid).copied().unwrap_or(0)
    }

    /// Sets the counter value for `tid`. A zero value removes the entry so
    /// that snapshots stay canonical (absent == 0).
    pub fn set(&mut self, tid: K, value: u64) {
        if value == 0 {
            self.entries.remove(&tid);
        } else {
            self.entries.insert(tid, value);
        }
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the non-zero `(tid, counter)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &u64)> {
        self.entries.iter()
    }

    /// Component-wise `≤` test: every entry of `self` is dominated by the
    /// corresponding entry of `other`.
    pub fn leq(&self, other: &Self) -> bool {
        self.entries.iter().all(|(k, v)| *v <= other.get(k))
    }

    /// Compares two snapshots under the vector-clock partial order.
    pub fn order(&self, other: &Self) -> ClockOrder {
        let le = self.leq(other);
        let ge = other.leq(self);
        match (le, ge) {
            (true, true) => ClockOrder::Equal,
            (true, false) => ClockOrder::Before,
            (false, true) => ClockOrder::After,
            (false, false) => ClockOrder::Concurrent,
        }
    }

    /// Returns `true` when the two snapshots are concurrent (neither
    /// dominates the other).
    pub fn concurrent(&self, other: &Self) -> bool {
        self.order(other) == ClockOrder::Concurrent
    }

    /// Component-wise maximum (the lattice join).
    pub fn join(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (k, v) in other.entries.iter() {
            let cur = out.get(k);
            if *v > cur {
                out.set(*k, *v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(u32, u64)]) -> ClockSnapshot<u32> {
        ClockSnapshot::from_entries(pairs.iter().copied())
    }

    #[test]
    fn missing_entries_read_as_zero() {
        let s = snap(&[(1, 3)]);
        assert_eq!(s.get(&2), 0);
    }

    #[test]
    fn zero_entries_are_canonicalized_away() {
        let mut s = snap(&[(1, 3), (2, 0)]);
        assert_eq!(s.len(), 1);
        s.set(1, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn order_is_antisymmetric() {
        let a = snap(&[(1, 1)]);
        let b = snap(&[(1, 2), (2, 1)]);
        assert_eq!(a.order(&b), ClockOrder::Before);
        assert_eq!(b.order(&a), ClockOrder::After);
    }

    #[test]
    fn concurrent_when_neither_dominates() {
        let a = snap(&[(1, 2), (2, 1)]);
        let b = snap(&[(1, 1), (2, 2)]);
        assert!(a.concurrent(&b));
        assert!(ClockOrder::Concurrent == a.order(&b) && !a.order(&b).is_ordered());
    }

    #[test]
    fn equal_snapshots_compare_equal() {
        let a = snap(&[(3, 4)]);
        assert_eq!(a.order(&a.clone()), ClockOrder::Equal);
        assert!(a.order(&a.clone()).is_ordered());
    }

    #[test]
    fn join_is_component_wise_max() {
        let a = snap(&[(1, 2), (2, 1)]);
        let b = snap(&[(1, 1), (3, 5)]);
        let j = a.join(&b);
        assert_eq!(j.get(&1), 2);
        assert_eq!(j.get(&2), 1);
        assert_eq!(j.get(&3), 5);
        // Both inputs are below the join.
        assert!(a.leq(&j));
        assert!(b.leq(&j));
    }

    #[test]
    fn empty_snapshot_is_bottom() {
        let bot: ClockSnapshot<u32> = ClockSnapshot::new();
        let a = snap(&[(1, 1)]);
        assert!(bot.leq(&a));
        assert_eq!(bot.order(&a), ClockOrder::Before);
    }
}
