//! Textbook by-value vector clocks, for comparison with the paper protocol.

use crate::snapshot::ClockSnapshot;

/// A classical fork-edge vector clock.
///
/// Unlike [`LiveClock`](crate::LiveClock), entries are plain values: the
/// child receives a *copy* of the parent's entries at fork time, and the
/// parent increments its own entry *after* the copy, so the child never
/// observes post-fork parent progress. This is the precise protocol that
/// the paper's by-reference scheme approximates; it is used in tests and in
/// the analyzer's high-precision mode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassicClock<K: Ord + Copy> {
    snap: ClockSnapshot<K>,
}

impl<K: Ord + Copy> ClassicClock<K> {
    /// Creates the clock of a root thread: a single `(tid, 1)` entry.
    pub fn root(tid: K) -> Self {
        Self {
            snap: ClockSnapshot::from_entries([(tid, 1)]),
        }
    }

    /// Forks a child: the child gets a copy of the parent's entries plus its
    /// own `(child, 1)` entry, then the parent ticks its own entry.
    pub fn fork(&mut self, parent: K, child: K) -> Self {
        let mut child_snap = self.snap.clone();
        child_snap.set(child, 1);
        self.tick(parent);
        Self { snap: child_snap }
    }

    /// Increments this clock's entry for `tid`.
    pub fn tick(&mut self, tid: K) {
        let v = self.snap.get(&tid);
        self.snap.set(tid, v + 1);
    }

    /// Merges another clock into this one (used for join edges).
    pub fn merge(&mut self, other: &Self) {
        self.snap = self.snap.join(&other.snap);
    }

    /// Returns the current by-value snapshot.
    pub fn snapshot(&self) -> ClockSnapshot<K> {
        self.snap.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ClockOrder;

    #[test]
    fn classic_fork_orders_pre_fork_events_only() {
        let mut p: ClassicClock<u32> = ClassicClock::root(0);
        let before = p.snapshot();
        let child = p.fork(0, 1);
        let after = p.snapshot();
        assert_eq!(before.order(&child.snapshot()), ClockOrder::Before);
        assert_eq!(after.order(&child.snapshot()), ClockOrder::Concurrent);
    }

    #[test]
    fn merge_models_join_edges() {
        let mut p: ClassicClock<u32> = ClassicClock::root(0);
        let mut child = p.fork(0, 1);
        child.tick(1);
        let child_final = child.snapshot();
        p.merge(&child);
        // After joining the child, the parent's events dominate the child's.
        assert!(child_final.leq(&p.snapshot()));
    }

    #[test]
    fn tick_only_advances_own_entry() {
        let mut c: ClassicClock<u32> = ClassicClock::root(5);
        c.tick(5);
        c.tick(5);
        let s = c.snapshot();
        assert_eq!(s.get(&5), 3);
        assert_eq!(s.len(), 1);
    }
}
