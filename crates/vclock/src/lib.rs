//! Vector clocks for Waffle's parent–child happens-before analysis.
//!
//! Waffle (EuroSys '23, §4.1) tracks the happens-before relationship induced
//! by thread forks with vector clocks stored in inheritable thread-local
//! storage. A clock is "a set of tuples `{(tid_1, &rctr_1), (tid_2, &rctr_2),
//! ...}`, with each tuple representing a thread ID and a reference (pointer)
//! to the corresponding logical time counter". When a child thread is
//! created, the parent's clock object is copied into the child's TLS; the
//! child's constructor then
//!
//! 1. appends a tuple `(tid_child, &rctr = 1)` to the copied content, and
//! 2. increments the parent's logical counter *through the shared
//!    reference*.
//!
//! This crate provides two clock flavours:
//!
//! - [`LiveClock`]: the paper's by-reference representation, with counters
//!   shared between parent and descendants ([`fork`](LiveClock::fork)
//!   implements the protocol above). Reads go through the shared counter at
//!   snapshot time, exactly like the C# implementation reads `*rctr` at
//!   comparison time.
//! - [`ClockSnapshot`]: an immutable by-value snapshot used to stamp trace
//!   events, with the partial-order operations (`leq`, `concurrent`, `join`)
//!   the trace analyzer needs.
//!
//! The live/by-reference representation is deliberately an *approximation*
//! of classical fork-edge vector clocks: counters only advance at forks, and
//! a descendant reads the ancestor's counter at its own event time. The
//! effect (discussed in the paper's §4.1 treatment of TLS propagation) is
//! that an ancestor's events are considered ordered before a descendant's
//! events even slightly past the fork point. [`ClassicClock`] implements the
//! textbook by-value protocol for tests and comparisons.

pub mod classic;
pub mod live;
pub mod snapshot;

pub use classic::ClassicClock;
pub use live::LiveClock;
pub use snapshot::{ClockOrder, ClockSnapshot};

#[cfg(test)]
mod tests {
    use super::*;

    /// Thread ids in tests are plain `u32`s.
    type Tid = u32;

    #[test]
    fn root_clock_snapshot_contains_only_root() {
        let c: LiveClock<Tid> = LiveClock::root(7);
        let s = c.snapshot();
        assert_eq!(s.get(&7), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fork_appends_child_and_bumps_parent() {
        let mut parent: LiveClock<Tid> = LiveClock::root(1);
        let child = parent.fork(1, 2);
        // The child entry starts at 1.
        assert_eq!(child.snapshot().get(&2), 1);
        // The parent counter was incremented through the shared reference,
        // so both the parent and the child observe the new value.
        assert_eq!(parent.snapshot().get(&1), 2);
        assert_eq!(child.snapshot().get(&1), 2);
    }

    #[test]
    fn pre_fork_parent_event_ordered_before_child_event() {
        let mut parent: LiveClock<Tid> = LiveClock::root(1);
        let before_fork = parent.snapshot();
        let child = parent.fork(1, 2);
        let child_event = child.snapshot();
        assert_eq!(before_fork.order(&child_event), ClockOrder::Before);
    }

    #[test]
    fn sibling_events_are_concurrent() {
        let mut parent: LiveClock<Tid> = LiveClock::root(1);
        let a = parent.fork(1, 2);
        let b = parent.fork(1, 3);
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa.order(&sb), ClockOrder::Concurrent);
        assert_eq!(sb.order(&sa), ClockOrder::Concurrent);
    }

    #[test]
    fn grandchild_ordered_after_grandparent_pre_fork_events() {
        let mut root: LiveClock<Tid> = LiveClock::root(1);
        let s0 = root.snapshot();
        let mut mid = root.fork(1, 2);
        let leaf = mid.fork(2, 3);
        assert_eq!(s0.order(&leaf.snapshot()), ClockOrder::Before);
    }

    #[test]
    fn paper_approximation_orders_post_fork_parent_events() {
        // The by-reference protocol reads the parent counter at snapshot
        // time, so a parent event taken *after* the fork compares equal on
        // the parent entry and is therefore (over-)approximated as ordered
        // before the child's events. This is the documented deviation from
        // the classical protocol.
        let mut parent: LiveClock<Tid> = LiveClock::root(1);
        let child = parent.fork(1, 2);
        let parent_after = parent.snapshot();
        let child_event = child.snapshot();
        assert_eq!(parent_after.order(&child_event), ClockOrder::Before);
    }

    #[test]
    fn classic_protocol_keeps_post_fork_parent_events_concurrent() {
        let mut parent: ClassicClock<Tid> = ClassicClock::root(1);
        let child = parent.fork(1, 2);
        let parent_after = parent.snapshot();
        let child_event = child.snapshot();
        assert_eq!(parent_after.order(&child_event), ClockOrder::Concurrent);
    }
}
