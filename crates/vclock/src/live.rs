//! The paper's by-reference clock: shared counters, incremented at forks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::snapshot::ClockSnapshot;

/// A logical time counter shared between a thread and its descendants.
type Counter = Arc<AtomicU64>;

/// A live vector clock: the set of `(tid, &rctr)` tuples from §4.1.
///
/// Counters are reference-counted and shared: when a child clock is created
/// with [`LiveClock::fork`], the child's map holds *the same* counter
/// objects as the parent's for every inherited entry, mirroring the C#
/// implementation where the TLS copy carries references (pointers) to the
/// parents' counters. Counter values therefore only advance at fork events,
/// and reads ([`LiveClock::snapshot`]) observe the value current at read
/// time.
#[derive(Debug, Clone)]
pub struct LiveClock<K: Ord + Copy> {
    entries: BTreeMap<K, Counter>,
}

impl<K: Ord + Copy> LiveClock<K> {
    /// Creates the clock of a root thread: a single `(tid, 1)` entry.
    pub fn root(tid: K) -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(tid, Arc::new(AtomicU64::new(1)));
        Self { entries }
    }

    /// Implements the fork protocol of §4.1 and returns the child's clock.
    ///
    /// The child receives a copy of the parent's entries (sharing the
    /// underlying counters), an appended `(child, 1)` entry, and the
    /// parent's own counter is incremented through the shared reference —
    /// in that order, as in the paper ("the parent's vector clock remains
    /// inaccurate until the TLS region is completely copied"; no
    /// comparisons happen in that window because the simulator performs the
    /// whole fork atomically).
    ///
    /// `parent` must name this clock's owning thread; a fresh counter is
    /// created for it if the entry is missing (which only happens for
    /// clocks built by hand in tests).
    pub fn fork(&mut self, parent: K, child: K) -> Self {
        let mut child_entries = self.entries.clone();
        child_entries.insert(child, Arc::new(AtomicU64::new(1)));
        let parent_ctr = self
            .entries
            .entry(parent)
            .or_insert_with(|| Arc::new(AtomicU64::new(1)));
        parent_ctr.fetch_add(1, Ordering::SeqCst);
        // The child shares the (already incremented) parent counter.
        let mut out = Self {
            entries: child_entries,
        };
        out.entries.insert(parent, Arc::clone(parent_ctr));
        out
    }

    /// Reads every counter through its shared reference and returns a
    /// by-value [`ClockSnapshot`] suitable for stamping a trace event.
    pub fn snapshot(&self) -> ClockSnapshot<K> {
        ClockSnapshot::from_entries(
            self.entries
                .iter()
                .map(|(k, c)| (*k, c.load(Ordering::SeqCst))),
        )
    }

    /// Number of `(tid, counter)` tuples carried by this clock.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the clock carries no tuples (only possible for hand-built
    /// clocks; forked clocks always carry at least their own entry).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_between_parent_and_child() {
        let mut p: LiveClock<u32> = LiveClock::root(0);
        let c1 = p.fork(0, 1);
        // A second fork bumps the parent counter; the first child observes
        // the new value through the shared reference.
        let _c2 = p.fork(0, 2);
        assert_eq!(c1.snapshot().get(&0), 3);
        assert_eq!(p.snapshot().get(&0), 3);
    }

    #[test]
    fn fork_chain_accumulates_ancestor_entries() {
        let mut a: LiveClock<u32> = LiveClock::root(0);
        let mut b = a.fork(0, 1);
        let c = b.fork(1, 2);
        assert_eq!(c.len(), 3);
        let s = c.snapshot();
        assert!(s.get(&0) >= 1 && s.get(&1) >= 1 && s.get(&2) == 1);
    }

    #[test]
    fn clone_shares_counters() {
        let mut a: LiveClock<u32> = LiveClock::root(0);
        let dup = a.clone();
        let _child = a.fork(0, 1);
        // The clone sees the bump because the counter object is shared.
        assert_eq!(dup.snapshot().get(&0), 2);
    }
}
