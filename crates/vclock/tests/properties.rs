//! Property-based tests for vector-clock invariants.

use proptest::prelude::*;
use waffle_vclock::{ClassicClock, ClockOrder, ClockSnapshot, LiveClock};

/// Strategy: an arbitrary snapshot over a small id space.
fn snapshot_strategy() -> impl Strategy<Value = ClockSnapshot<u32>> {
    proptest::collection::btree_map(0u32..8, 0u64..6, 0..8)
        .prop_map(ClockSnapshot::from_entries)
}

/// Strategy: a random fork tree described as a list of parent indices.
/// Thread `i + 1` is forked from `parents[i] % (i + 1)`.
fn fork_tree_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..16, 1..12)
}

proptest! {
    #[test]
    fn leq_is_reflexive(a in snapshot_strategy()) {
        prop_assert!(a.leq(&a));
        prop_assert_eq!(a.order(&a), ClockOrder::Equal);
    }

    #[test]
    fn leq_is_antisymmetric(a in snapshot_strategy(), b in snapshot_strategy()) {
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn leq_is_transitive(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
        c in snapshot_strategy(),
    ) {
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn order_is_consistent_with_flipped_order(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
    ) {
        let expected = match a.order(&b) {
            ClockOrder::Before => ClockOrder::After,
            ClockOrder::After => ClockOrder::Before,
            other => other,
        };
        prop_assert_eq!(b.order(&a), expected);
    }

    #[test]
    fn join_is_least_upper_bound(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
        c in snapshot_strategy(),
    ) {
        let j = a.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
        // Least: any other upper bound dominates the join.
        if a.leq(&c) && b.leq(&c) {
            prop_assert!(j.leq(&c));
        }
    }

    #[test]
    fn join_is_commutative_and_idempotent(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
    ) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&a), a.clone());
    }

    /// For any fork tree, the paper's by-reference protocol orders at least
    /// everything the classical protocol orders (it is a sound
    /// over-approximation of fork-edge happens-before when snapshots are
    /// taken at quiescence, i.e. after all forks).
    #[test]
    fn live_ordering_superset_of_classic_at_quiescence(parents in fork_tree_strategy()) {
        let n = parents.len() + 1;
        let mut live: Vec<LiveClock<u32>> = vec![LiveClock::root(0)];
        let mut classic: Vec<ClassicClock<u32>> = vec![ClassicClock::root(0)];
        for (i, p) in parents.iter().enumerate() {
            let child = (i + 1) as u32;
            let parent = p % (i + 1);
            let lc = live[parent].fork(parent as u32, child);
            live.push(lc);
            let cc = classic[parent].fork(parent as u32, child);
            classic.push(cc);
        }
        let live_snaps: Vec<_> = live.iter().map(|c| c.snapshot()).collect();
        let classic_snaps: Vec<_> = classic.iter().map(|c| c.snapshot()).collect();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                if classic_snaps[i].order(&classic_snaps[j]).is_ordered() {
                    prop_assert!(
                        live_snaps[i].order(&live_snaps[j]).is_ordered(),
                        "classic orders {}/{} but live does not",
                        i,
                        j
                    );
                }
            }
        }
    }

    /// Distinct leaves of a fork tree that are not in an ancestor
    /// relationship must be concurrent under both protocols.
    #[test]
    fn non_ancestor_threads_are_concurrent(parents in fork_tree_strategy()) {
        let n = parents.len() + 1;
        // Reconstruct ancestor sets.
        let mut parent_of = vec![usize::MAX; n];
        for (i, p) in parents.iter().enumerate() {
            parent_of[i + 1] = p % (i + 1);
        }
        let is_ancestor = |a: usize, b: usize| {
            let mut cur = b;
            while cur != usize::MAX {
                if cur == a {
                    return true;
                }
                cur = if cur == 0 { usize::MAX } else { parent_of[cur] };
            }
            false
        };
        let mut live: Vec<LiveClock<u32>> = vec![LiveClock::root(0)];
        for (i, p) in parents.iter().enumerate() {
            let child = (i + 1) as u32;
            let parent = p % (i + 1);
            let lc = live[parent].fork(parent as u32, child);
            live.push(lc);
        }
        let snaps: Vec<_> = live.iter().map(|c| c.snapshot()).collect();
        for i in 0..n {
            for j in 0..n {
                if i == j || is_ancestor(i, j) || is_ancestor(j, i) {
                    continue;
                }
                prop_assert!(
                    snaps[i].concurrent(&snaps[j]),
                    "non-related threads {}/{} must be concurrent",
                    i,
                    j
                );
            }
        }
    }
}
