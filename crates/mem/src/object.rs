//! Object identities, reference-cell states, and access kinds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a dynamic heap object (one per allocated instance).
///
/// Workloads pre-declare their objects; ids index the run's
/// [`Heap`](crate::Heap). Distinct loop iterations touching "the same field" use
/// distinct `ObjectId`s when the program semantics allocate fresh
/// instances, which is what gives a static site multiple dynamic instances.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// The state of an object's reference cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RefState {
    /// The reference is NULL and the object was never initialized.
    #[default]
    Null,
    /// The reference points to a live object.
    Live,
    /// The reference was set back to NULL or the object was disposed.
    Disposed,
}

impl RefState {
    /// Whether a *use* of a cell in this state succeeds.
    pub fn usable(self) -> bool {
        matches!(self, RefState::Live)
    }
}

/// The three MemOrder-relevant operation types of §3.1, plus the
/// thread-unsafe API call used by the TSV comparison tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// An operation that changes the object's reference from NULL to
    /// non-NULL (allocation / constructor completion).
    Init,
    /// A member-field access or member-method call on the object.
    Use,
    /// An operation that changes the reference from non-NULL to NULL or an
    /// explicit `Dispose()` call.
    Dispose,
    /// A call into a thread-unsafe API operating on the object — the
    /// instrumentation target of TSVD-style thread-safety-violation
    /// detection (§2), irrelevant to the MemOrder state machine.
    UnsafeApiCall,
}

impl AccessKind {
    /// Whether this kind is instrumented by the MemOrder tooling
    /// (Waffle/WaffleBasic).
    pub fn is_mem_order(self) -> bool {
        matches!(
            self,
            AccessKind::Init | AccessKind::Use | AccessKind::Dispose
        )
    }

    /// Whether this kind is instrumented by the TSV tooling (TSVD).
    pub fn is_tsv(self) -> bool {
        matches!(self, AccessKind::UnsafeApiCall)
    }

    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Init => "init",
            AccessKind::Use => "use",
            AccessKind::Dispose => "dispose",
            AccessKind::UnsafeApiCall => "unsafe-api",
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_null() {
        assert_eq!(RefState::default(), RefState::Null);
        assert!(!RefState::Null.usable());
        assert!(RefState::Live.usable());
        assert!(!RefState::Disposed.usable());
    }

    #[test]
    fn kind_classification_is_disjoint() {
        for k in [
            AccessKind::Init,
            AccessKind::Use,
            AccessKind::Dispose,
            AccessKind::UnsafeApiCall,
        ] {
            assert!(k.is_mem_order() != k.is_tsv());
        }
    }

    #[test]
    fn display_labels_are_stable() {
        assert_eq!(AccessKind::Init.to_string(), "init");
        assert_eq!(AccessKind::UnsafeApiCall.to_string(), "unsafe-api");
        assert_eq!(ObjectId(3).to_string(), "obj#3");
    }
}
