//! Static program locations (instrumentation sites).
//!
//! A *site* is the static analogue of the paper's "program location" ℓ: a
//! stable identifier for one instrumented operation in the target program.
//! Waffle's candidate set `S` and interference set `I` are sets of site
//! pairs; the probability-decay state is keyed by site; plans persist
//! across runs, so sites must be stable across runs of the same workload
//! (the registry interns by name deterministically).

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::object::AccessKind;

/// Identity of a static instrumentation site.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Checked construction from a table index: a [`SiteIdOverflow`] once
    /// the index has outgrown the 32-bit id space, instead of the silent
    /// wrap a bare `as u32` cast would produce.
    pub fn try_new(index: usize) -> Result<Self, SiteIdOverflow> {
        u32::try_from(index)
            .map(SiteId)
            .map_err(|_| SiteIdOverflow { index })
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A site-table index outgrew the 32-bit [`SiteId`] space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteIdOverflow {
    /// The offending table index.
    pub index: usize,
}

impl fmt::Display for SiteIdOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "site id overflow: index {} does not fit the 32-bit id space",
            self.index
        )
    }
}

impl std::error::Error for SiteIdOverflow {}

/// Metadata attached to a site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteInfo {
    /// Source-like name, e.g. `"DiagnosticsListener.ctor:2"`.
    pub name: String,
    /// The operation class performed at this site.
    pub kind: AccessKind,
}

/// Interning table mapping site names to stable [`SiteId`]s.
///
/// Registration order defines ids, and workload builders register sites
/// deterministically, so the same workload produces the same ids in every
/// run — a requirement for cross-run plans and decay state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteRegistry {
    sites: Vec<SiteInfo>,
    by_name: HashMap<String, SiteId>,
}

impl SiteRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` with operation class `kind`, returning its id.
    ///
    /// Re-registering an existing name returns the existing id; the kind
    /// must match (a static location performs one operation class).
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously registered with a different `kind` —
    /// that is a workload construction bug.
    pub fn register(&mut self, name: &str, kind: AccessKind) -> SiteId {
        if let Some(&id) = self.by_name.get(name) {
            let existing = &self.sites[id.0 as usize];
            assert_eq!(
                existing.kind, kind,
                "site {name:?} re-registered with a different access kind"
            );
            return id;
        }
        let id = SiteId(self.sites.len() as u32);
        self.sites.push(SiteInfo {
            name: name.to_owned(),
            kind,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a site by name.
    pub fn lookup(&self, name: &str) -> Option<SiteId> {
        self.by_name.get(name).copied()
    }

    /// Returns the metadata for `id`, if registered.
    pub fn info(&self, id: SiteId) -> Option<&SiteInfo> {
        self.sites.get(id.0 as usize)
    }

    /// Returns the site name for `id`, or a placeholder for unknown ids.
    pub fn name(&self, id: SiteId) -> &str {
        self.info(id).map(|i| i.name.as_str()).unwrap_or("<unknown>")
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no sites are registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over `(id, info)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &SiteInfo)> {
        self.sites
            .iter()
            .enumerate()
            .map(|(i, info)| (SiteId(i as u32), info))
    }

    /// Counts sites whose operation class satisfies `pred`.
    pub fn count_where(&self, pred: impl Fn(AccessKind) -> bool) -> usize {
        self.sites.iter().filter(|s| pred(s.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_ordered() {
        let mut r = SiteRegistry::new();
        let a = r.register("A.ctor:1", AccessKind::Init);
        let b = r.register("A.handler:8", AccessKind::Use);
        let a2 = r.register("A.ctor:1", AccessKind::Init);
        assert_eq!(a, a2);
        assert_eq!(a, SiteId(0));
        assert_eq!(b, SiteId(1));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different access kind")]
    fn conflicting_kind_panics() {
        let mut r = SiteRegistry::new();
        r.register("X", AccessKind::Init);
        r.register("X", AccessKind::Use);
    }

    #[test]
    fn lookup_and_name_round_trip() {
        let mut r = SiteRegistry::new();
        let id = r.register("Poller.Dispose:8", AccessKind::Dispose);
        assert_eq!(r.lookup("Poller.Dispose:8"), Some(id));
        assert_eq!(r.name(id), "Poller.Dispose:8");
        assert_eq!(r.name(SiteId(99)), "<unknown>");
        assert!(r.lookup("missing").is_none());
    }

    #[test]
    fn count_where_filters_by_kind() {
        let mut r = SiteRegistry::new();
        r.register("a", AccessKind::Init);
        r.register("b", AccessKind::Use);
        r.register("c", AccessKind::UnsafeApiCall);
        assert_eq!(r.count_where(AccessKind::is_mem_order), 2);
        assert_eq!(r.count_where(AccessKind::is_tsv), 1);
    }

    #[test]
    fn iter_yields_registration_order() {
        let mut r = SiteRegistry::new();
        r.register("first", AccessKind::Init);
        r.register("second", AccessKind::Use);
        let names: Vec<_> = r.iter().map(|(_, i)| i.name.clone()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
