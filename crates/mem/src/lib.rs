//! Managed-heap model: the substrate on which MemOrder bugs exist.
//!
//! Safe Rust statically prevents the paper's bug class (use-before-
//! initialization and use-after-free on heap objects), so this crate models
//! the relevant part of a managed runtime explicitly: every shared object is
//! a *reference cell* with the C#-like state machine
//!
//! ```text
//!            Init                Dispose
//!   Null ───────────▶ Live ───────────────▶ Disposed
//!    ▲                  ▲                       │
//!    │                  └────────── Init ───────┘   (reassignment)
//!    │
//!  (initial state: the reference is NULL until initialized)
//! ```
//!
//! A *use* (member-field access or member-method call in the paper's
//! terminology) of a cell that is `Null` or `Disposed` raises a modelled
//! [`NullRefError`] — the NULL-reference exception Waffle watches for. The
//! simulator (`waffle-sim`) executes workload operations against a [`Heap`]
//! of these cells and surfaces the errors with timing/thread context.
//!
//! The crate also defines the *static program location* vocabulary
//! ([`SiteId`], [`SiteRegistry`]) shared by the instrumenter, trace
//! analyzer, and injection runtime.

pub mod error;
pub mod heap;
pub mod object;
pub mod site;

pub use error::{NullRefError, NullRefKind};
pub use heap::{AccessOutcome, Heap, HeapStats};
pub use object::{AccessKind, ObjectId, RefState};
pub use site::{SiteId, SiteIdOverflow, SiteInfo, SiteRegistry};
