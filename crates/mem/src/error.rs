//! The modelled NULL-reference exception.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::object::{AccessKind, ObjectId};
use crate::site::SiteId;

/// Why an access raised a NULL-reference exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NullRefKind {
    /// The object was used before any initialization ran — the
    /// use-before-initialization MemOrder bug.
    UseBeforeInit,
    /// The object was used after it was disposed / its reference nulled —
    /// the use-after-free MemOrder bug.
    UseAfterFree,
    /// `Dispose()` was invoked through a NULL reference (never initialized
    /// or already disposed). C# raises a NULL-reference exception here too.
    DisposeOnNull,
}

impl NullRefKind {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NullRefKind::UseBeforeInit => "use-before-initialization",
            NullRefKind::UseAfterFree => "use-after-free",
            NullRefKind::DisposeOnNull => "dispose-on-null",
        }
    }
}

/// A NULL-reference exception raised by the heap state machine.
///
/// This is the manifestation Waffle reports on (§5: "Waffle reports a bug
/// only when the target binary raises a NULL reference exception as a
/// consequence of the delay injection performed"). The simulator wraps it
/// with thread/time context when surfacing it in a run result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NullRefError {
    /// The object whose reference was NULL.
    pub obj: ObjectId,
    /// The static location of the faulting access.
    pub site: SiteId,
    /// The faulting operation type.
    pub access: AccessKind,
    /// Classification of the failure.
    pub kind: NullRefKind,
}

impl fmt::Display for NullRefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NullReferenceException: {} of {} at site {} ({})",
            self.access,
            self.obj,
            self.site.0,
            self.kind.label()
        )
    }
}

impl std::error::Error for NullRefError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_mentions_object_site_and_kind() {
        let e = NullRefError {
            obj: ObjectId(4),
            site: SiteId(9),
            access: AccessKind::Use,
            kind: NullRefKind::UseAfterFree,
        };
        let s = e.to_string();
        assert!(s.contains("obj#4"));
        assert!(s.contains("site 9"));
        assert!(s.contains("use-after-free"));
    }
}
