//! The run-time heap of reference cells.

use serde::{Deserialize, Serialize};

use crate::error::{NullRefError, NullRefKind};
use crate::object::{AccessKind, ObjectId, RefState};
use crate::site::SiteId;

/// What an access did to the cell, on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The cell transitioned from `from` to `to` (Init/Dispose).
    Transition {
        /// State before the access.
        from: RefState,
        /// State after the access.
        to: RefState,
    },
    /// The cell was read without a state change (Use / UnsafeApiCall).
    Read,
}

/// Aggregate heap statistics for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Total accesses applied (including faulting ones).
    pub accesses: u64,
    /// Successful initializations.
    pub inits: u64,
    /// Successful uses.
    pub uses: u64,
    /// Successful disposals.
    pub disposes: u64,
    /// Thread-unsafe API calls (TSV instrumentation class).
    pub unsafe_calls: u64,
    /// NULL-reference exceptions raised.
    pub null_ref_errors: u64,
}

/// A heap of reference cells, one per pre-declared workload object.
///
/// The heap is time- and thread-agnostic: it owns only the reference state
/// machine. The simulator drives it and attaches timing context to the
/// outcomes.
#[derive(Debug, Clone)]
pub struct Heap {
    cells: Vec<RefState>,
    stats: HeapStats,
}

impl Heap {
    /// Creates a heap with `n` cells, all `Null` (never initialized).
    pub fn new(n: usize) -> Self {
        Self {
            cells: vec![RefState::Null; n],
            stats: HeapStats::default(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the heap has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Current state of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range — workloads pre-declare all objects,
    /// so an unknown id is a workload construction bug.
    pub fn state(&self, obj: ObjectId) -> RefState {
        self.cells[obj.0 as usize]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Applies one access to the heap, returning the outcome or the
    /// NULL-reference exception it raises.
    ///
    /// Semantics (§3.1):
    /// - `Init`: NULL → non-NULL. Re-initializing a `Live` cell is a benign
    ///   reassignment (stays `Live`); initializing a `Disposed` cell
    ///   resurrects it to `Live`.
    /// - `Use`: requires `Live`; otherwise raises `UseBeforeInit`
    ///   (never-initialized) or `UseAfterFree` (disposed).
    /// - `Dispose`: non-NULL → NULL; disposing a NULL reference raises
    ///   `DisposeOnNull` (the `Dispose()` call itself dereferences NULL).
    /// - `UnsafeApiCall`: like `Use` for the state machine (the call
    ///   dereferences the object); TSV overlap detection is the simulator's
    ///   job.
    pub fn apply(
        &mut self,
        obj: ObjectId,
        site: SiteId,
        kind: AccessKind,
    ) -> Result<AccessOutcome, NullRefError> {
        self.stats.accesses += 1;
        let cell = &mut self.cells[obj.0 as usize];
        let from = *cell;
        let fail = |this: &mut Self, k: NullRefKind| {
            this.stats.null_ref_errors += 1;
            Err(NullRefError {
                obj,
                site,
                access: kind,
                kind: k,
            })
        };
        match kind {
            AccessKind::Init => {
                *cell = RefState::Live;
                self.stats.inits += 1;
                Ok(AccessOutcome::Transition {
                    from,
                    to: RefState::Live,
                })
            }
            AccessKind::Use | AccessKind::UnsafeApiCall => match from {
                RefState::Live => {
                    if kind == AccessKind::Use {
                        self.stats.uses += 1;
                    } else {
                        self.stats.unsafe_calls += 1;
                    }
                    Ok(AccessOutcome::Read)
                }
                RefState::Null => fail(self, NullRefKind::UseBeforeInit),
                RefState::Disposed => fail(self, NullRefKind::UseAfterFree),
            },
            AccessKind::Dispose => match from {
                RefState::Live => {
                    *cell = RefState::Disposed;
                    self.stats.disposes += 1;
                    Ok(AccessOutcome::Transition {
                        from,
                        to: RefState::Disposed,
                    })
                }
                RefState::Null | RefState::Disposed => fail(self, NullRefKind::DisposeOnNull),
            },
        }
    }

    /// Resets every cell to `Null` and clears statistics (fresh run).
    pub fn reset(&mut self) {
        self.cells.fill(RefState::Null);
        self.stats = HeapStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(2)
    }

    const S: SiteId = SiteId(0);
    const O: ObjectId = ObjectId(0);

    #[test]
    fn lifecycle_init_use_dispose() {
        let mut h = heap();
        assert!(h.apply(O, S, AccessKind::Init).is_ok());
        assert_eq!(h.state(O), RefState::Live);
        assert!(h.apply(O, S, AccessKind::Use).is_ok());
        assert!(h.apply(O, S, AccessKind::Dispose).is_ok());
        assert_eq!(h.state(O), RefState::Disposed);
    }

    #[test]
    fn use_before_init_raises() {
        let mut h = heap();
        let e = h.apply(O, S, AccessKind::Use).unwrap_err();
        assert_eq!(e.kind, NullRefKind::UseBeforeInit);
    }

    #[test]
    fn use_after_free_raises() {
        let mut h = heap();
        h.apply(O, S, AccessKind::Init).unwrap();
        h.apply(O, S, AccessKind::Dispose).unwrap();
        let e = h.apply(O, S, AccessKind::Use).unwrap_err();
        assert_eq!(e.kind, NullRefKind::UseAfterFree);
    }

    #[test]
    fn dispose_on_null_raises() {
        let mut h = heap();
        let e = h.apply(O, S, AccessKind::Dispose).unwrap_err();
        assert_eq!(e.kind, NullRefKind::DisposeOnNull);
        // Double dispose also raises.
        h.apply(O, S, AccessKind::Init).unwrap();
        h.apply(O, S, AccessKind::Dispose).unwrap();
        let e = h.apply(O, S, AccessKind::Dispose).unwrap_err();
        assert_eq!(e.kind, NullRefKind::DisposeOnNull);
    }

    #[test]
    fn reinit_resurrects_disposed_cell() {
        let mut h = heap();
        h.apply(O, S, AccessKind::Init).unwrap();
        h.apply(O, S, AccessKind::Dispose).unwrap();
        h.apply(O, S, AccessKind::Init).unwrap();
        assert_eq!(h.state(O), RefState::Live);
        assert!(h.apply(O, S, AccessKind::Use).is_ok());
    }

    #[test]
    fn unsafe_call_requires_live_object() {
        let mut h = heap();
        assert!(h.apply(O, S, AccessKind::UnsafeApiCall).is_err());
        h.apply(O, S, AccessKind::Init).unwrap();
        assert!(h.apply(O, S, AccessKind::UnsafeApiCall).is_ok());
        assert_eq!(h.stats().unsafe_calls, 1);
    }

    #[test]
    fn stats_count_successes_and_failures() {
        let mut h = heap();
        h.apply(O, S, AccessKind::Use).unwrap_err();
        h.apply(O, S, AccessKind::Init).unwrap();
        h.apply(O, S, AccessKind::Use).unwrap();
        h.apply(O, S, AccessKind::Dispose).unwrap();
        let st = h.stats();
        assert_eq!(st.accesses, 4);
        assert_eq!(st.null_ref_errors, 1);
        assert_eq!((st.inits, st.uses, st.disposes), (1, 1, 1));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = heap();
        h.apply(O, S, AccessKind::Init).unwrap();
        h.reset();
        assert_eq!(h.state(O), RefState::Null);
        assert_eq!(h.stats(), HeapStats::default());
    }

    #[test]
    fn cells_are_independent() {
        let mut h = heap();
        h.apply(ObjectId(0), S, AccessKind::Init).unwrap();
        assert_eq!(h.state(ObjectId(0)), RefState::Live);
        assert_eq!(h.state(ObjectId(1)), RefState::Null);
    }
}
