//! The run-time heap of reference cells.

use serde::{Deserialize, Serialize};

use crate::error::{NullRefError, NullRefKind};
use crate::object::{AccessKind, ObjectId, RefState};
use crate::site::SiteId;

/// What an access did to the cell, on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The cell transitioned from `from` to `to` (Init/Dispose).
    Transition {
        /// State before the access.
        from: RefState,
        /// State after the access.
        to: RefState,
    },
    /// The cell was read without a state change (Use / UnsafeApiCall).
    Read,
}

/// Aggregate heap statistics for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Total accesses applied (including faulting ones).
    pub accesses: u64,
    /// Successful initializations.
    pub inits: u64,
    /// Successful uses.
    pub uses: u64,
    /// Successful disposals.
    pub disposes: u64,
    /// Thread-unsafe API calls (TSV instrumentation class).
    pub unsafe_calls: u64,
    /// NULL-reference exceptions raised.
    pub null_ref_errors: u64,
}

/// A heap of reference cells, one per pre-declared workload object.
///
/// The heap is time- and thread-agnostic: it owns only the reference state
/// machine. The simulator drives it and attaches timing context to the
/// outcomes.
#[derive(Debug, Clone)]
pub struct Heap {
    cells: Vec<RefState>,
    stats: HeapStats,
}

impl Heap {
    /// Creates a heap with `n` cells, all `Null` (never initialized).
    pub fn new(n: usize) -> Self {
        Self {
            cells: vec![RefState::Null; n],
            stats: HeapStats::default(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the heap has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Current state of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range — workloads pre-declare all objects,
    /// so an unknown id is a workload construction bug.
    pub fn state(&self, obj: ObjectId) -> RefState {
        self.cells[obj.0 as usize]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Applies one access to the heap, returning the outcome or the
    /// NULL-reference exception it raises.
    ///
    /// Semantics (§3.1):
    /// - `Init`: NULL → non-NULL. Re-initializing a `Live` cell is a benign
    ///   reassignment (stays `Live`); initializing a `Disposed` cell
    ///   resurrects it to `Live`.
    /// - `Use`: requires `Live`; otherwise raises `UseBeforeInit`
    ///   (never-initialized) or `UseAfterFree` (disposed).
    /// - `Dispose`: non-NULL → NULL; disposing a NULL reference raises
    ///   `DisposeOnNull` (the `Dispose()` call itself dereferences NULL).
    /// - `UnsafeApiCall`: like `Use` for the state machine (the call
    ///   dereferences the object); TSV overlap detection is the simulator's
    ///   job.
    pub fn apply(
        &mut self,
        obj: ObjectId,
        site: SiteId,
        kind: AccessKind,
    ) -> Result<AccessOutcome, NullRefError> {
        let outcome = self.classify(obj, site, kind, self.state(obj));
        if let Ok(AccessOutcome::Transition { to, .. }) = outcome {
            self.cells[obj.0 as usize] = to;
        }
        outcome
    }

    /// Applies one access against an explicit `view` of the cell — the
    /// state the accessing thread *observes*, which under a weak memory
    /// model (store buffers) can differ from the shared cell. Statistics
    /// and the outcome are identical to [`apply`](Self::apply) on a cell
    /// in state `view`; the shared cell itself is **not** written — a
    /// buffered store becomes globally visible only when the simulator
    /// later [`commit`](Self::commit)s it.
    pub fn apply_buffered(
        &mut self,
        obj: ObjectId,
        site: SiteId,
        kind: AccessKind,
        view: RefState,
    ) -> Result<AccessOutcome, NullRefError> {
        self.classify(obj, site, kind, view)
    }

    /// Commits a drained store-buffer entry: blindly writes the shared
    /// cell. Validation and statistics happened at
    /// [`apply_buffered`](Self::apply_buffered) time.
    pub fn commit(&mut self, obj: ObjectId, to: RefState) {
        self.cells[obj.0 as usize] = to;
    }

    /// The §3.1 state machine against an explicit observed state: updates
    /// statistics and returns the outcome, without touching the cell.
    fn classify(
        &mut self,
        obj: ObjectId,
        site: SiteId,
        kind: AccessKind,
        from: RefState,
    ) -> Result<AccessOutcome, NullRefError> {
        self.stats.accesses += 1;
        let fail = |this: &mut Self, k: NullRefKind| {
            this.stats.null_ref_errors += 1;
            Err(NullRefError {
                obj,
                site,
                access: kind,
                kind: k,
            })
        };
        match kind {
            AccessKind::Init => {
                self.stats.inits += 1;
                Ok(AccessOutcome::Transition {
                    from,
                    to: RefState::Live,
                })
            }
            AccessKind::Use | AccessKind::UnsafeApiCall => match from {
                RefState::Live => {
                    if kind == AccessKind::Use {
                        self.stats.uses += 1;
                    } else {
                        self.stats.unsafe_calls += 1;
                    }
                    Ok(AccessOutcome::Read)
                }
                RefState::Null => fail(self, NullRefKind::UseBeforeInit),
                RefState::Disposed => fail(self, NullRefKind::UseAfterFree),
            },
            AccessKind::Dispose => match from {
                RefState::Live => {
                    self.stats.disposes += 1;
                    Ok(AccessOutcome::Transition {
                        from,
                        to: RefState::Disposed,
                    })
                }
                RefState::Null | RefState::Disposed => fail(self, NullRefKind::DisposeOnNull),
            },
        }
    }

    /// Resets every cell to `Null` and clears statistics (fresh run).
    pub fn reset(&mut self) {
        self.cells.fill(RefState::Null);
        self.stats = HeapStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(2)
    }

    const S: SiteId = SiteId(0);
    const O: ObjectId = ObjectId(0);

    #[test]
    fn lifecycle_init_use_dispose() {
        let mut h = heap();
        assert!(h.apply(O, S, AccessKind::Init).is_ok());
        assert_eq!(h.state(O), RefState::Live);
        assert!(h.apply(O, S, AccessKind::Use).is_ok());
        assert!(h.apply(O, S, AccessKind::Dispose).is_ok());
        assert_eq!(h.state(O), RefState::Disposed);
    }

    #[test]
    fn use_before_init_raises() {
        let mut h = heap();
        let e = h.apply(O, S, AccessKind::Use).unwrap_err();
        assert_eq!(e.kind, NullRefKind::UseBeforeInit);
    }

    #[test]
    fn use_after_free_raises() {
        let mut h = heap();
        h.apply(O, S, AccessKind::Init).unwrap();
        h.apply(O, S, AccessKind::Dispose).unwrap();
        let e = h.apply(O, S, AccessKind::Use).unwrap_err();
        assert_eq!(e.kind, NullRefKind::UseAfterFree);
    }

    #[test]
    fn dispose_on_null_raises() {
        let mut h = heap();
        let e = h.apply(O, S, AccessKind::Dispose).unwrap_err();
        assert_eq!(e.kind, NullRefKind::DisposeOnNull);
        // Double dispose also raises.
        h.apply(O, S, AccessKind::Init).unwrap();
        h.apply(O, S, AccessKind::Dispose).unwrap();
        let e = h.apply(O, S, AccessKind::Dispose).unwrap_err();
        assert_eq!(e.kind, NullRefKind::DisposeOnNull);
    }

    #[test]
    fn reinit_resurrects_disposed_cell() {
        let mut h = heap();
        h.apply(O, S, AccessKind::Init).unwrap();
        h.apply(O, S, AccessKind::Dispose).unwrap();
        h.apply(O, S, AccessKind::Init).unwrap();
        assert_eq!(h.state(O), RefState::Live);
        assert!(h.apply(O, S, AccessKind::Use).is_ok());
    }

    #[test]
    fn unsafe_call_requires_live_object() {
        let mut h = heap();
        assert!(h.apply(O, S, AccessKind::UnsafeApiCall).is_err());
        h.apply(O, S, AccessKind::Init).unwrap();
        assert!(h.apply(O, S, AccessKind::UnsafeApiCall).is_ok());
        assert_eq!(h.stats().unsafe_calls, 1);
    }

    #[test]
    fn stats_count_successes_and_failures() {
        let mut h = heap();
        h.apply(O, S, AccessKind::Use).unwrap_err();
        h.apply(O, S, AccessKind::Init).unwrap();
        h.apply(O, S, AccessKind::Use).unwrap();
        h.apply(O, S, AccessKind::Dispose).unwrap();
        let st = h.stats();
        assert_eq!(st.accesses, 4);
        assert_eq!(st.null_ref_errors, 1);
        assert_eq!((st.inits, st.uses, st.disposes), (1, 1, 1));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = heap();
        h.apply(O, S, AccessKind::Init).unwrap();
        h.reset();
        assert_eq!(h.state(O), RefState::Null);
        assert_eq!(h.stats(), HeapStats::default());
    }

    #[test]
    fn cells_are_independent() {
        let mut h = heap();
        h.apply(ObjectId(0), S, AccessKind::Init).unwrap();
        assert_eq!(h.state(ObjectId(0)), RefState::Live);
        assert_eq!(h.state(ObjectId(1)), RefState::Null);
    }

    #[test]
    fn apply_buffered_validates_the_view_without_writing_the_cell() {
        let mut h = heap();
        // A buffered init: the thread's own view transitions, the shared
        // cell stays NULL until the commit.
        let out = h.apply_buffered(O, S, AccessKind::Init, RefState::Null).unwrap();
        assert_eq!(
            out,
            AccessOutcome::Transition {
                from: RefState::Null,
                to: RefState::Live
            }
        );
        assert_eq!(h.state(O), RefState::Null, "shared cell untouched");
        assert_eq!(h.stats().inits, 1, "stats counted at validation time");
        // Another thread reading shared memory meanwhile faults.
        let e = h.apply(O, S, AccessKind::Use).unwrap_err();
        assert_eq!(e.kind, NullRefKind::UseBeforeInit);
        // The drain makes the store globally visible.
        h.commit(O, RefState::Live);
        assert_eq!(h.state(O), RefState::Live);
        assert!(h.apply(O, S, AccessKind::Use).is_ok());
    }

    #[test]
    fn apply_buffered_reads_respect_the_observed_view() {
        let mut h = heap();
        // Shared cell is NULL, but the reader's own buffer holds Live.
        assert!(h.apply_buffered(O, S, AccessKind::Use, RefState::Live).is_ok());
        // Shared cell is Live, but the view is stale (pre-init): faults.
        h.commit(O, RefState::Live);
        let e = h.apply_buffered(O, S, AccessKind::Use, RefState::Null).unwrap_err();
        assert_eq!(e.kind, NullRefKind::UseBeforeInit);
    }

    #[test]
    fn apply_buffered_matches_apply_on_equal_views() {
        // Over every (kind, state) combination, `apply_buffered` with the
        // shared state as the view must agree with `apply` on outcome and
        // stats — the SC-equivalence of the buffered path.
        for kind in [
            AccessKind::Init,
            AccessKind::Use,
            AccessKind::Dispose,
            AccessKind::UnsafeApiCall,
        ] {
            for state in [RefState::Null, RefState::Live, RefState::Disposed] {
                let mut direct = heap();
                direct.cells[O.0 as usize] = state;
                let mut buffered = heap();
                buffered.cells[O.0 as usize] = state;
                let d = direct.apply(O, S, kind);
                let b = buffered.apply_buffered(O, S, kind, state);
                assert_eq!(d, b, "{kind:?} on {state:?}");
                assert_eq!(direct.stats(), buffered.stats(), "{kind:?} on {state:?}");
                if let Ok(AccessOutcome::Transition { to, .. }) = b {
                    buffered.commit(O, to);
                }
                assert_eq!(direct.state(O), buffered.state(O), "{kind:?} on {state:?}");
            }
        }
    }
}
