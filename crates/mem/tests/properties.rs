//! Property tests: the heap against a reference state machine.

use proptest::prelude::*;
use waffle_mem::{AccessKind, Heap, NullRefKind, ObjectId, RefState, SiteId};

/// The reference model: plain enum transitions.
fn model_apply(state: RefState, kind: AccessKind) -> (RefState, Option<NullRefKind>) {
    match kind {
        AccessKind::Init => (RefState::Live, None),
        AccessKind::Use | AccessKind::UnsafeApiCall => match state {
            RefState::Live => (state, None),
            RefState::Null => (state, Some(NullRefKind::UseBeforeInit)),
            RefState::Disposed => (state, Some(NullRefKind::UseAfterFree)),
        },
        AccessKind::Dispose => match state {
            RefState::Live => (RefState::Disposed, None),
            _ => (state, Some(NullRefKind::DisposeOnNull)),
        },
    }
}

fn kind_strategy() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Init),
        Just(AccessKind::Use),
        Just(AccessKind::Dispose),
        Just(AccessKind::UnsafeApiCall),
    ]
}

proptest! {
    /// The heap agrees with the reference model on every access sequence,
    /// across multiple independent cells.
    #[test]
    fn heap_matches_reference_model(
        ops in proptest::collection::vec((0u32..4, kind_strategy()), 0..200),
    ) {
        let mut heap = Heap::new(4);
        let mut model = [RefState::Null; 4];
        for (i, (obj, kind)) in ops.iter().enumerate() {
            let (next, expected_err) = model_apply(model[*obj as usize], *kind);
            let got = heap.apply(ObjectId(*obj), SiteId(i as u32), *kind);
            match (got, expected_err) {
                (Ok(_), None) => {}
                (Err(e), Some(k)) => prop_assert_eq!(e.kind, k),
                (got, expected) => prop_assert!(
                    false,
                    "op {i}: heap {:?} but model expects error {:?}",
                    got,
                    expected
                ),
            }
            model[*obj as usize] = next;
            prop_assert_eq!(heap.state(ObjectId(*obj)), next);
        }
    }

    /// Statistics always account for every access.
    #[test]
    fn stats_partition_accesses(
        ops in proptest::collection::vec((0u32..3, kind_strategy()), 0..100),
    ) {
        let mut heap = Heap::new(3);
        for (i, (obj, kind)) in ops.iter().enumerate() {
            let _ = heap.apply(ObjectId(*obj), SiteId(i as u32), *kind);
        }
        let s = heap.stats();
        prop_assert_eq!(s.accesses, ops.len() as u64);
        prop_assert_eq!(
            s.inits + s.uses + s.disposes + s.unsafe_calls + s.null_ref_errors,
            s.accesses
        );
    }

    /// Reset always restores the initial state, regardless of history.
    #[test]
    fn reset_is_total(
        ops in proptest::collection::vec((0u32..3, kind_strategy()), 0..60),
    ) {
        let mut heap = Heap::new(3);
        for (i, (obj, kind)) in ops.iter().enumerate() {
            let _ = heap.apply(ObjectId(*obj), SiteId(i as u32), *kind);
        }
        heap.reset();
        for o in 0..3 {
            prop_assert_eq!(heap.state(ObjectId(o)), RefState::Null);
        }
        prop_assert_eq!(heap.stats().accesses, 0);
    }
}
