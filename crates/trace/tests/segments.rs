//! Property tests for the on-disk segment format: arbitrary traces must
//! survive the write → read round trip with byte-identical columns, and
//! any single-byte corruption of the file must be *detected* — either
//! rejected at open (header/footer/trailer damage) or at segment load
//! (payload damage) — never silently accepted as different data.

use std::path::PathBuf;

use proptest::prelude::*;
use waffle_mem::{AccessKind, ObjectId, SiteRegistry};
use waffle_sim::{SimTime, ThreadId};
use waffle_trace::{ClockPool, SegmentClass, SegmentReader, Trace, TraceEvent, TraceIndex};
use waffle_vclock::ClockSnapshot;

fn kind_strategy() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Init),
        Just(AccessKind::Use),
        Just(AccessKind::Dispose),
        Just(AccessKind::UnsafeApiCall),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (
            0u64..1_000_000,
            0u32..5,
            0u32..6,
            kind_strategy(),
            proptest::collection::btree_map(0u32..4, 1u64..9, 0..4),
        ),
        1..60,
    )
    .prop_map(|rows| {
        let mut sites = SiteRegistry::new();
        let mut clocks = ClockPool::new();
        let mut events: Vec<TraceEvent> = rows
            .into_iter()
            .map(|(t, thread, obj, kind, clock)| {
                let site = sites.register(&format!("s-{thread}-{}", kind.label()), kind);
                TraceEvent {
                    time: SimTime::from_us(t),
                    thread: ThreadId(thread),
                    site,
                    obj: ObjectId(obj),
                    kind,
                    dyn_index: 0,
                    clock: clocks.intern(ClockSnapshot::from_entries(
                        clock.into_iter().map(|(k, v)| (ThreadId(k), v)),
                    )),
                }
            })
            .collect();
        events.sort_by_key(|e| e.time);
        Trace {
            workload: "prop-seg".into(),
            sites,
            events,
            forks: vec![],
            clocks,
            end_time: SimTime::from_ms(1_000),
        }
    })
}

fn tmpfile(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!("waffle-segprop-{}-{tag}.wseg", std::process::id()))
}

proptest! {
    /// write_segments → SegmentReader reproduces the in-memory index
    /// byte for byte: both column classes, the clock pool, and the
    /// catalog's event accounting.
    #[test]
    fn segments_round_trip_to_identical_columns(trace in trace_strategy(), tag in 0u64..u64::MAX) {
        let index = TraceIndex::build(&trace);
        let path = tmpfile(tag);
        let stats = index.write_segments(&path).unwrap();
        prop_assert_eq!(stats.events, trace.events.len() as u64);

        let mut reader = SegmentReader::open(&path).unwrap();
        prop_assert_eq!(&reader.catalog().workload, &trace.workload);
        prop_assert_eq!(reader.catalog().end_time, trace.end_time);
        prop_assert_eq!(reader.clocks(), &trace.clocks);
        let mem = reader.read_class_columns(SegmentClass::MemOrder).unwrap();
        let tsv = reader.read_class_columns(SegmentClass::Tsv).unwrap();
        prop_assert_eq!(&mem, &index.mem);
        prop_assert_eq!(&tsv, &index.tsv);
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping any single byte of the file is detected: open fails with
    /// `InvalidData`, or some segment load fails, or — when the flip lands
    /// in JSON the parser tolerates (e.g. an insignificant char of the
    /// footer it would re-derive) — the columns still match. What never
    /// happens is a clean read of *different* data.
    #[test]
    fn corruption_never_reads_back_differently(
        trace in trace_strategy(),
        flip_frac in 0u64..10_000,
        bit in 0u32..8,
        tag in 0u64..u64::MAX,
    ) {
        let index = TraceIndex::build(&trace);
        let path = tmpfile(tag.wrapping_add(1));
        index.write_segments(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() as u64 - 1) * flip_frac / 10_000) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        match SegmentReader::open(&path) {
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
            Ok(mut reader) => {
                let mem = reader.read_class_columns(SegmentClass::MemOrder);
                let tsv = reader.read_class_columns(SegmentClass::Tsv);
                match (mem, tsv) {
                    (Ok(mem), Ok(tsv)) => {
                        // The flip must have been semantically neutral
                        // (checksums still verified): data is unchanged.
                        prop_assert_eq!(&mem, &index.mem);
                        prop_assert_eq!(&tsv, &index.tsv);
                    }
                    (Err(e), _) | (_, Err(e)) => {
                        prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                    }
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
