//! The join-aware precision extension: join edges prune teardown pairs.

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_sim::time::{ms, us};
use waffle_sim::{SimConfig, SimTime, Simulator, Workload, WorkloadBuilder};
use waffle_trace::{ClockProtocol, TraceRecorder};

/// Classic teardown: workers use the objects, main joins, then disposes.
/// The use→dispose pairs are join-ordered — invisible to fork-only clocks,
/// pruned by the join-aware protocol.
fn teardown_workload() -> Workload {
    let mut b = WorkloadBuilder::new("ja.teardown");
    let objs = b.objects("o", 3);
    let started = b.event("s");
    let objs_w = objs.clone();
    let worker = b.script("worker", move |s| {
        s.wait(started);
        for (i, o) in objs_w.iter().enumerate() {
            s.compute(us(50)).use_(*o, &format!("W.use:{i}"), us(20));
        }
    });
    let objs_m = objs.clone();
    let main = b.script("main", move |s| {
        for (i, o) in objs_m.iter().enumerate() {
            s.init(*o, &format!("M.init:{i}"), us(20));
        }
        s.fork(worker)
            .fork(worker)
            .signal(started)
            .join_children()
            .pad(ms(1));
        for (i, o) in objs_m.iter().enumerate() {
            s.dispose(*o, &format!("M.dispose:{i}"), us(20));
        }
    });
    b.main(main);
    b.build()
}

fn candidates(protocol: ClockProtocol) -> usize {
    let w = teardown_workload();
    let mut rec = TraceRecorder::with_options(&w, SimTime::ZERO, protocol);
    let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
    analyze(&rec.into_trace(), &AnalyzerConfig::default())
        .candidates
        .len()
}

#[test]
fn fork_only_clocks_keep_join_ordered_pairs() {
    // The paper's analysis (fork edges only): the use→dispose pairs stay.
    assert!(candidates(ClockProtocol::Classic) >= 3);
}

#[test]
fn join_aware_clocks_prune_the_teardown_pairs() {
    assert_eq!(candidates(ClockProtocol::ClassicWithJoins), 0);
}

#[test]
fn join_awareness_does_not_prune_real_races() {
    // A genuine race (no join between the use and the dispose) must keep
    // its candidate under both protocols.
    let mut b = WorkloadBuilder::new("ja.race");
    let o = b.object("o");
    let started = b.event("s");
    let worker = b.script("worker", move |s| {
        s.wait(started).pad(ms(2)).use_(o, "W.use:1", us(20));
    });
    let main = b.script("main", move |s| {
        s.init(o, "M.init:1", us(20))
            .fork(worker)
            .signal(started)
            .pad(ms(10))
            .dispose(o, "M.dispose:9", us(20))
            .join_children();
    });
    b.main(main);
    let w = b.build();
    for protocol in [ClockProtocol::Classic, ClockProtocol::ClassicWithJoins] {
        let mut rec = TraceRecorder::with_options(&w, SimTime::ZERO, protocol);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
        assert_eq!(plan.candidates.len(), 1, "{protocol:?}");
    }
}
