//! Property tests: traces and statistics over arbitrary event streams.

use proptest::prelude::*;
use waffle_mem::{AccessKind, ObjectId, SiteRegistry};
use waffle_sim::{ForkEdge, SimTime, ThreadId};
use waffle_trace::{ClockPool, Trace, TraceEvent, TraceIndex, TraceStats};
use waffle_vclock::ClockSnapshot;

fn kind_strategy() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Init),
        Just(AccessKind::Use),
        Just(AccessKind::Dispose),
        Just(AccessKind::UnsafeApiCall),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (
            0u64..1_000_000,
            0u32..5,
            0u32..4,
            kind_strategy(),
            proptest::collection::btree_map(0u32..4, 1u64..9, 0..4),
        ),
        0..50,
    )
    .prop_map(|rows| {
        let mut sites = SiteRegistry::new();
        let mut clocks = ClockPool::new();
        let mut events: Vec<TraceEvent> = rows
            .into_iter()
            .map(|(t, thread, obj, kind, clock)| {
                let site = sites.register(&format!("s-{thread}-{}", kind.label()), kind);
                TraceEvent {
                    time: SimTime::from_us(t),
                    thread: ThreadId(thread),
                    site,
                    obj: ObjectId(obj),
                    kind,
                    dyn_index: 0,
                    clock: clocks.intern(ClockSnapshot::from_entries(
                        clock.into_iter().map(|(k, v)| (ThreadId(k), v)),
                    )),
                }
            })
            .collect();
        events.sort_by_key(|e| e.time);
        // Dynamic indices per site, in order.
        let mut counts = std::collections::HashMap::new();
        for e in &mut events {
            let c = counts.entry(e.site).or_insert(0u64);
            e.dyn_index = *c;
            *c += 1;
        }
        Trace {
            workload: "prop-trace".into(),
            sites,
            events,
            forks: vec![ForkEdge {
                parent: ThreadId(0),
                child: ThreadId(1),
                time: SimTime::ZERO,
            }],
            clocks,
            end_time: SimTime::from_ms(1_000),
        }
    })
}

proptest! {
    /// Any trace survives the JSON persistence round trip intact.
    #[test]
    fn traces_round_trip_through_json(trace in trace_strategy()) {
        let back = Trace::from_json(&trace.to_json().unwrap()).unwrap();
        prop_assert_eq!(back.events, trace.events);
        prop_assert_eq!(back.forks, trace.forks);
        prop_assert_eq!(back.clocks, trace.clocks);
        prop_assert_eq!(back.end_time, trace.end_time);
        prop_assert_eq!(back.sites.len(), trace.sites.len());
    }

    /// Serialization is a fixpoint: parsing `to_json` output and
    /// re-serializing produces byte-identical JSON, the interned clock
    /// pool keeps its exact size (no snapshot is duplicated or dropped
    /// by the round trip), and the pool holds each snapshot only once.
    #[test]
    fn json_serialization_is_a_fixpoint(trace in trace_strategy()) {
        let first = trace.to_json().unwrap();
        let back = Trace::from_json(&first).unwrap();
        let second = back.to_json().unwrap();
        prop_assert_eq!(&first, &second, "re-serialization must be byte-identical");
        prop_assert_eq!(back.clocks.len(), trace.clocks.len());
        let snaps = back.clocks.snapshots();
        for (i, a) in snaps.iter().enumerate() {
            for b in &snaps[i + 1..] {
                prop_assert!(
                    a != b,
                    "interned pool holds a duplicate snapshot after the round trip"
                );
            }
        }
    }

    /// The columnar index is an object-major permutation of each class's
    /// events: identical row multiset, contiguous CSR segments of one
    /// object each, time-sorted within every segment.
    #[test]
    fn index_is_an_object_major_permutation(trace in trace_strategy()) {
        let idx = TraceIndex::build(&trace);
        prop_assert_eq!(idx.mem.len(), trace.mem_order_events().count());
        prop_assert_eq!(idx.tsv.len(), trace.tsv_events().count());
        for cols in [&idx.mem, &idx.tsv] {
            prop_assert_eq!(*cols.offsets.last().unwrap() as usize, cols.len());
            let mut prev = None;
            for k in 0..cols.object_count() {
                if let Some(p) = prev {
                    prop_assert!(p < cols.objects[k], "objects ascend");
                }
                prev = Some(cols.objects[k]);
                let r = cols.range(k);
                prop_assert!(!r.is_empty(), "no empty segments");
                for i in r.clone() {
                    prop_assert_eq!(cols.objs[i], cols.objects[k]);
                }
                for w in cols.times[r].windows(2) {
                    prop_assert!(w[0] <= w[1], "segment time-sorted");
                }
            }
        }
        // Row multiset is preserved (the permutation drops nothing).
        let mut want: std::collections::HashMap<_, i64> = std::collections::HashMap::new();
        for e in &trace.events {
            *want.entry((e.time, e.thread, e.site, e.obj, e.kind, e.clock)).or_insert(0) += 1;
        }
        for cols in [&idx.mem, &idx.tsv] {
            for i in 0..cols.len() {
                let key = (cols.times[i], cols.threads[i], cols.sites[i],
                           cols.objs[i], cols.kinds[i], cols.clocks[i]);
                *want.get_mut(&key).expect("indexed row exists in trace") -= 1;
            }
        }
        prop_assert!(want.values().all(|&n| n == 0));
    }

    /// Every event's clock handle resolves in the trace's pool.
    #[test]
    fn clock_handles_resolve(trace in trace_strategy()) {
        for e in &trace.events {
            prop_assert!((e.clock.0 as usize) < trace.clocks.len());
            let _ = trace.event_clock(e);
        }
    }

    /// Statistics partition the events exactly by instrumentation class.
    #[test]
    fn stats_partition_by_class(trace in trace_strategy()) {
        let stats = TraceStats::compute(&trace);
        prop_assert_eq!(
            stats.mem_order_accesses + stats.tsv_accesses,
            trace.events.len() as u64
        );
        let per_site_total: u64 = stats.per_site.values().sum();
        prop_assert_eq!(per_site_total, trace.events.len() as u64);
        // Site classes are consistent with the registry.
        for (site, _) in stats.per_site.iter() {
            prop_assert!(trace.sites.info(*site).is_some());
        }
    }

    /// The class filters partition the event stream.
    #[test]
    fn event_filters_partition(trace in trace_strategy()) {
        let mo = trace.mem_order_events().count();
        let tsv = trace.tsv_events().count();
        prop_assert_eq!(mo + tsv, trace.events.len());
    }
}
