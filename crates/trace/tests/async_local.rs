//! The async-local extension (§4.1's task note): spawner→task causality
//! is only visible when task clocks are tracked.

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_sim::time::us;
use waffle_sim::{SimConfig, SimTime, Simulator, Workload, WorkloadBuilder};
use waffle_trace::TraceRecorder;

/// Main initializes an object, then spawns a task that uses it; the task
/// runs on a separate pool-worker thread. The init→use pair is causally
/// ordered by the spawn edge, but the edge is invisible to thread-level
/// clocks: the worker thread was forked *before* the init.
fn task_workload() -> Workload {
    let mut b = WorkloadBuilder::new("alocal.spawn");
    let o = b.object("msg");
    let ready = b.event("ready");
    let consumer_task = b.script("consumer-task", move |s| {
        s.compute(us(100)).use_(o, "Consumer.handle:4", us(30));
    });
    let worker = b.script("pool-worker", move |s| {
        s.wait(ready).run_tasks();
    });
    let main = b.script("main", move |s| {
        s.fork(worker)
            .compute(us(200))
            .init(o, "Producer.make:9", us(30))
            .spawn_task(consumer_task)
            .signal(ready)
            .join_children();
    });
    b.main(main);
    b.build()
}

fn plan_with(async_local: bool) -> waffle_analysis::Plan {
    let w = task_workload();
    let rec = TraceRecorder::with_overhead(&w, SimTime::ZERO);
    let mut rec = if async_local {
        rec
    } else {
        rec.without_async_local()
    };
    let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
    analyze(&rec.into_trace(), &AnalyzerConfig::default())
}

#[test]
fn async_local_clocks_prune_the_spawn_ordered_pair() {
    let plan = plan_with(true);
    assert!(
        plan.candidates.is_empty(),
        "spawn-ordered pair must be pruned: {:?}",
        plan.candidates
    );
    assert_eq!(plan.stats.pruned_ordered, 1);
}

#[test]
fn thread_only_clocks_miss_the_spawn_edge() {
    let plan = plan_with(false);
    assert_eq!(
        plan.candidates.len(),
        1,
        "without async-local tracking the ordered pair looks racy"
    );
    assert_eq!(
        plan.candidates[0].kind,
        waffle_analysis::BugKind::UseBeforeInit
    );
}

#[test]
fn task_workload_is_clean_under_any_seed() {
    let w = task_workload();
    for seed in 0..10 {
        let cfg = SimConfig {
            seed,
            timing_noise_pct: 5,
            ..SimConfig::default()
        };
        let r = Simulator::run(&w, cfg, &mut waffle_sim::NullMonitor);
        assert!(!r.manifested());
        assert_eq!(r.tasks_spawned, 1);
    }
}
