//! Trace statistics: the measurements behind Table 2 and §3.3.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, SiteId};
use waffle_sim::SimTime;

use crate::event::Trace;

/// Per-site and aggregate statistics over one trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Unique static sites of the MemOrder class that executed.
    pub mem_order_sites: usize,
    /// Unique static sites of the TSV class that executed.
    pub tsv_sites: usize,
    /// Dynamic accesses of the MemOrder class.
    pub mem_order_accesses: u64,
    /// Dynamic accesses of the TSV class.
    pub tsv_accesses: u64,
    /// Dynamic execution count per site.
    pub per_site: BTreeMap<SiteId, u64>,
    /// End-to-end virtual time of the traced run.
    pub end_time: SimTime,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let mut per_site: BTreeMap<SiteId, u64> = BTreeMap::new();
        let mut mo_sites: HashMap<SiteId, ()> = HashMap::new();
        let mut tsv_sites: HashMap<SiteId, ()> = HashMap::new();
        let mut mo = 0u64;
        let mut tsv = 0u64;
        for e in &trace.events {
            *per_site.entry(e.site).or_insert(0) += 1;
            if e.kind.is_mem_order() {
                mo += 1;
                mo_sites.insert(e.site, ());
            } else {
                tsv += 1;
                tsv_sites.insert(e.site, ());
            }
        }
        Self {
            mem_order_sites: mo_sites.len(),
            tsv_sites: tsv_sites.len(),
            mem_order_accesses: mo,
            tsv_accesses: tsv,
            per_site,
            end_time: trace.end_time,
        }
    }

    /// Median dynamic-instance count across sites of `kind_filter` (the
    /// §3.3 measurement: "the median number of dynamic instances for all
    /// object initialization operations is 2"). Returns `None` when no
    /// matching site executed.
    pub fn median_dyn_instances(
        &self,
        trace: &Trace,
        kind_filter: impl Fn(AccessKind) -> bool,
    ) -> Option<u64> {
        let mut counts: Vec<u64> = self
            .per_site
            .iter()
            .filter(|(site, _)| {
                trace
                    .sites
                    .info(**site)
                    .map(|i| kind_filter(i.kind))
                    .unwrap_or(false)
            })
            .map(|(_, c)| *c)
            .collect();
        if counts.is_empty() {
            return None;
        }
        counts.sort_unstable();
        Some(counts[counts.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::index::{ClockId, ClockPool};
    use waffle_mem::{ObjectId, SiteRegistry};
    use waffle_sim::ThreadId;

    fn trace_with(counts: &[(AccessKind, u64)]) -> Trace {
        let mut sites = SiteRegistry::new();
        let mut events = Vec::new();
        for (i, (kind, n)) in counts.iter().enumerate() {
            let site = sites.register(&format!("s{i}"), *kind);
            for j in 0..*n {
                events.push(TraceEvent {
                    time: SimTime::from_us(events.len() as u64),
                    thread: ThreadId(0),
                    site,
                    obj: ObjectId(0),
                    kind: *kind,
                    dyn_index: j,
                    clock: ClockId::EMPTY,
                });
            }
        }
        Trace {
            workload: "t".into(),
            sites,
            events,
            forks: vec![],
            clocks: ClockPool::new(),
            end_time: SimTime::from_ms(1),
        }
    }

    #[test]
    fn site_and_access_counts_partition_by_class() {
        let t = trace_with(&[
            (AccessKind::Init, 2),
            (AccessKind::Use, 5),
            (AccessKind::UnsafeApiCall, 3),
        ]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.mem_order_sites, 2);
        assert_eq!(s.tsv_sites, 1);
        assert_eq!(s.mem_order_accesses, 7);
        assert_eq!(s.tsv_accesses, 3);
    }

    #[test]
    fn median_dyn_instances_for_inits() {
        let t = trace_with(&[
            (AccessKind::Init, 1),
            (AccessKind::Init, 2),
            (AccessKind::Init, 9),
            (AccessKind::Use, 100),
        ]);
        let s = TraceStats::compute(&t);
        let median = s
            .median_dyn_instances(&t, |k| k == AccessKind::Init)
            .unwrap();
        assert_eq!(median, 2);
    }

    #[test]
    fn median_is_none_without_matching_sites() {
        let t = trace_with(&[(AccessKind::Use, 3)]);
        let s = TraceStats::compute(&t);
        assert!(s
            .median_dyn_instances(&t, |k| k == AccessKind::Init)
            .is_none());
    }
}
