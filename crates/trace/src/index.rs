//! The columnar trace index and the interned clock-snapshot pool.
//!
//! Trace analysis used to chase per-event heap structures: every pass
//! regrouped `Vec<TraceEvent>` into a `BTreeMap<ObjectId, Vec<&TraceEvent>>`
//! and every event carried its own `ClockSnapshot` clone. [`TraceIndex`]
//! replaces that with a struct-of-arrays layout built **once** per trace:
//!
//! - [`ClockPool`]: each distinct vector-clock snapshot is stored once and
//!   events carry a dense [`ClockId`] handle (id 0 is always the empty
//!   snapshot). The recorder interns at record time, so identical
//!   snapshots — the common case between fork/join edges — are never
//!   cloned per event.
//! - [`ClassColumns`]: one column set per instrumentation class (MemOrder
//!   and TSV), with events permuted into *object-major* order — all events
//!   of the lowest `ObjectId` first, trace order preserved within each
//!   object — plus a CSR-style offset table (`objects[k]`'s events occupy
//!   `offsets[k]..offsets[k + 1]`). The near-miss window scan becomes a
//!   linear two-pointer sweep over contiguous arrays.
//!
//! Construction asserts (in debug builds) that each object's events are
//! time-sorted — the invariant the analyzer's early-exit window scan
//! silently relied on when it walked `BTreeMap` groups.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, ObjectId, SiteId};
use waffle_sim::{SimTime, ThreadId};
use waffle_vclock::ClockSnapshot;

use crate::event::Trace;

/// Dense handle into a [`ClockPool`]. `ClockId(0)` is always the empty
/// snapshot, so a default-constructed id is valid in any pool.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClockId(pub u32);

impl ClockId {
    /// The empty snapshot present in every pool.
    pub const EMPTY: ClockId = ClockId(0);

    /// Checked construction from a table index: `None` once the index has
    /// outgrown the 32-bit id space. Every place a pool length becomes an
    /// id goes through this instead of a bare `as u32` cast, which would
    /// silently wrap a 4-billion-snapshot pool back onto id 0.
    pub fn try_new(index: usize) -> Option<ClockId> {
        u32::try_from(index).ok().map(ClockId)
    }
}

/// Interned vector-clock snapshots: one copy per distinct snapshot, shared
/// by every trace event that observed it.
///
/// The pool serializes as part of the [`Trace`]; the dedup map used while
/// interning is transient state held by the producer (see
/// [`ClockInterner`]), so persisted traces carry only the snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockPool {
    snapshots: Vec<ClockSnapshot<ThreadId>>,
}

impl Default for ClockPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockPool {
    /// Creates a pool holding only the empty snapshot (at [`ClockId::EMPTY`]).
    pub fn new() -> Self {
        Self {
            snapshots: vec![ClockSnapshot::new()],
        }
    }

    /// Number of distinct snapshots (≥ 1 for any pool built here).
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the pool holds no snapshots (only possible for a pool
    /// deserialized from corrupt input).
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshot behind `id`.
    ///
    /// # Panics
    /// When `id` was not produced by this pool.
    pub fn get(&self, id: ClockId) -> &ClockSnapshot<ThreadId> {
        &self.snapshots[id.0 as usize]
    }

    /// All snapshots, indexable by `ClockId.0`.
    pub fn snapshots(&self) -> &[ClockSnapshot<ThreadId>] {
        &self.snapshots
    }

    /// Interns `snap`, returning the id of the existing copy when one is
    /// already pooled. Linear-scan dedup — convenient for hand-built test
    /// traces; hot paths (the recorder) use a [`ClockInterner`] instead.
    ///
    /// # Panics
    /// When a fresh snapshot would push the pool past the 32-bit id space.
    /// Long-running producers (streaming ingest) use
    /// [`try_intern`](Self::try_intern) and surface the overflow as an
    /// error instead.
    pub fn intern(&mut self, snap: ClockSnapshot<ThreadId>) -> ClockId {
        self.try_intern(snap)
            .expect("clock pool overflow: more than u32::MAX distinct snapshots")
    }

    /// Fallible [`intern`](Self::intern): `None` when a fresh snapshot
    /// would not fit the 32-bit id space (previously the id wrapped
    /// silently and aliased an unrelated early snapshot).
    pub fn try_intern(&mut self, snap: ClockSnapshot<ThreadId>) -> Option<ClockId> {
        match self.snapshots.iter().position(|s| *s == snap) {
            Some(i) => ClockId::try_new(i),
            None => {
                let id = ClockId::try_new(self.snapshots.len())?;
                self.snapshots.push(snap);
                Some(id)
            }
        }
    }

    /// Appends `snap` without deduplication, returning its id — `None` on
    /// id-space overflow. Streaming ingest uses this: the producer already
    /// interned on its side and ships snapshots in dense id order, so a
    /// dedup scan per snapshot would be wasted work.
    pub fn try_push(&mut self, snap: ClockSnapshot<ThreadId>) -> Option<ClockId> {
        let id = ClockId::try_new(self.snapshots.len())?;
        self.snapshots.push(snap);
        Some(id)
    }
}

/// O(log n) dedup map over a [`ClockPool`], held by the pool's producer.
///
/// Kept outside the pool so the serialized trace carries each snapshot
/// once, not twice (the map keys would double it).
#[derive(Debug, Default)]
pub struct ClockInterner {
    ids: BTreeMap<ClockSnapshot<ThreadId>, ClockId>,
}

impl ClockInterner {
    /// Creates an interner whose map covers everything already in `pool`.
    pub fn for_pool(pool: &ClockPool) -> Self {
        Self {
            ids: pool
                .snapshots
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let id = ClockId::try_new(i)
                        .expect("clock pool overflow: more than u32::MAX distinct snapshots");
                    (s.clone(), id)
                })
                .collect(),
        }
    }

    /// Interns `snap` into `pool`, deduplicating against every snapshot
    /// interned through this interner.
    ///
    /// # Panics
    /// On 32-bit id-space overflow; see [`try_intern`](Self::try_intern).
    pub fn intern(&mut self, pool: &mut ClockPool, snap: ClockSnapshot<ThreadId>) -> ClockId {
        self.try_intern(pool, snap)
            .expect("clock pool overflow: more than u32::MAX distinct snapshots")
    }

    /// Fallible [`intern`](Self::intern): `None` when a fresh snapshot
    /// would overflow the 32-bit id space.
    pub fn try_intern(
        &mut self,
        pool: &mut ClockPool,
        snap: ClockSnapshot<ThreadId>,
    ) -> Option<ClockId> {
        if let Some(&id) = self.ids.get(&snap) {
            return Some(id);
        }
        let id = ClockId::try_new(pool.snapshots.len())?;
        pool.snapshots.push(snap.clone());
        self.ids.insert(snap, id);
        Some(id)
    }
}

/// Struct-of-arrays event columns for one instrumentation class, permuted
/// into object-major order with a CSR offset table.
///
/// All event columns have equal length `n`; `objects` lists the distinct
/// object ids in ascending order and `offsets` (length `objects.len() + 1`)
/// brackets each object's contiguous, time-sorted slice of the columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassColumns {
    /// Virtual timestamps.
    pub times: Vec<SimTime>,
    /// Accessing threads.
    pub threads: Vec<ThreadId>,
    /// Static sites.
    pub sites: Vec<SiteId>,
    /// Accessed objects (constant within each CSR segment).
    pub objs: Vec<ObjectId>,
    /// Operation classes.
    pub kinds: Vec<AccessKind>,
    /// Pooled clock handles.
    pub clocks: Vec<ClockId>,
    /// Distinct objects, ascending.
    pub objects: Vec<ObjectId>,
    /// CSR offsets: `objects[k]`'s events are `offsets[k]..offsets[k + 1]`.
    pub offsets: Vec<u32>,
}

/// Reusable scratch buffers for the two-pass counting sort in
/// [`ClassColumns`] construction.
///
/// One index build needs three transient tables (per-object counts, the
/// object→slot map, and the scatter cursors), each sized by the largest
/// object id. A caller that builds many indexes — the detector rebuilds one
/// per delay-injection attempt — can hold a single arena and rebuild
/// without reallocating any of them: the vectors are cleared, not dropped,
/// so their capacity persists across builds.
#[derive(Debug, Default)]
pub struct IndexArena {
    counts: Vec<u32>,
    slot_of: Vec<u32>,
    cursor: Vec<u32>,
}

impl IndexArena {
    /// Creates an empty arena; buffers grow on first use and persist.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ClassColumns {
    /// Builds the columns from an execution-ordered event slice, borrowing
    /// `arena`'s scratch tables instead of allocating fresh ones. Taking a
    /// slice (not a [`Trace`]) lets streaming ingest reuse the counting
    /// sort on its pending buffer between seals.
    pub(crate) fn build_in(
        events: &[crate::event::TraceEvent],
        class: impl Fn(AccessKind) -> bool,
        arena: &mut IndexArena,
    ) -> Self {
        // Pass 1: per-object counts. Object ids are dense small integers
        // (the workload builder hands them out sequentially), so a
        // direct-indexed table beats a map: the counting sort then runs in
        // pure array ops with no per-event comparisons.
        let counts = &mut arena.counts;
        counts.clear();
        let mut n = 0usize;
        for e in events {
            if class(e.kind) {
                let id = e.obj.0 as usize;
                if id >= counts.len() {
                    counts.resize(id + 1, 0);
                }
                counts[id] = counts[id]
                    .checked_add(1)
                    .expect("class column overflow: an object holds more than u32::MAX events");
                n += 1;
            }
        }
        // Ascending-id iteration keeps `objects` sorted, which the
        // analyzer's deterministic shard merge relies on.
        let present = counts.iter().filter(|&&c| c > 0).count();
        let mut objects = Vec::with_capacity(present);
        let mut offsets = Vec::with_capacity(present + 1);
        offsets.push(0u32);
        let slot_of = &mut arena.slot_of;
        slot_of.clear();
        slot_of.resize(counts.len(), u32::MAX);
        for (id, count) in counts.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            // Slot indexes fit by construction (slots ≤ distinct u32
            // object ids), but the running CSR offset is a genuine event
            // total and must not wrap past the u32 offset table.
            slot_of[id] = u32::try_from(objects.len())
                .expect("object table overflow: more than u32::MAX distinct objects");
            objects.push(ObjectId(id as u32));
            offsets.push(
                offsets
                    .last()
                    .unwrap()
                    .checked_add(*count)
                    .expect("class column overflow: more than u32::MAX events in one class"),
            );
        }
        // Pass 2: scatter events into their object segment. Iterating the
        // trace in execution order keeps each segment in trace (and hence
        // time) order.
        let cursor = &mut arena.cursor;
        cursor.clear();
        cursor.extend_from_slice(&offsets[..offsets.len().saturating_sub(1)]);
        let mut cols = ClassColumns {
            times: vec![SimTime::ZERO; n],
            threads: vec![ThreadId(0); n],
            sites: vec![SiteId(0); n],
            objs: vec![ObjectId(0); n],
            kinds: vec![AccessKind::Use; n],
            clocks: vec![ClockId::EMPTY; n],
            objects,
            offsets,
        };
        for e in events {
            if !class(e.kind) {
                continue;
            }
            let slot = slot_of[e.obj.0 as usize] as usize;
            let i = cursor[slot] as usize;
            cursor[slot] += 1;
            cols.times[i] = e.time;
            cols.threads[i] = e.thread;
            cols.sites[i] = e.site;
            cols.objs[i] = e.obj;
            cols.kinds[i] = e.kind;
            cols.clocks[i] = e.clock;
        }
        cols.debug_assert_sorted();
        cols
    }

    /// Debug-build check of the invariant the analyzer's early-exit window
    /// scan depends on: within every object segment, timestamps are
    /// non-decreasing. The recorder guarantees this (the simulator
    /// dispatches in virtual-time order and the recorder appends), but a
    /// hand-built or corrupted trace could violate it and silently truncate
    /// the scan.
    fn debug_assert_sorted(&self) {
        #[cfg(debug_assertions)]
        for k in 0..self.objects.len() {
            let seg = &self.times[self.range(k)];
            for w in seg.windows(2) {
                debug_assert!(
                    w[0] <= w[1],
                    "object {} events out of time order: {:?} then {:?}",
                    self.objects[k],
                    w[0],
                    w[1]
                );
            }
        }
    }

    /// Total events in this class.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the class recorded no events.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of distinct objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Column range of object slot `k` (not an `ObjectId` — index into
    /// [`objects`](Self::objects)).
    pub fn range(&self, k: usize) -> std::ops::Range<usize> {
        self.offsets[k] as usize..self.offsets[k + 1] as usize
    }

    /// Full structural check for columns assembled outside
    /// [`TraceIndex::build`] (e.g. reloaded from disk): equal column
    /// lengths, a well-formed CSR table over ascending objects, and
    /// time-sorted segments whose `objs` entries match their slot.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.times.len();
        if [
            self.threads.len(),
            self.sites.len(),
            self.objs.len(),
            self.kinds.len(),
            self.clocks.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err("column lengths differ".into());
        }
        if self.offsets.len() != self.objects.len() + 1
            || self.offsets.first().copied().unwrap_or(1) != 0
            || *self.offsets.last().unwrap_or(&0) as usize != n
        {
            return Err("CSR offset table malformed".into());
        }
        if self.objects.windows(2).any(|w| w[0] >= w[1]) {
            return Err("objects not strictly ascending".into());
        }
        for k in 0..self.objects.len() {
            let r = self.range(k);
            if r.is_empty() {
                return Err(format!("empty segment for {}", self.objects[k]));
            }
            if self.objs[r.clone()].iter().any(|&o| o != self.objects[k]) {
                return Err(format!("objs column disagrees with slot {k}"));
            }
            if self.times[r].windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("segment for {} not time-sorted", self.objects[k]));
            }
        }
        Ok(())
    }
}

/// Size statistics of a built index (reported by `waffle analyze --stats`
/// and the `analysis_rate` bench).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct IndexStats {
    /// Events indexed across both classes.
    pub events: usize,
    /// MemOrder-class events.
    pub mem_events: usize,
    /// TSV-class events.
    pub tsv_events: usize,
    /// Distinct objects with MemOrder events.
    pub mem_objects: usize,
    /// Distinct objects with TSV events.
    pub tsv_objects: usize,
    /// Distinct clock snapshots in the trace's pool.
    pub distinct_clocks: usize,
}

/// The shared columnar index every analysis pass consumes. Built once from
/// a [`Trace`]; borrows it for site/clock resolution.
#[derive(Debug)]
pub struct TraceIndex<'t> {
    /// The indexed trace.
    pub trace: &'t Trace,
    /// MemOrder-class columns (near-miss candidate + interference scans).
    pub mem: ClassColumns,
    /// TSV-class columns (thread-safety-violation scan).
    pub tsv: ClassColumns,
}

impl<'t> TraceIndex<'t> {
    /// Builds the index: one pass per class over the trace's events.
    pub fn build(trace: &'t Trace) -> Self {
        Self::build_with_arena(trace, &mut IndexArena::new())
    }

    /// Builds the index reusing `arena`'s scratch tables — the choice for
    /// callers that index many traces in a loop (the detector builds one
    /// per injection attempt); repeated builds stop reallocating the
    /// counting-sort scratch.
    pub fn build_with_arena(trace: &'t Trace, arena: &mut IndexArena) -> Self {
        Self {
            trace,
            mem: ClassColumns::build_in(&trace.events, AccessKind::is_mem_order, arena),
            tsv: ClassColumns::build_in(&trace.events, AccessKind::is_tsv, arena),
        }
    }

    /// Resolves a pooled clock handle.
    pub fn clock(&self, id: ClockId) -> &ClockSnapshot<ThreadId> {
        self.trace.clocks.get(id)
    }

    /// Size statistics of this index.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            events: self.mem.len() + self.tsv.len(),
            mem_events: self.mem.len(),
            tsv_events: self.tsv.len(),
            mem_objects: self.mem.object_count(),
            tsv_objects: self.tsv.object_count(),
            distinct_clocks: self.trace.clocks.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use waffle_mem::SiteRegistry;

    fn trace() -> Trace {
        let mut sites = SiteRegistry::new();
        let si = sites.register("init", AccessKind::Init);
        let su = sites.register("use", AccessKind::Use);
        let sc = sites.register("call", AccessKind::UnsafeApiCall);
        let mut clocks = ClockPool::new();
        let c1 = clocks.intern(ClockSnapshot::from_entries([(ThreadId(0), 1)]));
        let ev = |t_us: u64, thread: u32, site, obj: u32, kind, clock| TraceEvent {
            time: SimTime::from_us(t_us),
            thread: ThreadId(thread),
            site,
            obj: ObjectId(obj),
            kind,
            dyn_index: 0,
            clock,
        };
        Trace {
            workload: "idx".into(),
            sites,
            events: vec![
                ev(10, 0, si, 2, AccessKind::Init, c1),
                ev(20, 0, sc, 0, AccessKind::UnsafeApiCall, ClockId::EMPTY),
                ev(30, 1, su, 2, AccessKind::Use, ClockId::EMPTY),
                ev(40, 1, su, 1, AccessKind::Use, c1),
                ev(50, 0, su, 2, AccessKind::Use, c1),
            ],
            forks: vec![],
            clocks,
            end_time: SimTime::from_us(60),
        }
    }

    #[test]
    fn columns_partition_by_class_and_object() {
        let t = trace();
        let idx = TraceIndex::build(&t);
        assert_eq!(idx.mem.len(), 4);
        assert_eq!(idx.tsv.len(), 1);
        assert_eq!(idx.mem.objects, vec![ObjectId(1), ObjectId(2)]);
        assert_eq!(idx.mem.offsets, vec![0, 1, 4]);
        // Object 2's segment keeps trace order (= time order).
        let seg = idx.mem.range(1);
        assert_eq!(
            idx.mem.times[seg.clone()],
            [SimTime::from_us(10), SimTime::from_us(30), SimTime::from_us(50)]
        );
        assert!(idx.mem.objs[seg].iter().all(|&o| o == ObjectId(2)));
        let stats = idx.stats();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.mem_objects, 2);
        assert_eq!(stats.tsv_objects, 1);
        assert_eq!(stats.distinct_clocks, 2);
    }

    #[test]
    fn clock_handles_resolve_through_the_pool() {
        let t = trace();
        let idx = TraceIndex::build(&t);
        // Event 0 (object 2, first in segment) carries the interned clock.
        let seg = idx.mem.range(1);
        let id = idx.mem.clocks[seg.start];
        assert_eq!(idx.clock(id).get(&ThreadId(0)), 1);
        assert!(idx.clock(ClockId::EMPTY).is_empty());
    }

    #[test]
    fn pool_interning_deduplicates() {
        let mut pool = ClockPool::new();
        let a = pool.intern(ClockSnapshot::from_entries([(ThreadId(1), 2)]));
        let b = pool.intern(ClockSnapshot::from_entries([(ThreadId(1), 2)]));
        let c = pool.intern(ClockSnapshot::from_entries([(ThreadId(1), 3)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 3, "empty + two distinct");
        assert_eq!(pool.intern(ClockSnapshot::new()), ClockId::EMPTY);
    }

    #[test]
    fn interner_matches_linear_interning_and_resumes_from_a_pool() {
        let mut p1 = ClockPool::new();
        let mut p2 = ClockPool::new();
        let mut interner = ClockInterner::for_pool(&p2);
        let snaps: Vec<ClockSnapshot<ThreadId>> = (0..6)
            .map(|i| ClockSnapshot::from_entries([(ThreadId(i % 2), u64::from(i / 2 + 1))]))
            .collect();
        for s in &snaps {
            assert_eq!(p1.intern(s.clone()), interner.intern(&mut p2, s.clone()));
        }
        assert_eq!(p1, p2);
        // A fresh interner over the existing pool keeps deduplicating.
        let mut resumed = ClockInterner::for_pool(&p2);
        assert_eq!(resumed.intern(&mut p2, snaps[3].clone()), p1.intern(snaps[3].clone()));
    }

    #[test]
    fn fallible_interning_matches_the_panicking_path() {
        let mut pool = ClockPool::new();
        let a = pool.try_intern(ClockSnapshot::from_entries([(ThreadId(0), 1)])).unwrap();
        let b = pool.try_intern(ClockSnapshot::from_entries([(ThreadId(0), 1)])).unwrap();
        assert_eq!(a, b);
        // try_push skips dedup: the same snapshot gets a fresh id.
        let c = pool.try_push(ClockSnapshot::from_entries([(ThreadId(0), 1)])).unwrap();
        assert_ne!(a, c);
        assert_eq!(c.0 as usize, pool.len() - 1);
        // ClockId::try_new refuses out-of-range indexes instead of wrapping.
        assert_eq!(ClockId::try_new(7), Some(ClockId(7)));
        assert_eq!(ClockId::try_new(u32::MAX as usize + 1), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of time order")]
    fn out_of_order_object_events_trip_the_debug_assertion() {
        let mut t = trace();
        // Swap object 2's first two events so its segment is unsorted.
        t.events.swap(0, 2);
        let _ = TraceIndex::build(&t);
    }
}
