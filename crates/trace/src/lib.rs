//! Execution traces: what Waffle's preparation run records.
//!
//! During the preparation run, Waffle's runtime "logs all accesses to
//! reference-type variables (heap objects) along with metadata such as
//! timestamps, accessed object id, and access types" (§5). This crate
//! provides:
//!
//! - [`TraceEvent`]/[`Trace`]: the event model, each event stamped with the
//!   accessing thread's vector-clock snapshot (maintained through the
//!   inheritable-TLS fork protocol of §4.1);
//! - [`TraceRecorder`]: the [`Monitor`](waffle_sim::Monitor) that produces a
//!   trace from a simulated run, charging the preparation-run
//!   instrumentation overhead per access;
//! - serialization to/from JSON (traces persist between the preparation and
//!   detection runs, which are separate processes in the real tool);
//! - [`TraceIndex`]: the columnar (struct-of-arrays, object-major) index
//!   every analysis pass shares, with the [`ClockPool`] of interned
//!   vector-clock snapshots the recorder populates;
//! - [`TraceStats`]: per-site statistics backing Table 2 (instrumentation
//!   site counts) and the §3.3 dynamic-instance observations.

pub mod compact;
pub mod event;
pub mod index;
pub mod ingest;
pub mod recorder;
pub mod segment;
pub mod stats;
pub mod wire;

pub use compact::{compact_segments, CompactStats};
pub use event::{Trace, TraceEvent};
pub use index::{
    ClassColumns, ClockId, ClockInterner, ClockPool, IndexArena, IndexStats, TraceIndex,
};
pub use ingest::{SealOutput, SessionIndexBuilder};
pub use segment::{
    ColumnSlice, SegmentCatalog, SegmentClass, SegmentColumns, SegmentMeta, SegmentReader,
    SegmentWriteStats, SegmentWriter,
};
pub use recorder::{ClockProtocol, TraceRecorder};
pub use stats::TraceStats;
pub use wire::{
    encode_frame, read_frame, write_frame, Frame, MAX_FRAME_BYTES, WIRE_EVENT_BYTES,
};
