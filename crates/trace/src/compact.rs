//! Segment compaction: merge seal generations into one canonical file.
//!
//! Streaming ingest seals a session's pending events into a fresh segment
//! file per generation (`gen-0000.wseg`, `gen-0001.wseg`, …). Each
//! generation is internally canonical — per-object, time-sorted, ascending
//! object order — but an object active across the whole session ends up
//! with one segment *per generation*, and every generation carries its own
//! snapshot of the (monotonically growing) clock pool and site registry.
//!
//! [`compact_segments`] merges N generation files into one file that is
//! indistinguishable from a single-shot [`TraceIndex::write_segments`]
//! (`TraceIndex` from `crate::index`) over the concatenated trace:
//!
//! - **Sites** are re-registered in input order; name collisions across
//!   inputs resolve to one id (a name registered with two different kinds
//!   is `InvalidData` — it means the inputs came from different builds of
//!   the workload).
//! - **Clocks** are re-interned into one pool through a
//!   [`ClockInterner`], deduplicating identical snapshots that different
//!   generations pooled independently.
//! - **Events** merge per object: each input's segments for an object are
//!   time-sorted, so an ascending k-way merge (ties broken by input
//!   order, which is seal order, which is trace order) reproduces the
//!   exact row order a one-shot index build would have produced.
//!
//! Memory is bounded by one object's rows across all inputs plus the
//! merged catalog — never by the total event count.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use waffle_mem::{ObjectId, SiteId, SiteRegistry};
use waffle_sim::SimTime;

use crate::index::{ClockId, ClockInterner, ClockPool};
use crate::segment::{ColumnSlice, SegmentClass, SegmentReader, SegmentWriter};

/// What one compaction pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Generation files merged.
    pub inputs: usize,
    /// Object segments in the compacted file (across both classes).
    pub segments: usize,
    /// Events in the compacted file.
    pub events: u64,
    /// Compacted file size in bytes.
    pub file_bytes: u64,
    /// Distinct clock snapshots after re-interning.
    pub clocks: usize,
}

fn invalid(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Merges the segment files at `inputs` (in seal order) into one canonical
/// segment file at `out`.
///
/// All inputs must record the same workload. Site and clock ids are
/// remapped into one registry/pool; per-object event rows k-way merge by
/// time with input order breaking ties, so the output equals what a
/// one-shot index over the concatenated events would have written.
pub fn compact_segments(inputs: &[PathBuf], out: &Path) -> io::Result<CompactStats> {
    if inputs.is_empty() {
        return Err(invalid("compaction needs at least one input segment file"));
    }
    let mut readers = inputs
        .iter()
        .map(SegmentReader::open)
        .collect::<io::Result<Vec<_>>>()?;

    let workload = readers[0].catalog().workload.clone();
    let mut end_time = SimTime::ZERO;
    for (r, path) in readers.iter().zip(inputs) {
        if r.catalog().workload != workload {
            return Err(invalid(format!(
                "{}: workload {:?} does not match {:?}",
                path.display(),
                r.catalog().workload,
                workload
            )));
        }
        end_time = end_time.max(r.catalog().end_time);
    }

    // Merged site registry + per-input id remaps. Registration order
    // follows input order, so a single-input compaction is an identity
    // remap and multi-generation inputs (whose registries are prefixes of
    // each other) keep their ids unchanged.
    let mut sites = SiteRegistry::new();
    let mut site_maps: Vec<Vec<SiteId>> = Vec::with_capacity(readers.len());
    for (r, path) in readers.iter().zip(inputs) {
        let mut map = Vec::with_capacity(r.catalog().sites.len());
        for (_, info) in r.catalog().sites.iter() {
            match sites.lookup(&info.name) {
                Some(existing) => {
                    let have = sites.info(existing).expect("looked-up site has info").kind;
                    if have != info.kind {
                        return Err(invalid(format!(
                            "{}: site {:?} registered as {:?} here but {:?} in an earlier input",
                            path.display(),
                            info.name,
                            info.kind,
                            have
                        )));
                    }
                    map.push(existing);
                }
                None => map.push(sites.register(&info.name, info.kind)),
            }
        }
        site_maps.push(map);
    }

    // Merged clock pool + per-input id remaps, deduplicating snapshots
    // that generations pooled independently.
    let mut clocks = ClockPool::new();
    let mut interner = ClockInterner::for_pool(&clocks);
    let mut clock_maps: Vec<Vec<ClockId>> = Vec::with_capacity(readers.len());
    for r in &readers {
        let map = r
            .clocks()
            .snapshots()
            .iter()
            .map(|s| {
                interner
                    .try_intern(&mut clocks, s.clone())
                    .ok_or_else(|| invalid("clock pool overflow while compacting"))
            })
            .collect::<io::Result<Vec<_>>>()?;
        clock_maps.push(map);
    }

    let mut writer = SegmentWriter::create(out)?;
    for class in [SegmentClass::MemOrder, SegmentClass::Tsv] {
        // Every (input, segment) holding each object, in input order.
        let mut by_obj: BTreeMap<ObjectId, Vec<(usize, usize)>> = BTreeMap::new();
        for (ri, r) in readers.iter().enumerate() {
            for (k, meta) in r.catalog().class(class).iter().enumerate() {
                by_obj.entry(meta.object).or_default().push((ri, k));
            }
        }
        for (object, parts) in by_obj {
            let mut loaded = Vec::with_capacity(parts.len());
            for &(ri, k) in &parts {
                let mut seg = readers[ri].load(class, k)?;
                for s in &mut seg.sites {
                    *s = *site_maps[ri].get(s.0 as usize).ok_or_else(|| {
                        invalid(format!(
                            "{}: segment for {object} references unknown site {s}",
                            inputs[ri].display()
                        ))
                    })?;
                }
                for c in &mut seg.clocks {
                    *c = *clock_maps[ri].get(c.0 as usize).ok_or_else(|| {
                        invalid(format!(
                            "{}: segment for {object} references unknown clock id {}",
                            inputs[ri].display(),
                            c.0
                        ))
                    })?;
                }
                loaded.push(seg);
            }
            let total: usize = loaded.iter().map(|s| s.len()).sum();
            let mut times = Vec::with_capacity(total);
            let mut threads = Vec::with_capacity(total);
            let mut sites_col = Vec::with_capacity(total);
            let mut kinds = Vec::with_capacity(total);
            let mut clocks_col = Vec::with_capacity(total);
            // Ascending k-way merge; strict `<` keeps the earliest input on
            // equal timestamps, i.e. seal order = original trace order.
            let mut cursors = vec![0usize; loaded.len()];
            loop {
                let mut best: Option<usize> = None;
                for (i, seg) in loaded.iter().enumerate() {
                    if cursors[i] >= seg.len() {
                        continue;
                    }
                    let wins = match best {
                        None => true,
                        Some(b) => seg.times[cursors[i]] < loaded[b].times[cursors[b]],
                    };
                    if wins {
                        best = Some(i);
                    }
                }
                let Some(b) = best else { break };
                let j = cursors[b];
                cursors[b] += 1;
                times.push(loaded[b].times[j]);
                threads.push(loaded[b].threads[j]);
                sites_col.push(loaded[b].sites[j]);
                kinds.push(loaded[b].kinds[j]);
                clocks_col.push(loaded[b].clocks[j]);
            }
            writer.append(
                class,
                ColumnSlice {
                    object,
                    times: &times,
                    threads: &threads,
                    sites: &sites_col,
                    kinds: &kinds,
                    clocks: &clocks_col,
                },
            )?;
        }
    }
    let stats = writer.finish(&workload, end_time, &clocks, &sites)?;
    Ok(CompactStats {
        inputs: inputs.len(),
        segments: stats.segments,
        events: stats.events,
        file_bytes: stats.file_bytes,
        clocks: clocks.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Trace, TraceEvent};
    use crate::index::TraceIndex;
    use waffle_mem::AccessKind;
    use waffle_sim::ThreadId;
    use waffle_vclock::ClockSnapshot;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("waffle-compact-{tag}-{}.wseg", std::process::id()))
    }

    /// A trace whose events cover `t_range` microseconds: two threads
    /// alternating init/use/call over three objects, with clocks distinct
    /// per generation but overlapping snapshots between halves.
    fn slice_trace(t0: u64, t1: u64, full_sites: bool) -> Trace {
        let mut sites = SiteRegistry::new();
        let si = sites.register("init", AccessKind::Init);
        let su = sites.register("use", AccessKind::Use);
        let sc = if full_sites {
            Some(sites.register("call", AccessKind::UnsafeApiCall))
        } else {
            None
        };
        let mut clocks = ClockPool::new();
        let mut events = Vec::new();
        let mut t = t0;
        while t < t1 {
            let o = ObjectId((t / 10 % 3) as u32);
            let thread = ThreadId((t / 10 % 2) as u32);
            let (site, kind) = match (t / 10) % 3 {
                0 => (si, AccessKind::Init),
                1 => (su, AccessKind::Use),
                _ => match sc {
                    Some(s) => (s, AccessKind::UnsafeApiCall),
                    None => (su, AccessKind::Use),
                },
            };
            let clock = clocks.intern(ClockSnapshot::from_entries([(thread, t / 40 + 1)]));
            events.push(TraceEvent {
                time: SimTime::from_us(t),
                thread,
                site,
                obj: o,
                kind,
                dyn_index: 0,
                clock,
            });
            t += 10;
        }
        Trace {
            workload: "compact.sample".into(),
            sites,
            events,
            forks: vec![],
            clocks,
            end_time: SimTime::from_us(t1),
        }
    }

    #[test]
    fn compacting_generations_equals_a_one_shot_write() {
        // Whole trace written in one shot…
        let whole = slice_trace(0, 600, true);
        let whole_path = tmpfile("whole");
        TraceIndex::build(&whole).write_segments(&whole_path).unwrap();
        // …versus the same events sealed as two generations and compacted.
        let g0 = slice_trace(0, 300, true);
        let g1 = slice_trace(300, 600, true);
        let p0 = tmpfile("gen0");
        let p1 = tmpfile("gen1");
        TraceIndex::build(&g0).write_segments(&p0).unwrap();
        TraceIndex::build(&g1).write_segments(&p1).unwrap();
        let out = tmpfile("merged");
        let stats = compact_segments(&[p0.clone(), p1.clone()], &out).unwrap();
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.events, whole.events.len() as u64);

        let mut a = SegmentReader::open(&whole_path).unwrap();
        let mut b = SegmentReader::open(&out).unwrap();
        assert_eq!(a.catalog().workload, b.catalog().workload);
        assert_eq!(a.catalog().end_time, b.catalog().end_time);
        for class in [SegmentClass::MemOrder, SegmentClass::Tsv] {
            let ca = a.read_class_columns(class).unwrap();
            let cb = b.read_class_columns(class).unwrap();
            // Clock ids may differ (independent pools); compare via the
            // resolved snapshots, then the rest of the columns directly.
            let pa = a.clocks().clone();
            let pb = b.clocks().clone();
            assert_eq!(ca.times, cb.times);
            assert_eq!(ca.threads, cb.threads);
            assert_eq!(ca.kinds, cb.kinds);
            assert_eq!(ca.objects, cb.objects);
            assert_eq!(ca.offsets, cb.offsets);
            for (ia, ib) in ca.clocks.iter().zip(&cb.clocks) {
                assert_eq!(pa.get(*ia), pb.get(*ib));
            }
            // Site names must match even if ids were remapped.
            for (sa, sb) in ca.sites.iter().zip(&cb.sites) {
                assert_eq!(a.catalog().sites.name(*sa), b.catalog().sites.name(*sb));
            }
            cb.validate().unwrap();
        }
        for p in [whole_path, p0, p1, out] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn single_input_compaction_is_an_identity() {
        let t = slice_trace(0, 400, true);
        let p = tmpfile("ident-in");
        TraceIndex::build(&t).write_segments(&p).unwrap();
        let out = tmpfile("ident-out");
        compact_segments(std::slice::from_ref(&p), &out).unwrap();
        let mut a = SegmentReader::open(&p).unwrap();
        let mut b = SegmentReader::open(&out).unwrap();
        for class in [SegmentClass::MemOrder, SegmentClass::Tsv] {
            assert_eq!(
                a.read_class_columns(class).unwrap(),
                b.read_class_columns(class).unwrap()
            );
        }
        assert_eq!(a.clocks(), b.clocks());
        for p in [p, out] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn workload_mismatch_is_invalid_data() {
        let mut t1 = slice_trace(0, 100, false);
        let mut t2 = slice_trace(100, 200, false);
        t1.workload = "a".into();
        t2.workload = "b".into();
        let p1 = tmpfile("wl-a");
        let p2 = tmpfile("wl-b");
        TraceIndex::build(&t1).write_segments(&p1).unwrap();
        TraceIndex::build(&t2).write_segments(&p2).unwrap();
        let out = tmpfile("wl-out");
        let err = compact_segments(&[p1.clone(), p2.clone()], &out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("workload"), "{err}");
        for p in [p1, p2] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn site_kind_conflict_is_invalid_data_not_a_panic() {
        let t1 = slice_trace(0, 100, false);
        // Same site name, different kind.
        let mut sites = SiteRegistry::new();
        let s = sites.register("init", AccessKind::Use);
        let t2 = Trace {
            workload: "compact.sample".into(),
            sites,
            events: vec![TraceEvent {
                time: SimTime::from_us(500),
                thread: ThreadId(0),
                site: s,
                obj: ObjectId(0),
                kind: AccessKind::Use,
                dyn_index: 0,
                clock: ClockId::EMPTY,
            }],
            forks: vec![],
            clocks: ClockPool::new(),
            end_time: SimTime::from_us(600),
        };
        let p1 = tmpfile("kind-a");
        let p2 = tmpfile("kind-b");
        TraceIndex::build(&t1).write_segments(&p1).unwrap();
        TraceIndex::build(&t2).write_segments(&p2).unwrap();
        let out = tmpfile("kind-out");
        let err = compact_segments(&[p1.clone(), p2.clone()], &out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("registered as"), "{err}");
        for p in [p1, p2] {
            let _ = std::fs::remove_file(&p);
        }
    }
}
