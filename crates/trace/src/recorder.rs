//! The trace-recording monitor (Waffle's preparation-run runtime).

use std::collections::HashMap;

use parking_lot::Mutex;
use waffle_mem::{AccessKind, SiteRegistry};
use waffle_sim::tls::InheritableTls;
use waffle_sim::{
    AccessRecord, ForkEdge, Monitor, RunResult, SimTime, TaskId, TaskParent, ThreadId,
};
use waffle_vclock::{ClassicClock, ClockSnapshot, LiveClock};

use crate::event::{Trace, TraceEvent};
use crate::index::{ClockId, ClockInterner, ClockPool};

/// Which fork-edge clock protocol stamps trace events.
///
/// The paper describes a by-reference protocol (tuples of `(tid, &rctr)`
/// with counters shared parent→child, §4.1). Read literally at event time,
/// that protocol orders *every* ancestor event — including post-fork ones —
/// before all descendant events, which would prune real parent-disposes/
/// child-uses use-after-free candidates. The evaluation (which exposes such
/// bugs, e.g. NetMQ #814) implies the effective semantics of the tool are
/// the classical by-value fork protocol, so [`Classic`](ClockProtocol) is
/// the default; [`ByReference`](ClockProtocol) is kept for fidelity
/// experiments (the `fig_protocol` ablation shows the over-pruning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockProtocol {
    /// Classical by-value fork protocol: child copies parent entries at
    /// fork; parent ticks its own entry after the copy.
    #[default]
    Classic,
    /// The paper's literal by-reference protocol: counters shared between
    /// parent and descendants, read at event time.
    ByReference,
    /// The classical protocol plus *join* edges: a joiner merges the
    /// joined thread's clock, so teardown disposals ordered behind a join
    /// stop being candidates. A precision extension beyond the paper
    /// (which tracks fork edges only) — see the `join_aware` bench for
    /// what it buys and that it loses no seeded bugs.
    ClassicWithJoins,
}

#[derive(Debug)]
enum ClockSlot {
    Classic(ClassicClock<ThreadId>),
    ByRef(LiveClock<ThreadId>),
}

impl ClockSlot {
    fn fork(&mut self, parent: ThreadId, child: ThreadId) -> ClockSlot {
        match self {
            ClockSlot::Classic(c) => ClockSlot::Classic(c.fork(parent, child)),
            ClockSlot::ByRef(c) => ClockSlot::ByRef(c.fork(parent, child)),
        }
    }

    fn merge_from(&mut self, other: &ClockSlot) {
        if let (ClockSlot::Classic(a), ClockSlot::Classic(b)) = (self, other) {
            a.merge(b);
        }
    }

    fn snapshot(&self) -> ClockSnapshot<ThreadId> {
        match self {
            ClockSlot::Classic(c) => c.snapshot(),
            ClockSlot::ByRef(c) => c.snapshot(),
        }
    }
}

/// Records a delay-free execution trace, maintaining per-thread vector
/// clocks through the inheritable-TLS fork protocol (§4.1) and — for
/// task-oriented workloads — per-task clocks through the async-local
/// analogue the paper describes for .NET tasks ("state propagation from a
/// parent to a child task irrespective of which thread these tasks are
/// scheduled to run on").
///
/// Task clocks live in a key space disjoint from thread ids (task *t* maps
/// to clock key `ThreadId(0x8000_0000 | t)`), so a task's events compare
/// against thread events exactly like a forked thread's would.
///
/// Every instrumented access is charged `overhead_per_access` — the cost of
/// the proxy function writing a trace record — so preparation-run overhead
/// (Table 5, R#1) is measurable.
#[derive(Debug)]
pub struct TraceRecorder {
    workload: String,
    sites: SiteRegistry,
    overhead: SimTime,
    tls: InheritableTls<ClockSlot>,
    task_clocks: HashMap<TaskId, ClockSlot>,
    track_async_local: bool,
    track_joins: bool,
    events: Vec<TraceEvent>,
    forks: Vec<ForkEdge>,
    clocks: ClockPool,
    interner: ClockInterner,
    /// Last interned id per clock key (thread id or task clock key). Under
    /// the classic protocols a clock only changes at fork/join/task-spawn
    /// hooks, so between hooks the id is served from here without taking a
    /// snapshot at all. Disabled for [`ClockProtocol::ByReference`]: its
    /// counters are shared parent↔descendants and mutate without any hook
    /// firing on the observing key.
    clock_cache: HashMap<ThreadId, ClockId>,
    cache_clock_ids: bool,
    end_time: SimTime,
}

/// Clock key for a task (disjoint from real thread ids).
fn task_clock_key(task: TaskId) -> ThreadId {
    ThreadId(0x8000_0000 | task.0)
}

/// Peak event counts from completed recordings, keyed by workload name.
///
/// Detection re-records the same workload run after run; carrying the
/// previous run's event count forward lets the next recorder allocate its
/// event buffer once instead of growing it through repeated reallocation.
static EVENT_CAPACITY: Mutex<Option<HashMap<String, usize>>> = Mutex::new(None);

/// Buffer capacity to pre-allocate for a workload: the largest event count
/// any finished recording of it produced (0 on first sight).
fn event_capacity_hint(workload: &str) -> usize {
    EVENT_CAPACITY
        .lock()
        .as_ref()
        .and_then(|m| m.get(workload).copied())
        .unwrap_or(0)
}

fn note_event_capacity(workload: &str, len: usize) {
    if len == 0 {
        return;
    }
    let mut guard = EVENT_CAPACITY.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    let slot = map.entry(workload.to_owned()).or_insert(0);
    *slot = (*slot).max(len);
}

impl TraceRecorder {
    /// Default per-access cost of writing one trace record, in virtual
    /// time. Chosen so that heap-access-dominated workloads see the paper's
    /// preparation overhead scale (9–34%, Table 5 R#1).
    pub const DEFAULT_OVERHEAD: SimTime = SimTime::from_us(20);

    /// Creates a recorder for a workload (name + site table are copied into
    /// the produced trace) using the default clock protocol and overhead.
    pub fn new(workload: &waffle_sim::Workload) -> Self {
        Self::with_options(workload, Self::DEFAULT_OVERHEAD, ClockProtocol::default())
    }

    /// Creates a recorder with an explicit per-access overhead.
    pub fn with_overhead(workload: &waffle_sim::Workload, overhead: SimTime) -> Self {
        Self::with_options(workload, overhead, ClockProtocol::default())
    }

    /// Creates a recorder with explicit overhead and clock protocol.
    pub fn with_options(
        workload: &waffle_sim::Workload,
        overhead: SimTime,
        protocol: ClockProtocol,
    ) -> Self {
        let mut tls = InheritableTls::new();
        // The root thread's clock is installed up front; `ThreadId(0)` is
        // the simulator's root by construction.
        let root = ThreadId(0);
        tls.init_root(
            root,
            match protocol {
                ClockProtocol::Classic | ClockProtocol::ClassicWithJoins => {
                    ClockSlot::Classic(ClassicClock::root(root))
                }
                ClockProtocol::ByReference => ClockSlot::ByRef(LiveClock::root(root)),
            },
        );
        let clocks = ClockPool::new();
        let interner = ClockInterner::for_pool(&clocks);
        Self {
            workload: workload.name.clone(),
            sites: workload.sites.clone(),
            overhead,
            tls,
            task_clocks: HashMap::new(),
            track_async_local: true,
            track_joins: protocol == ClockProtocol::ClassicWithJoins,
            events: Vec::with_capacity(event_capacity_hint(&workload.name)),
            forks: Vec::new(),
            clocks,
            interner,
            clock_cache: HashMap::new(),
            cache_clock_ids: protocol != ClockProtocol::ByReference,
            end_time: SimTime::ZERO,
        }
    }

    /// Disables async-local task-clock tracking: task events are stamped
    /// with their *worker thread's* clock, losing the spawner→task
    /// causality — the configuration the paper's thread-only Waffle would
    /// have on task-oriented programs (used by the `task_pruning` bench to
    /// quantify what async-local tracking buys).
    pub fn without_async_local(mut self) -> Self {
        self.track_async_local = false;
        self
    }

    /// Consumes the recorder and produces the trace.
    pub fn into_trace(self) -> Trace {
        note_event_capacity(&self.workload, self.events.len());
        Trace {
            workload: self.workload,
            sites: self.sites,
            events: self.events,
            forks: self.forks,
            clocks: self.clocks,
            end_time: self.end_time,
        }
    }

}

impl Monitor for TraceRecorder {
    fn instr_overhead(&self, _kind: AccessKind) -> SimTime {
        self.overhead
    }

    fn on_fork(&mut self, parent: ThreadId, child: ThreadId, time: SimTime) {
        // The TLS region is copied into the child; the clock object's
        // "constructor" (the derive hook) derives the child entry and, by
        // reference or by value depending on the protocol, advances the
        // parent's counter.
        self.tls.inherit(parent, child, |pc| pc.fork(parent, child));
        // The fork ticked the parent's clock and minted the child's: both
        // cached ids are stale.
        self.clock_cache.remove(&parent);
        self.clock_cache.remove(&child);
        self.forks.push(ForkEdge {
            parent,
            child,
            time,
        });
    }

    fn on_join(&mut self, waiter: ThreadId, joined: ThreadId, _time: SimTime) {
        if !self.track_joins {
            return;
        }
        // Merge the joined thread's (final) clock into the waiter's. The
        // two-slot borrow avoids cloning the joined clock — on join-heavy
        // workloads that clone dominated the recorder's cost.
        self.tls
            .merge_pair(waiter, joined, |w, j| w.merge_from(j));
        self.clock_cache.remove(&waiter);
    }

    fn on_task_spawn(&mut self, parent: TaskParent, task: TaskId, _time: SimTime) {
        if !self.track_async_local {
            return;
        }
        let key = task_clock_key(task);
        let (child, parent_key) = match parent {
            TaskParent::Thread(tid) => (
                self.tls.get_mut(tid).map(|slot| slot.fork(tid, key)),
                tid,
            ),
            TaskParent::Task(owner) => {
                let owner_key = task_clock_key(owner);
                (
                    self.task_clocks
                        .get_mut(&owner)
                        .map(|slot| slot.fork(owner_key, key)),
                    owner_key,
                )
            }
        };
        if let Some(child) = child {
            // Forking ticked the spawner's clock.
            self.clock_cache.remove(&parent_key);
            self.clock_cache.remove(&key);
            self.task_clocks.insert(task, child);
        }
    }

    fn on_access_post(&mut self, rec: &AccessRecord) {
        // Resolve which clock slot stamps this event and the cache key it
        // lives under: the owning task's clock when tracked, else the
        // accessing thread's.
        let task = if self.track_async_local {
            rec.task.filter(|t| self.task_clocks.contains_key(t))
        } else {
            None
        };
        let key = match task {
            Some(t) => task_clock_key(t),
            None => rec.thread,
        };
        let cached = if self.cache_clock_ids {
            self.clock_cache.get(&key).copied()
        } else {
            None
        };
        let clock = match cached {
            Some(id) => id,
            None => {
                let snap = match task {
                    Some(t) => self.task_clocks.get(&t).map(ClockSlot::snapshot),
                    None => self.tls.get(rec.thread).map(ClockSlot::snapshot),
                };
                match snap {
                    Some(snap) => {
                        let id = self.interner.intern(&mut self.clocks, snap);
                        if self.cache_clock_ids {
                            self.clock_cache.insert(key, id);
                        }
                        id
                    }
                    None => ClockId::EMPTY,
                }
            }
        };
        self.events.push(TraceEvent {
            time: rec.time,
            thread: rec.thread,
            site: rec.site,
            obj: rec.obj,
            kind: rec.kind,
            dyn_index: rec.dyn_index,
            clock,
        });
    }

    fn on_run_end(&mut self, result: &RunResult) {
        self.end_time = result.end_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{SimConfig, Simulator, WorkloadBuilder};

    fn workload() -> waffle_sim::Workload {
        let mut b = WorkloadBuilder::new("rec.t1");
        let o = b.object("o");
        let ready = b.event("ready");
        let worker = b.script("worker", move |s| {
            s.wait(ready).use_(o, "W.use:1", SimTime::from_us(5));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(10))
                .fork(worker)
                .signal(ready)
                .join_children()
                .dispose(o, "M.dispose:9", SimTime::from_us(5));
        });
        b.main(main);
        b.build()
    }

    #[test]
    fn recorder_captures_all_instrumented_accesses() {
        let w = workload();
        let mut rec = TraceRecorder::new(&w);
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        let trace = rec.into_trace();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.events.len() as u64, r.instrumented_ops);
        assert_eq!(trace.end_time, r.end_time);
        assert_eq!(trace.forks.len(), 1);
    }

    #[test]
    fn event_clocks_reflect_fork_edges() {
        let w = workload();
        let mut rec = TraceRecorder::new(&w);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        let trace = rec.into_trace();
        let init = trace
            .events
            .iter()
            .find(|e| e.kind == AccessKind::Init)
            .unwrap();
        let use_ = trace
            .events
            .iter()
            .find(|e| e.kind == AccessKind::Use)
            .unwrap();
        // The init ran in the parent before the fork; the use ran in the
        // child: the clocks must be ordered.
        assert!(trace.event_clock(init).leq(trace.event_clock(use_)));
        assert!(!trace.event_clock(use_).leq(trace.event_clock(init)));
    }

    /// The clock pool deduplicates: a run whose events repeat the same few
    /// clock states pools far fewer snapshots than events, and every
    /// handle resolves to the snapshot the legacy per-event clone carried.
    #[test]
    fn clock_pool_dedups_repeated_snapshots() {
        let mut b = WorkloadBuilder::new("rec.pool");
        let o = b.object("o");
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(5));
            for _ in 0..20 {
                s.use_(o, "M.use:2", SimTime::from_us(5));
            }
        });
        b.main(main);
        let w = b.build();
        let mut rec = TraceRecorder::new(&w);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        let trace = rec.into_trace();
        assert_eq!(trace.events.len(), 21);
        // No fork/join ever ticks a clock: all 21 events share one pooled
        // snapshot (plus the always-present empty one).
        assert_eq!(trace.clocks.len(), 2);
        let first = trace.events[0].clock;
        assert!(trace.events.iter().all(|e| e.clock == first));
    }

    /// Satellite of the columnar index: the analyzer's early-exit window
    /// scan assumes per-object time-sorted events. The recorder guarantees
    /// something stronger — the whole event stream is non-decreasing in
    /// virtual time, because the simulator dispatches in time order and the
    /// recorder appends — and neither instrumentation overhead nor timing
    /// noise may break that. (`TraceIndex::build` debug-asserts the
    /// per-object form on every construction.)
    #[test]
    fn recorded_timestamps_are_monotone_under_noise_and_overhead() {
        for seed in 0..10 {
            let w = workload();
            let mut rec = TraceRecorder::with_overhead(&w, SimTime::from_us(500));
            // Non-deterministic config: timing noise enabled.
            let _ = Simulator::run(&w, SimConfig::with_seed(seed), &mut rec);
            let trace = rec.into_trace();
            assert!(
                trace.events.windows(2).all(|w| w[0].time <= w[1].time),
                "seed {seed}: events out of time order"
            );
            // And the indexed form passes its own construction assertion.
            let idx = trace.index();
            assert_eq!(idx.mem.len() + idx.tsv.len(), trace.events.len());
        }
    }

    #[test]
    fn recorder_overhead_slows_the_run() {
        let w = workload();
        let base = Simulator::run(
            &w,
            SimConfig::with_seed(0).deterministic(),
            &mut waffle_sim::NullMonitor,
        );
        let mut rec = TraceRecorder::with_overhead(&w, SimTime::from_us(50));
        let instrumented = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        assert!(instrumented.end_time > base.end_time);
    }

    #[test]
    fn classic_protocol_keeps_post_fork_dispose_concurrent_with_child_use() {
        // Main forks a worker, the worker uses the object, main disposes it
        // afterwards — *without* joining first (racy but clean here). Under
        // the classic protocol the dispose and the child's use must be
        // concurrent (a genuine use-after-free candidate); under the
        // by-reference protocol they appear ordered (the over-pruning this
        // module's docs describe).
        let build = || {
            let mut b = WorkloadBuilder::new("rec.race");
            let o = b.object("o");
            let worker = b.script("worker", move |s| {
                s.use_(o, "W.use:1", SimTime::from_us(5));
            });
            let main = b.script("main", move |s| {
                s.init(o, "M.init:1", SimTime::from_us(5))
                    .fork(worker)
                    .compute(SimTime::from_ms(1))
                    .dispose(o, "M.dispose:9", SimTime::from_us(5));
            });
            b.main(main);
            b.build()
        };
        let run = |protocol| {
            let w = build();
            let mut rec = TraceRecorder::with_options(&w, SimTime::ZERO, protocol);
            let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
            rec.into_trace()
        };
        for (protocol, expect_ordered) in [
            (ClockProtocol::Classic, false),
            (ClockProtocol::ByReference, true),
        ] {
            let trace = run(protocol);
            let use_ = trace
                .events
                .iter()
                .find(|e| e.kind == AccessKind::Use)
                .unwrap();
            let dispose = trace
                .events
                .iter()
                .find(|e| e.kind == AccessKind::Dispose)
                .unwrap();
            let ordered = trace
                .event_clock(use_)
                .order(trace.event_clock(dispose))
                .is_ordered();
            assert_eq!(
                ordered, expect_ordered,
                "protocol {protocol:?}: expected ordered={expect_ordered}"
            );
        }
    }

    #[test]
    fn trace_round_trips_through_json() {
        let w = workload();
        let mut rec = TraceRecorder::new(&w);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        let trace = rec.into_trace();
        let back = Trace::from_json(&trace.to_json().unwrap()).unwrap();
        assert_eq!(back.events, trace.events);
    }
}
