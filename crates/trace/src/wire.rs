//! The serve ingest wire format: length-prefixed binary frames.
//!
//! A client session streams its trace to `waffle serve` as a sequence of
//! frames over a byte stream (Unix socket in the CLI; the codec itself is
//! transport-agnostic and pure — it only touches `Read`/`Write`):
//!
//! ```text
//! frame   := len:u32 LE | type:u8 | payload[len-1]
//! session := Hello Sites* Clocks* Events* … Finish
//! ```
//!
//! - **Hello** opens a session and names the workload.
//! - **Sites** appends site definitions in dense registration order; the
//!   ids events reference are implied by arrival order (the first defined
//!   site is id 0). Incremental: later Sites frames extend the table.
//! - **Clocks** appends vector-clock snapshots in dense pool order
//!   starting at id 1 (id 0 is always the empty snapshot). The producer
//!   interns on its side; the server pools them without rescanning.
//! - **Events** carries packed 25-byte rows
//!   (`time:u64 | thread:u32 | site:u32 | obj:u32 | kind:u8 | clock:u32`),
//!   non-decreasing in time within the session. `dyn_index` is not
//!   carried (analysis never reads it) and decodes as 0.
//! - **Finish** closes the session with the trace's end time; the server
//!   answers with one **Report** frame (the analysis JSON) or an
//!   **Error** frame naming what was rejected.
//!
//! Every frame is bounded by [`MAX_FRAME_BYTES`]; an oversized length
//! prefix is `InvalidData` *before* any allocation, so a malicious or
//! corrupt length can't balloon server memory.

use std::io::{self, Read, Write};

use waffle_mem::{AccessKind, ObjectId, SiteId};
use waffle_sim::{SimTime, ThreadId};
use waffle_vclock::ClockSnapshot;

use crate::event::TraceEvent;
use crate::index::ClockId;
use crate::segment::{kind_from_tag, kind_tag};

/// Upper bound on one frame's payload: 16 MiB (≈670k events per Events
/// frame) — far above any sane batch, low enough that a corrupt length
/// prefix cannot allocate unbounded memory.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Bytes one event occupies on the wire (time 8 + thread 4 + site 4 +
/// obj 4 + kind 1 + clock 4).
pub const WIRE_EVENT_BYTES: usize = 25;

const TAG_HELLO: u8 = 1;
const TAG_SITES: u8 = 2;
const TAG_CLOCKS: u8 = 3;
const TAG_EVENTS: u8 = 4;
const TAG_FINISH: u8 = 5;
const TAG_REPORT: u8 = 6;
const TAG_ERROR: u8 = 7;

/// One ingest protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Opens a session for the named workload.
    Hello {
        /// Workload the session's events belong to.
        workload: String,
    },
    /// Appends site definitions in dense registration order.
    Sites(Vec<(String, AccessKind)>),
    /// Appends clock snapshots in dense pool order (continuing after the
    /// implicit empty snapshot at id 0).
    Clocks(Vec<ClockSnapshot<ThreadId>>),
    /// A batch of events, non-decreasing in time.
    Events(Vec<TraceEvent>),
    /// Ends the session.
    Finish {
        /// End-to-end virtual time of the traced run.
        end_time: SimTime,
    },
    /// Server → client: the session's analysis report JSON.
    Report(String),
    /// Server → client: the session was rejected; the payload says why.
    Error(String),
}

fn invalid(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Serializes `frame` into a length-prefixed byte vector (the exact bytes
/// [`write_frame`] emits).
pub fn encode_frame(frame: &Frame) -> io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    let tag = match frame {
        Frame::Hello { workload } => {
            payload.extend_from_slice(workload.as_bytes());
            TAG_HELLO
        }
        Frame::Sites(sites) => {
            payload.extend_from_slice(&(sites.len() as u32).to_le_bytes());
            for (name, kind) in sites {
                payload.push(kind_tag(*kind));
                put_str(&mut payload, name);
            }
            TAG_SITES
        }
        Frame::Clocks(snaps) => {
            payload.extend_from_slice(&(snaps.len() as u32).to_le_bytes());
            for snap in snaps {
                payload.extend_from_slice(&(snap.len() as u32).to_le_bytes());
                for (tid, val) in snap.iter() {
                    payload.extend_from_slice(&tid.0.to_le_bytes());
                    payload.extend_from_slice(&val.to_le_bytes());
                }
            }
            TAG_CLOCKS
        }
        Frame::Events(events) => {
            payload.reserve(4 + events.len() * WIRE_EVENT_BYTES);
            payload.extend_from_slice(&(events.len() as u32).to_le_bytes());
            for e in events {
                payload.extend_from_slice(&e.time.as_us().to_le_bytes());
                payload.extend_from_slice(&e.thread.0.to_le_bytes());
                payload.extend_from_slice(&e.site.0.to_le_bytes());
                payload.extend_from_slice(&e.obj.0.to_le_bytes());
                payload.push(kind_tag(e.kind));
                payload.extend_from_slice(&e.clock.0.to_le_bytes());
            }
            TAG_EVENTS
        }
        Frame::Finish { end_time } => {
            payload.extend_from_slice(&end_time.as_us().to_le_bytes());
            TAG_FINISH
        }
        Frame::Report(json) => {
            payload.extend_from_slice(json.as_bytes());
            TAG_REPORT
        }
        Frame::Error(message) => {
            payload.extend_from_slice(message.as_bytes());
            TAG_ERROR
        }
    };
    if payload.len() + 1 > MAX_FRAME_BYTES {
        return Err(invalid(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte frame limit",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(5 + payload.len());
    out.extend_from_slice(&(payload.len() as u32 + 1).to_le_bytes());
    out.push(tag);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Writes one frame to `w`.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame)?)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(invalid("frame payload truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| invalid(format!("non-UTF-8 string: {e}")))
    }

    /// A count-prefixed list can't hold more entries than bytes remain in
    /// the (already size-bounded) payload; checking it first keeps a
    /// corrupt count from pre-allocating gigabytes.
    fn count(&mut self, min_entry_bytes: usize) -> io::Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_entry_bytes) > self.buf.len() - self.pos {
            return Err(invalid(format!("count {n} exceeds frame payload")));
        }
        Ok(n)
    }

    fn done(&self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(invalid("trailing bytes after frame payload"));
        }
        Ok(())
    }
}

fn utf8(bytes: &[u8]) -> io::Result<String> {
    String::from_utf8(bytes.to_vec()).map_err(|e| invalid(format!("non-UTF-8 payload: {e}")))
}

/// Reads one frame from `r`. `Ok(None)` on clean EOF at a frame boundary;
/// EOF mid-frame is `UnexpectedEof`, a malformed frame is `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(invalid("zero-length frame (missing type byte)"));
    }
    if len > MAX_FRAME_BYTES {
        return Err(invalid(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let (tag, payload) = (body[0], &body[1..]);
    let mut c = Cursor { buf: payload, pos: 0 };
    let frame = match tag {
        TAG_HELLO => Frame::Hello { workload: utf8(payload)? },
        TAG_SITES => {
            let n = c.count(5)?;
            let mut sites = Vec::with_capacity(n);
            for _ in 0..n {
                let kind = kind_from_tag(c.u8()?)
                    .ok_or_else(|| invalid("unknown access-kind tag in Sites frame"))?;
                let name = c.str()?;
                sites.push((name, kind));
            }
            c.done()?;
            Frame::Sites(sites)
        }
        TAG_CLOCKS => {
            let n = c.count(4)?;
            let mut snaps = Vec::with_capacity(n);
            for _ in 0..n {
                let entries = c.count(12)?;
                let mut snap = Vec::with_capacity(entries);
                for _ in 0..entries {
                    let tid = ThreadId(c.u32()?);
                    let val = c.u64()?;
                    snap.push((tid, val));
                }
                snaps.push(ClockSnapshot::from_entries(snap));
            }
            c.done()?;
            Frame::Clocks(snaps)
        }
        TAG_EVENTS => {
            let n = c.count(WIRE_EVENT_BYTES)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let time = SimTime::from_us(c.u64()?);
                let thread = ThreadId(c.u32()?);
                let site = SiteId(c.u32()?);
                let obj = ObjectId(c.u32()?);
                let kind = kind_from_tag(c.u8()?)
                    .ok_or_else(|| invalid("unknown access-kind tag in Events frame"))?;
                let clock = ClockId(c.u32()?);
                events.push(TraceEvent {
                    time,
                    thread,
                    site,
                    obj,
                    kind,
                    dyn_index: 0,
                    clock,
                });
            }
            c.done()?;
            Frame::Events(events)
        }
        TAG_FINISH => {
            let end_time = SimTime::from_us(c.u64()?);
            c.done()?;
            Frame::Finish { end_time }
        }
        TAG_REPORT => Frame::Report(utf8(payload)?),
        TAG_ERROR => Frame::Error(utf8(payload)?),
        other => return Err(invalid(format!("unknown frame type {other}"))),
    };
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = encode_frame(&frame).unwrap();
        let mut r = &bytes[..];
        let got = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(got, frame);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after frame");
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip(Frame::Hello { workload: "wl.demo".into() });
        round_trip(Frame::Sites(vec![
            ("a.init".into(), AccessKind::Init),
            ("b.use".into(), AccessKind::Use),
            ("c.call".into(), AccessKind::UnsafeApiCall),
        ]));
        round_trip(Frame::Clocks(vec![
            ClockSnapshot::from_entries([(ThreadId(0), 3), (ThreadId(2), 1)]),
            ClockSnapshot::new(),
        ]));
        round_trip(Frame::Events(vec![
            TraceEvent {
                time: SimTime::from_us(17),
                thread: ThreadId(1),
                site: SiteId(2),
                obj: ObjectId(3),
                kind: AccessKind::Dispose,
                dyn_index: 0,
                clock: ClockId(4),
            },
            TraceEvent {
                time: SimTime::from_us(18),
                thread: ThreadId(0),
                site: SiteId(0),
                obj: ObjectId(0),
                kind: AccessKind::Init,
                dyn_index: 0,
                clock: ClockId::EMPTY,
            },
        ]));
        round_trip(Frame::Finish { end_time: SimTime::from_ms(9) });
        round_trip(Frame::Report("{\"plan\":null}".into()));
        round_trip(Frame::Error("no Hello".into()));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.push(TAG_EVENTS);
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn lying_counts_and_truncation_are_invalid_data() {
        // An Events frame whose count claims more rows than the payload holds.
        let mut bytes = encode_frame(&Frame::Events(vec![])).unwrap();
        // Patch the count to 1000 with no rows behind it.
        let payload_start = 5;
        bytes[payload_start..payload_start + 4].copy_from_slice(&1000u32.to_le_bytes());
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // EOF mid-frame is UnexpectedEof, distinct from a clean boundary.
        let full = encode_frame(&Frame::Hello { workload: "x".into() }).unwrap();
        let err = read_frame(&mut &full[..3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn unknown_frame_type_is_invalid_data() {
        let bytes = [1u8, 0, 0, 0, 0xEE];
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown frame type"), "{err}");
    }
}
