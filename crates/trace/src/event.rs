//! The trace event model and its serialization.

use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, ObjectId, SiteId, SiteRegistry};
use waffle_sim::{ForkEdge, SimTime, ThreadId};
use waffle_vclock::ClockSnapshot;

use crate::index::{ClockId, ClockPool, TraceIndex};

/// One recorded heap-object access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual timestamp of the access.
    pub time: SimTime,
    /// The accessing thread.
    pub thread: ThreadId,
    /// Static location.
    pub site: SiteId,
    /// Target object.
    pub obj: ObjectId,
    /// Operation class.
    pub kind: AccessKind,
    /// Zero-based dynamic instance index of `site` within the run.
    pub dyn_index: u64,
    /// Handle into the trace's [`ClockPool`]: the accessing thread's vector
    /// clock at event time (read through the TLS-propagated shared
    /// counters, §4.1). Identical snapshots share one pooled copy instead
    /// of each event cloning its own.
    pub clock: ClockId,
}

/// A complete preparation-run trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Name of the traced workload.
    pub workload: String,
    /// Copy of the workload's site table (so the analyzer can resolve
    /// names/kinds without the workload object).
    pub sites: SiteRegistry,
    /// All recorded accesses, in execution order.
    pub events: Vec<TraceEvent>,
    /// The run's fork tree.
    pub forks: Vec<ForkEdge>,
    /// Interned clock snapshots referenced by the events' [`ClockId`]s.
    pub clocks: ClockPool,
    /// End-to-end virtual time of the traced run.
    pub end_time: SimTime,
}

impl Trace {
    /// Serializes the trace to JSON (the cross-run persistence format);
    /// errors propagate so a failing save aborts only the persistence step.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a trace from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Resolves a pooled clock handle.
    pub fn clock(&self, id: ClockId) -> &ClockSnapshot<ThreadId> {
        self.clocks.get(id)
    }

    /// The vector-clock snapshot an event was stamped with.
    pub fn event_clock(&self, e: &TraceEvent) -> &ClockSnapshot<ThreadId> {
        self.clocks.get(e.clock)
    }

    /// Builds the columnar [`TraceIndex`] over this trace.
    pub fn index(&self) -> TraceIndex<'_> {
        TraceIndex::build(self)
    }

    /// Events of the MemOrder instrumentation class, in order.
    pub fn mem_order_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.kind.is_mem_order())
    }

    /// Events of the TSV instrumentation class, in order.
    pub fn tsv_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.kind.is_tsv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut sites = SiteRegistry::new();
        let s0 = sites.register("A.init:1", AccessKind::Init);
        let s1 = sites.register("B.use:2", AccessKind::Use);
        let mut clocks = ClockPool::new();
        let c0 = clocks.intern(ClockSnapshot::from_entries([(ThreadId(0), 1)]));
        let c1 = clocks.intern(ClockSnapshot::from_entries([(ThreadId(0), 2), (ThreadId(1), 1)]));
        Trace {
            workload: "demo.t1".into(),
            sites,
            events: vec![
                TraceEvent {
                    time: SimTime::from_us(10),
                    thread: ThreadId(0),
                    site: s0,
                    obj: ObjectId(0),
                    kind: AccessKind::Init,
                    dyn_index: 0,
                    clock: c0,
                },
                TraceEvent {
                    time: SimTime::from_us(40),
                    thread: ThreadId(1),
                    site: s1,
                    obj: ObjectId(0),
                    kind: AccessKind::Use,
                    dyn_index: 0,
                    clock: c1,
                },
            ],
            forks: vec![ForkEdge {
                parent: ThreadId(0),
                child: ThreadId(1),
                time: SimTime::from_us(20),
            }],
            clocks,
            end_time: SimTime::from_us(50),
        }
    }

    #[test]
    fn json_round_trip_preserves_trace() {
        let t = sample_trace();
        let json = t.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.workload, t.workload);
        assert_eq!(back.events, t.events);
        assert_eq!(back.forks, t.forks);
        assert_eq!(back.clocks, t.clocks);
        assert_eq!(back.end_time, t.end_time);
        assert_eq!(back.sites.len(), 2);
    }

    #[test]
    fn class_filters_partition_events() {
        let t = sample_trace();
        assert_eq!(t.mem_order_events().count(), 2);
        assert_eq!(t.tsv_events().count(), 0);
    }

    #[test]
    fn event_clocks_expose_fork_ordering() {
        let t = sample_trace();
        let a = t.event_clock(&t.events[0]);
        let b = t.event_clock(&t.events[1]);
        assert!(a.leq(b));
    }
}
