//! Incremental per-session index building for streaming ingest.
//!
//! A serve session receives its trace as wire frames (see
//! [`crate::wire`]) instead of as one resident [`Trace`]. The
//! [`SessionIndexBuilder`] accumulates validated events in a pending
//! buffer and, at each **seal**, runs the same counting sort that
//! [`TraceIndex::build`](crate::TraceIndex::build) uses over just the
//! pending slice, writes the resulting columns as one *generation*
//! segment file, and hands the fresh columns back so the analyzer can
//! absorb them incrementally. The session's site registry and clock pool
//! grow monotonically across seals, so `SiteId`/[`ClockId`] handles in an
//! earlier generation stay valid in every later one — the property the
//! compactor and the incremental sweep both rely on.
//!
//! Validation happens at the pending buffer's edge, once per event:
//! non-decreasing time (the column invariant every downstream sweep
//! assumes), known site id, known clock id. Everything after ingest can
//! then trust the data unconditionally.

use std::io;
use std::path::Path;

use waffle_mem::{AccessKind, SiteRegistry};
use waffle_sim::{SimTime, ThreadId};
use waffle_vclock::ClockSnapshot;

use crate::event::TraceEvent;
use crate::index::{ClassColumns, ClockPool, IndexArena};
use crate::segment::{ColumnSlice, SegmentClass, SegmentWriteStats, SegmentWriter};

/// What one [`SessionIndexBuilder::seal`] produced: the generation file's
/// write stats plus the freshly built columns for incremental absorption.
#[derive(Debug)]
pub struct SealOutput {
    /// MemOrder columns of the sealed generation.
    pub mem: ClassColumns,
    /// TSV columns of the sealed generation.
    pub tsv: ClassColumns,
    /// On-disk stats of the generation file.
    pub stats: SegmentWriteStats,
}

fn invalid(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Builds one session's columnar index incrementally from wire frames.
#[derive(Debug)]
pub struct SessionIndexBuilder {
    workload: String,
    sites: SiteRegistry,
    clocks: ClockPool,
    pending: Vec<TraceEvent>,
    arena: IndexArena,
    last_time: SimTime,
    end_time: SimTime,
    generations: u32,
    events_total: u64,
}

impl SessionIndexBuilder {
    /// Opens a builder for one session of `workload`.
    pub fn new(workload: impl Into<String>) -> Self {
        Self {
            workload: workload.into(),
            sites: SiteRegistry::new(),
            clocks: ClockPool::new(),
            pending: Vec::new(),
            arena: IndexArena::new(),
            last_time: SimTime::ZERO,
            end_time: SimTime::ZERO,
            generations: 0,
            events_total: 0,
        }
    }

    /// The session's workload name.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The session's (monotonically growing) site registry.
    pub fn sites(&self) -> &SiteRegistry {
        &self.sites
    }

    /// The session's (monotonically growing) clock pool.
    pub fn clocks(&self) -> &ClockPool {
        &self.clocks
    }

    /// Events waiting in the pending buffer (not yet sealed).
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Total events accepted over the session's lifetime.
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// Generations sealed so far.
    pub fn generations(&self) -> u32 {
        self.generations
    }

    /// Latest event time accepted (the incremental sweep's tail-pruning
    /// horizon).
    pub fn last_time(&self) -> SimTime {
        self.last_time
    }

    /// The session's end time: the max of every accepted event time and
    /// any client-declared end time.
    pub fn end_time(&self) -> SimTime {
        self.end_time
    }

    /// Extends the site table with definitions in dense registration
    /// order. Re-sending an already-known `(name, kind)` is a no-op;
    /// re-sending a known name under a different kind is `InvalidData`.
    pub fn add_sites(&mut self, defs: &[(String, AccessKind)]) -> io::Result<()> {
        for (name, kind) in defs {
            match self.sites.lookup(name) {
                Some(id) => {
                    let have = self.sites.info(id).expect("looked-up site has info").kind;
                    if have != *kind {
                        return Err(invalid(format!(
                            "site {name:?} redefined as {kind:?} (registered as {have:?})"
                        )));
                    }
                }
                None => {
                    self.sites.register(name, *kind);
                }
            }
        }
        Ok(())
    }

    /// Appends clock snapshots in dense pool order (the producer already
    /// interned; ids continue after the implicit empty snapshot at id 0).
    pub fn add_clocks(&mut self, snaps: Vec<ClockSnapshot<ThreadId>>) -> io::Result<()> {
        for snap in snaps {
            self.clocks
                .try_push(snap)
                .ok_or_else(|| invalid("session clock pool overflow (u32::MAX snapshots)"))?;
        }
        Ok(())
    }

    /// Accepts one event into the pending buffer after validating the
    /// stream invariants: non-decreasing time, in-range site and clock
    /// ids.
    pub fn push(&mut self, ev: TraceEvent) -> io::Result<()> {
        if ev.time < self.last_time {
            return Err(invalid(format!(
                "event at {} arrived after {} (session streams must be time-ordered)",
                ev.time, self.last_time
            )));
        }
        if ev.site.0 as usize >= self.sites.len() {
            return Err(invalid(format!(
                "event references undefined site id {} (table holds {})",
                ev.site.0,
                self.sites.len()
            )));
        }
        if ev.clock.0 as usize >= self.clocks.len() {
            return Err(invalid(format!(
                "event references undefined clock id {} (pool holds {})",
                ev.clock.0,
                self.clocks.len()
            )));
        }
        self.last_time = ev.time;
        self.end_time = self.end_time.max(ev.time);
        self.pending.push(ev);
        self.events_total += 1;
        Ok(())
    }

    /// Accepts a batch (one wire Events frame).
    pub fn push_batch(&mut self, events: Vec<TraceEvent>) -> io::Result<()> {
        for ev in events {
            self.push(ev)?;
        }
        Ok(())
    }

    /// Raises the session end time (the Finish frame's declared value;
    /// never lowers it below the last event seen).
    pub fn declare_end_time(&mut self, end_time: SimTime) {
        self.end_time = self.end_time.max(end_time);
    }

    /// Seals the pending buffer into generation file `path`: builds both
    /// class columns via the shared counting sort, writes them with the
    /// session's current site/clock tables in the footer, clears the
    /// buffer, and returns the fresh columns for incremental absorption.
    pub fn seal(&mut self, path: &Path) -> io::Result<SealOutput> {
        let mem = ClassColumns::build_in(&self.pending, AccessKind::is_mem_order, &mut self.arena);
        let tsv = ClassColumns::build_in(&self.pending, AccessKind::is_tsv, &mut self.arena);
        let mut w = SegmentWriter::create(path)?;
        for slot in 0..mem.object_count() {
            w.append(SegmentClass::MemOrder, ColumnSlice::of(&mem, slot))?;
        }
        for slot in 0..tsv.object_count() {
            w.append(SegmentClass::Tsv, ColumnSlice::of(&tsv, slot))?;
        }
        let stats = w.finish(&self.workload, self.end_time, &self.clocks, &self.sites)?;
        self.pending.clear();
        self.generations += 1;
        Ok(SealOutput { mem, tsv, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentReader;
    use waffle_mem::{ObjectId, SiteId};
    use crate::index::ClockId;

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("waffle-ingest-{tag}-{}.wseg", std::process::id()))
    }

    fn ev(t: u64, site: u32, obj: u32, kind: AccessKind, clock: u32) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_us(t),
            thread: ThreadId(obj % 2),
            site: SiteId(site),
            obj: ObjectId(obj),
            kind,
            dyn_index: 0,
            clock: ClockId(clock),
        }
    }

    #[test]
    fn builder_validates_the_stream_edge() {
        let mut b = SessionIndexBuilder::new("ing");
        b.add_sites(&[("init".into(), AccessKind::Init), ("use".into(), AccessKind::Use)])
            .unwrap();
        b.add_clocks(vec![ClockSnapshot::from_entries([(ThreadId(0), 1)])]).unwrap();
        b.push(ev(10, 0, 0, AccessKind::Init, 1)).unwrap();
        // Time regression rejected.
        let err = b.push(ev(5, 1, 0, AccessKind::Use, 0)).unwrap_err();
        assert!(err.to_string().contains("time-ordered"), "{err}");
        // Unknown site rejected.
        let err = b.push(ev(20, 9, 0, AccessKind::Use, 0)).unwrap_err();
        assert!(err.to_string().contains("undefined site"), "{err}");
        // Unknown clock rejected.
        let err = b.push(ev(20, 1, 0, AccessKind::Use, 7)).unwrap_err();
        assert!(err.to_string().contains("undefined clock"), "{err}");
        // Site redefinition under another kind rejected; same kind is fine.
        b.add_sites(&[("init".into(), AccessKind::Init)]).unwrap();
        let err = b.add_sites(&[("init".into(), AccessKind::Use)]).unwrap_err();
        assert!(err.to_string().contains("redefined"), "{err}");
        assert_eq!(b.events_total(), 1);
    }

    #[test]
    fn sealed_generations_round_trip_and_clear_pending() {
        let mut b = SessionIndexBuilder::new("ing.seal");
        b.add_sites(&[("init".into(), AccessKind::Init), ("use".into(), AccessKind::Use)])
            .unwrap();
        b.push_batch(vec![
            ev(10, 0, 1, AccessKind::Init, 0),
            ev(20, 1, 1, AccessKind::Use, 0),
            ev(30, 1, 0, AccessKind::Use, 0),
        ])
        .unwrap();
        let p0 = tmpfile("gen0");
        let out = b.seal(&p0).unwrap();
        assert_eq!(out.stats.events, 3);
        assert_eq!(b.pending_events(), 0);
        assert_eq!(b.generations(), 1);
        assert_eq!(out.mem.objects, vec![ObjectId(0), ObjectId(1)]);

        // Second generation: later times, one more object.
        b.push_batch(vec![
            ev(40, 0, 2, AccessKind::Init, 0),
            ev(50, 1, 2, AccessKind::Use, 0),
        ])
        .unwrap();
        let p1 = tmpfile("gen1");
        let out1 = b.seal(&p1).unwrap();
        assert_eq!(out1.mem.objects, vec![ObjectId(2)]);

        let mut r = SegmentReader::open(&p1).unwrap();
        assert_eq!(r.catalog().workload, "ing.seal");
        let cols = r.read_class_columns(SegmentClass::MemOrder).unwrap();
        assert_eq!(cols, out1.mem);
        for p in [p0, p1] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn empty_seal_writes_a_valid_empty_generation() {
        let mut b = SessionIndexBuilder::new("ing.empty");
        let p = tmpfile("empty");
        let out = b.seal(&p).unwrap();
        assert_eq!(out.stats.segments, 0);
        let r = SegmentReader::open(&p).unwrap();
        assert_eq!(r.catalog().events(), 0);
        let _ = std::fs::remove_file(&p);
    }
}
