//! The on-disk columnar segment format: traces larger than RAM.
//!
//! [`TraceIndex`] is fast but fully resident — a 100M-event trace costs
//! tens of gigabytes of columns. This module persists an index as a single
//! **segment file** so the analysis sweep can stream object segments
//! through a bounded resident budget instead of holding every column:
//!
//! ```text
//! ┌──────────┬──────────────────────────┬────────────┬─────────────────┐
//! │ 8B magic │ segments (mem*, tsv*)    │ footer     │ 24B trailer + 8B│
//! │ WFLSEG00 │ per-object column bytes  │ (catalog)  │ magic WFLSEGFT  │
//! └──────────┴──────────────────────────┴────────────┴─────────────────┘
//! ```
//!
//! - **Segments**: one per `(class, object)`, in ascending object order —
//!   exactly the order the two-pointer sweep consumes — holding that
//!   object's time-sorted columns as packed little-endian arrays
//!   (`times: u64ⁿ ++ threads: u32ⁿ ++ sites: u32ⁿ ++ kinds: u8ⁿ ++
//!   clocks: u32ⁿ`; the constant `obj` column is stored once, in the
//!   catalog entry, not per event).
//! - **Footer catalog** ([`SegmentCatalog`]): per-segment byte offsets,
//!   lengths, event counts, min/max timestamps, and FNV-1a checksums,
//!   plus the interned [`ClockPool`] and the trace's [`SiteRegistry`]
//!   stored **once** — the happens-before structure is the only part of
//!   the trace that must stay hot (cf. partial-order BMC: keep the
//!   ordering skeleton resident, stream the events).
//! - **Trailer**: `footer_offset u64 | footer_len u64 | footer_fnv u64`
//!   followed by the closing magic, so a reader can locate the footer
//!   from the end of the file and reject truncation before trusting any
//!   offset in it.
//!
//! Corruption discipline matches the PR 3 storage rules: a missing file
//! is the caller's absent case; a present-but-unusable file (bad magic,
//! truncated footer, checksum mismatch, future version) is always a
//! distinct [`io::ErrorKind::InvalidData`] error naming what failed.

use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, ObjectId, SiteId, SiteRegistry};
use waffle_sim::{SimTime, ThreadId};

use crate::index::{ClassColumns, ClockId, ClockPool, TraceIndex};

/// Segment file schema version; bumped on incompatible layout changes.
pub const SEGMENT_VERSION: u32 = 1;

const HEAD_MAGIC: &[u8; 8] = b"WFLSEG00";
const FOOT_MAGIC: &[u8; 8] = b"WFLSEGFT";
/// Trailer: footer offset + footer length + footer checksum + magic.
const TRAILER_LEN: u64 = 8 + 8 + 8 + 8;

/// Bytes one event occupies in a segment (8 time + 4 thread + 4 site +
/// 1 kind + 4 clock).
pub const EVENT_BYTES: u64 = 21;

/// FNV-1a over a byte slice — the same checksum the campaign manifest
/// uses, cheap enough to verify on every segment load.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which event class a segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentClass {
    /// MemOrder-instrumented events (init/use/dispose).
    MemOrder,
    /// Thread-safety-violation events (unsafe API calls).
    Tsv,
}

/// Catalog entry for one on-disk object segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// The object every event in the segment touches (the `objs` column,
    /// stored once instead of per event).
    pub object: ObjectId,
    /// Absolute file offset of the segment's first byte.
    pub offset: u64,
    /// Segment payload length in bytes (`events × EVENT_BYTES`).
    pub bytes: u64,
    /// Events in the segment.
    pub events: u32,
    /// Smallest timestamp in the segment (segments are time-sorted).
    pub min_time: SimTime,
    /// Largest timestamp in the segment.
    pub max_time: SimTime,
    /// FNV-1a over the segment payload, verified on load.
    pub checksum: u64,
}

/// The footer catalog: everything a reader needs besides the column bytes.
///
/// The clock pool lives here — stored once for the whole trace — because
/// happens-before checks are the one part of analysis that needs random
/// access while event columns stream through a bounded window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentCatalog {
    /// Schema version ([`SEGMENT_VERSION`]).
    pub version: u32,
    /// Name of the traced workload.
    pub workload: String,
    /// End-to-end virtual time of the traced run.
    pub end_time: SimTime,
    /// MemOrder segments, ascending object order.
    pub mem: Vec<SegmentMeta>,
    /// TSV segments, ascending object order.
    pub tsv: Vec<SegmentMeta>,
    /// The interned clock snapshots, stored once.
    pub clocks: ClockPool,
    /// The trace's site table (for rendering plans without the workload).
    pub sites: SiteRegistry,
}

impl SegmentCatalog {
    /// The catalog's segment list for `class`.
    pub fn class(&self, class: SegmentClass) -> &[SegmentMeta] {
        match class {
            SegmentClass::MemOrder => &self.mem,
            SegmentClass::Tsv => &self.tsv,
        }
    }

    /// Total events across both classes.
    pub fn events(&self) -> u64 {
        self.mem.iter().chain(&self.tsv).map(|s| u64::from(s.events)).sum()
    }
}

/// What [`TraceIndex::write_segments`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentWriteStats {
    /// Segments written across both classes.
    pub segments: usize,
    /// Events written across both classes.
    pub events: u64,
    /// Total file size in bytes, trailer included.
    pub file_bytes: u64,
}

fn invalid(path: &Path, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {what}", path.display()),
    )
}

/// On-disk tag for an [`AccessKind`] (shared with the ingest wire format).
pub(crate) fn kind_tag(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Init => 0,
        AccessKind::Use => 1,
        AccessKind::Dispose => 2,
        AccessKind::UnsafeApiCall => 3,
    }
}

/// Inverse of [`kind_tag`]; `None` for unknown tags.
pub(crate) fn kind_from_tag(tag: u8) -> Option<AccessKind> {
    Some(match tag {
        0 => AccessKind::Init,
        1 => AccessKind::Use,
        2 => AccessKind::Dispose,
        3 => AccessKind::UnsafeApiCall,
        _ => return None,
    })
}

/// Borrowed, equal-length column slices for one object's time-sorted
/// events — the unit [`SegmentWriter::append`] consumes. Built from a
/// resident index slot via [`ColumnSlice::of`], or assembled directly by
/// the compactor from merged vectors.
#[derive(Debug, Clone, Copy)]
pub struct ColumnSlice<'a> {
    /// The object every row touches.
    pub object: ObjectId,
    /// Virtual timestamps (must be non-decreasing).
    pub times: &'a [SimTime],
    /// Accessing threads.
    pub threads: &'a [ThreadId],
    /// Static sites.
    pub sites: &'a [SiteId],
    /// Operation classes.
    pub kinds: &'a [AccessKind],
    /// Pooled clock handles.
    pub clocks: &'a [ClockId],
}

impl<'a> ColumnSlice<'a> {
    /// The slice for object slot `slot` of `cols`.
    pub fn of(cols: &'a ClassColumns, slot: usize) -> Self {
        let r = cols.range(slot);
        Self {
            object: cols.objects[slot],
            times: &cols.times[r.clone()],
            threads: &cols.threads[r.clone()],
            sites: &cols.sites[r.clone()],
            kinds: &cols.kinds[r.clone()],
            clocks: &cols.clocks[r],
        }
    }
}

/// Serializes one object's columns into `buf` (cleared first) and returns
/// its catalog entry with `offset` left at 0 for the writer to fix.
/// `InvalidData` on ragged columns, an empty segment, or an event count
/// past the catalog's u32 field (which a bare cast used to wrap silently).
fn encode_segment(seg: &ColumnSlice<'_>, buf: &mut Vec<u8>) -> io::Result<SegmentMeta> {
    buf.clear();
    let n = seg.times.len();
    let err = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    if n == 0 {
        return Err(err(format!("segment for {} is empty", seg.object)));
    }
    if [seg.threads.len(), seg.sites.len(), seg.kinds.len(), seg.clocks.len()]
        .iter()
        .any(|&l| l != n)
    {
        return Err(err(format!("segment for {} has ragged columns", seg.object)));
    }
    let events = u32::try_from(n).map_err(|_| {
        err(format!(
            "segment for {} holds {n} events (catalog limit is {})",
            seg.object,
            u32::MAX
        ))
    })?;
    buf.reserve(n * EVENT_BYTES as usize);
    for t in seg.times {
        buf.extend_from_slice(&t.as_us().to_le_bytes());
    }
    for t in seg.threads {
        buf.extend_from_slice(&t.0.to_le_bytes());
    }
    for s in seg.sites {
        buf.extend_from_slice(&s.0.to_le_bytes());
    }
    for k in seg.kinds {
        buf.push(kind_tag(*k));
    }
    for c in seg.clocks {
        buf.extend_from_slice(&c.0.to_le_bytes());
    }
    Ok(SegmentMeta {
        object: seg.object,
        offset: 0,
        bytes: buf.len() as u64,
        events,
        min_time: seg.times[0],
        max_time: seg.times[n - 1],
        checksum: fnv1a(buf),
    })
}

/// Incremental segment-file writer: the producer behind
/// [`TraceIndex::write_segments`], streaming-ingest seals, and the
/// compactor. Segments append one object at a time (ascending object order
/// enforced per class); [`finish`](Self::finish) writes the footer catalog
/// and trailer and atomically renames the temp file into place. Dropping
/// an unfinished writer removes the temp file, so an abandoned seal never
/// leaves debris under a visible name.
#[derive(Debug)]
pub struct SegmentWriter {
    file: Option<io::BufWriter<fs::File>>,
    tmp: PathBuf,
    path: PathBuf,
    offset: u64,
    buf: Vec<u8>,
    mem: Vec<SegmentMeta>,
    tsv: Vec<SegmentMeta>,
}

impl SegmentWriter {
    /// Opens a writer targeting `path`, writing to a sibling temp file
    /// until [`finish`](Self::finish).
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path: PathBuf = path.into();
        let tmp = path.with_file_name(format!(
            ".{}.tmp.{}",
            path.file_name()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
                .to_string_lossy(),
            std::process::id()
        ));
        let mut f = io::BufWriter::new(fs::File::create(&tmp)?);
        f.write_all(HEAD_MAGIC)?;
        Ok(Self {
            file: Some(f),
            tmp,
            path,
            offset: HEAD_MAGIC.len() as u64,
            buf: Vec::new(),
            mem: Vec::new(),
            tsv: Vec::new(),
        })
    }

    /// Appends one object segment to `class`. Objects must arrive in
    /// strictly ascending order within each class — the invariant the
    /// streaming sweep's deterministic merge reads back.
    pub fn append(&mut self, class: SegmentClass, seg: ColumnSlice<'_>) -> io::Result<()> {
        let metas = match class {
            SegmentClass::MemOrder => &self.mem,
            SegmentClass::Tsv => &self.tsv,
        };
        if let Some(last) = metas.last() {
            if seg.object <= last.object {
                return Err(invalid(
                    &self.path,
                    format!(
                        "segment for {} appended out of ascending object order (after {})",
                        seg.object, last.object
                    ),
                ));
            }
        }
        let mut meta = encode_segment(&seg, &mut self.buf)?;
        meta.offset = self.offset;
        self.offset += meta.bytes;
        let f = self.file.as_mut().expect("writer already finished");
        f.write_all(&self.buf)?;
        match class {
            SegmentClass::MemOrder => self.mem.push(meta),
            SegmentClass::Tsv => self.tsv.push(meta),
        }
        Ok(())
    }

    /// Writes the footer catalog and trailer, then renames the temp file
    /// into place.
    pub fn finish(
        mut self,
        workload: &str,
        end_time: SimTime,
        clocks: &ClockPool,
        sites: &SiteRegistry,
    ) -> io::Result<SegmentWriteStats> {
        let catalog = SegmentCatalog {
            version: SEGMENT_VERSION,
            workload: workload.to_string(),
            end_time,
            mem: std::mem::take(&mut self.mem),
            tsv: std::mem::take(&mut self.tsv),
            clocks: clocks.clone(),
            sites: sites.clone(),
        };
        let footer = serde_json::to_string(&catalog)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let footer_bytes = footer.as_bytes();
        let mut f = self.file.take().expect("writer already finished");
        f.write_all(footer_bytes)?;
        f.write_all(&self.offset.to_le_bytes())?;
        f.write_all(&(footer_bytes.len() as u64).to_le_bytes())?;
        f.write_all(&fnv1a(footer_bytes).to_le_bytes())?;
        f.write_all(FOOT_MAGIC)?;
        f.flush()?;
        drop(f);
        fs::rename(&self.tmp, &self.path).inspect_err(|_| {
            let _ = fs::remove_file(&self.tmp);
        })?;
        Ok(SegmentWriteStats {
            segments: catalog.mem.len() + catalog.tsv.len(),
            events: catalog.events(),
            file_bytes: self.offset + footer_bytes.len() as u64 + TRAILER_LEN,
        })
    }
}

impl Drop for SegmentWriter {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

impl<'t> TraceIndex<'t> {
    /// Writes this index as a segment file at `path` (atomically: a
    /// sibling temp file renamed into place, so a crash mid-write never
    /// leaves a half file under the final name).
    pub fn write_segments(&self, path: &Path) -> io::Result<SegmentWriteStats> {
        let mut w = SegmentWriter::create(path)?;
        for slot in 0..self.mem.object_count() {
            w.append(SegmentClass::MemOrder, ColumnSlice::of(&self.mem, slot))?;
        }
        for slot in 0..self.tsv.object_count() {
            w.append(SegmentClass::Tsv, ColumnSlice::of(&self.tsv, slot))?;
        }
        w.finish(
            &self.trace.workload,
            self.trace.end_time,
            &self.trace.clocks,
            &self.trace.sites,
        )
    }
}

/// One loaded object segment: the object's columns, resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentColumns {
    /// The segment's object.
    pub object: ObjectId,
    /// Virtual timestamps (time-sorted).
    pub times: Vec<SimTime>,
    /// Accessing threads.
    pub threads: Vec<ThreadId>,
    /// Static sites.
    pub sites: Vec<SiteId>,
    /// Operation classes.
    pub kinds: Vec<AccessKind>,
    /// Pooled clock handles.
    pub clocks: Vec<ClockId>,
}

impl SegmentColumns {
    /// Events in the segment.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the segment holds no events (never true for written files —
    /// empty objects get no segment).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// Streaming reader over a segment file: the catalog (with the clock pool)
/// stays resident; event columns are loaded per segment on demand and
/// dropped by the caller when its budget window moves on.
#[derive(Debug)]
pub struct SegmentReader {
    file: fs::File,
    catalog: SegmentCatalog,
    path: PathBuf,
}

impl SegmentReader {
    /// Opens and validates a segment file: both magics, the trailer, the
    /// footer checksum, and the schema version. Per-segment payloads are
    /// verified lazily, on [`load`](Self::load).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut file = fs::File::open(&path)?;
        let size = file.metadata()?.len();
        if size < HEAD_MAGIC.len() as u64 + TRAILER_LEN {
            return Err(invalid(&path, "not a segment file (shorter than header + trailer)"));
        }
        let mut head = [0u8; 8];
        file.read_exact(&mut head)?;
        if &head != HEAD_MAGIC {
            return Err(invalid(&path, "bad magic (not a segment file)"));
        }
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact(&mut trailer)?;
        if &trailer[24..32] != FOOT_MAGIC {
            return Err(invalid(&path, "truncated segment file (trailer magic missing)"));
        }
        let footer_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let footer_len = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
        let footer_fnv = u64::from_le_bytes(trailer[16..24].try_into().unwrap());
        let footer_end = footer_offset.checked_add(footer_len);
        if footer_end.is_none() || footer_end.unwrap() + TRAILER_LEN != size {
            return Err(invalid(&path, "truncated segment file (footer out of bounds)"));
        }
        file.seek(SeekFrom::Start(footer_offset))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)?;
        if fnv1a(&footer) != footer_fnv {
            return Err(invalid(&path, "footer checksum mismatch (corrupt catalog)"));
        }
        let footer_text = std::str::from_utf8(&footer)
            .map_err(|e| invalid(&path, format!("footer is not UTF-8: {e}")))?;
        let catalog: SegmentCatalog = serde_json::from_str(footer_text)
            .map_err(|e| invalid(&path, format!("corrupt footer catalog: {e}")))?;
        if catalog.version != SEGMENT_VERSION {
            return Err(invalid(
                &path,
                format!(
                    "segment format version {} (this build speaks {SEGMENT_VERSION})",
                    catalog.version
                ),
            ));
        }
        for meta in catalog.mem.iter().chain(&catalog.tsv) {
            if meta.bytes != u64::from(meta.events) * EVENT_BYTES
                || meta.offset + meta.bytes > footer_offset
            {
                return Err(invalid(
                    &path,
                    format!("catalog entry for {} out of bounds", meta.object),
                ));
            }
        }
        Ok(Self { file, catalog, path })
    }

    /// The footer catalog.
    pub fn catalog(&self) -> &SegmentCatalog {
        &self.catalog
    }

    /// The resident clock pool.
    pub fn clocks(&self) -> &ClockPool {
        &self.catalog.clocks
    }

    /// Loads segment `k` of `class` into memory, verifying its checksum.
    pub fn load(&mut self, class: SegmentClass, k: usize) -> io::Result<SegmentColumns> {
        let meta = self.catalog.class(class)[k].clone();
        let n = meta.events as usize;
        self.file.seek(SeekFrom::Start(meta.offset))?;
        let mut raw = vec![0u8; meta.bytes as usize];
        self.file.read_exact(&mut raw)?;
        if fnv1a(&raw) != meta.checksum {
            return Err(invalid(
                &self.path,
                format!("segment checksum mismatch for {} (corrupt payload)", meta.object),
            ));
        }
        let (times_b, rest) = raw.split_at(n * 8);
        let (threads_b, rest) = rest.split_at(n * 4);
        let (sites_b, rest) = rest.split_at(n * 4);
        let (kinds_b, clocks_b) = rest.split_at(n);
        let le_u64 = |b: &[u8], i: usize| u64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().unwrap());
        let le_u32 = |b: &[u8], i: usize| u32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().unwrap());
        let mut kinds = Vec::with_capacity(n);
        for &k in kinds_b {
            kinds.push(kind_from_tag(k).ok_or_else(|| {
                invalid(
                    &self.path,
                    format!("unknown access-kind tag {k} in segment for {}", meta.object),
                )
            })?);
        }
        Ok(SegmentColumns {
            object: meta.object,
            times: (0..n).map(|i| SimTime::from_us(le_u64(times_b, i))).collect(),
            threads: (0..n).map(|i| ThreadId(le_u32(threads_b, i))).collect(),
            sites: (0..n).map(|i| SiteId(le_u32(sites_b, i))).collect(),
            kinds,
            clocks: (0..n).map(|i| ClockId(le_u32(clocks_b, i))).collect(),
        })
    }

    /// Reassembles one class's full [`ClassColumns`] by loading every
    /// segment — the round-trip used by tests and small-trace callers; the
    /// streaming analysis path loads bounded batches instead.
    pub fn read_class_columns(&mut self, class: SegmentClass) -> io::Result<ClassColumns> {
        let metas = self.catalog.class(class).to_vec();
        let total: usize = metas.iter().map(|m| m.events as usize).sum();
        let mut cols = ClassColumns {
            times: Vec::with_capacity(total),
            threads: Vec::with_capacity(total),
            sites: Vec::with_capacity(total),
            objs: Vec::with_capacity(total),
            kinds: Vec::with_capacity(total),
            clocks: Vec::with_capacity(total),
            objects: Vec::with_capacity(metas.len()),
            offsets: Vec::with_capacity(metas.len() + 1),
        };
        cols.offsets.push(0);
        for (k, meta) in metas.iter().enumerate() {
            let mut seg = self.load(class, k)?;
            debug_assert_eq!(seg.len(), meta.events as usize, "catalog entry {k} consistent");
            cols.objs.extend(std::iter::repeat_n(meta.object, seg.len()));
            cols.times.append(&mut seg.times);
            cols.threads.append(&mut seg.threads);
            cols.sites.append(&mut seg.sites);
            cols.kinds.append(&mut seg.kinds);
            cols.clocks.append(&mut seg.clocks);
            cols.objects.push(meta.object);
            cols.offsets.push(cols.times.len() as u32);
        }
        cols.validate()
            .map_err(|e| invalid(&self.path, format!("reassembled columns invalid: {e}")))?;
        Ok(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Trace, TraceEvent};
    use waffle_vclock::ClockSnapshot;

    fn sample_trace(objects: u32, per_object: u64) -> Trace {
        let mut sites = SiteRegistry::new();
        let si = sites.register("init", AccessKind::Init);
        let su = sites.register("use", AccessKind::Use);
        let sc = sites.register("call", AccessKind::UnsafeApiCall);
        let mut clocks = ClockPool::new();
        let mut events = Vec::new();
        let mut t = 0;
        for round in 0..per_object {
            for o in 0..objects {
                t += 10;
                let kind = match round % 3 {
                    0 => (si, AccessKind::Init),
                    1 => (su, AccessKind::Use),
                    _ => (sc, AccessKind::UnsafeApiCall),
                };
                let clock = clocks.intern(ClockSnapshot::from_entries([(
                    ThreadId(o % 3),
                    round / 2 + 1,
                )]));
                events.push(TraceEvent {
                    time: SimTime::from_us(t),
                    thread: ThreadId(o % 3),
                    site: kind.0,
                    obj: ObjectId(o),
                    kind: kind.1,
                    dyn_index: round,
                    clock,
                });
            }
        }
        Trace {
            workload: "seg.sample".into(),
            sites,
            events,
            forks: vec![],
            clocks,
            end_time: SimTime::from_us(t + 10),
        }
    }

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("waffle-seg-{tag}-{}.wseg", std::process::id()))
    }

    #[test]
    fn write_read_round_trip_is_byte_identical() {
        let trace = sample_trace(5, 9);
        let index = TraceIndex::build(&trace);
        let path = tmpfile("roundtrip");
        let stats = index.write_segments(&path).unwrap();
        assert_eq!(stats.events, trace.events.len() as u64);
        assert_eq!(stats.segments, index.mem.object_count() + index.tsv.object_count());

        let mut reader = SegmentReader::open(&path).unwrap();
        assert_eq!(reader.catalog().workload, "seg.sample");
        assert_eq!(reader.clocks(), &trace.clocks);
        assert_eq!(reader.catalog().events(), trace.events.len() as u64);
        let mem = reader.read_class_columns(SegmentClass::MemOrder).unwrap();
        let tsv = reader.read_class_columns(SegmentClass::Tsv).unwrap();
        assert_eq!(mem, index.mem);
        assert_eq!(tsv, index.tsv);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn catalog_min_max_times_bracket_each_segment() {
        let trace = sample_trace(3, 5);
        let index = TraceIndex::build(&trace);
        let path = tmpfile("minmax");
        index.write_segments(&path).unwrap();
        let mut reader = SegmentReader::open(&path).unwrap();
        for k in 0..reader.catalog().mem.len() {
            let meta = reader.catalog().mem[k].clone();
            let seg = reader.load(SegmentClass::MemOrder, k).unwrap();
            assert_eq!(seg.object, meta.object);
            assert_eq!(*seg.times.first().unwrap(), meta.min_time);
            assert_eq!(*seg.times.last().unwrap(), meta.max_time);
            assert!(seg.times.windows(2).all(|w| w[0] <= w[1]));
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_footer_is_invalid_data() {
        let trace = sample_trace(4, 6);
        let path = tmpfile("truncated");
        TraceIndex::build(&trace).write_segments(&path).unwrap();
        let full = fs::read(&path).unwrap();
        // Chop the file mid-footer: the trailer magic disappears.
        fs::write(&path, &full[..full.len() - 40]).unwrap();
        let err = SegmentReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_segment_payload_fails_checksum_on_load() {
        let trace = sample_trace(4, 6);
        let path = tmpfile("corrupt");
        TraceIndex::build(&trace).write_segments(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one byte inside the first mem segment's payload.
        let off = SegmentReader::open(&path).unwrap().catalog().mem[0].offset as usize;
        bytes[off + 3] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let mut reader = SegmentReader::open(&path).expect("footer still valid");
        let err = reader.load(SegmentClass::MemOrder, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn future_version_is_rejected() {
        let trace = sample_trace(2, 4);
        let path = tmpfile("version");
        TraceIndex::build(&trace).write_segments(&path).unwrap();
        let text = fs::read(&path).unwrap();
        // Rewrite the footer with a bumped version, fixing up the trailer
        // so only the version check can fail.
        let size = text.len();
        let footer_off =
            u64::from_le_bytes(text[size - 32..size - 24].try_into().unwrap()) as usize;
        let footer_len = u64::from_le_bytes(text[size - 24..size - 16].try_into().unwrap()) as usize;
        let footer = String::from_utf8(text[footer_off..footer_off + footer_len].to_vec()).unwrap();
        let bumped = footer.replacen("\"version\":1", "\"version\":99", 1);
        assert_ne!(footer, bumped, "footer carries the version field");
        let mut out = text[..footer_off].to_vec();
        out.extend_from_slice(bumped.as_bytes());
        out.extend_from_slice(&(footer_off as u64).to_le_bytes());
        out.extend_from_slice(&(bumped.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(bumped.as_bytes()).to_le_bytes());
        out.extend_from_slice(FOOT_MAGIC);
        fs::write(&path, out).unwrap();
        let err = SegmentReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 99"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn writer_rejects_out_of_order_objects_and_cleans_up_on_drop() {
        let path = tmpfile("writer-order");
        let times = [SimTime::from_us(1)];
        let threads = [ThreadId(0)];
        let sites = [SiteId(0)];
        let kinds = [AccessKind::Use];
        let clocks = [ClockId::EMPTY];
        let seg = |o: u32| ColumnSlice {
            object: ObjectId(o),
            times: &times,
            threads: &threads,
            sites: &sites,
            kinds: &kinds,
            clocks: &clocks,
        };
        let mut w = SegmentWriter::create(&path).unwrap();
        let tmp = w.tmp.clone();
        w.append(SegmentClass::MemOrder, seg(5)).unwrap();
        let err = w.append(SegmentClass::MemOrder, seg(5)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("ascending object order"), "{err}");
        // A different class keeps its own order cursor.
        w.append(SegmentClass::Tsv, seg(1)).unwrap();
        assert!(tmp.exists());
        drop(w);
        assert!(!tmp.exists(), "abandoned writer must remove its temp file");
        assert!(!path.exists(), "unfinished file must not appear under the final name");
    }

    #[test]
    fn encode_rejects_empty_and_ragged_segments() {
        let path = tmpfile("writer-ragged");
        let mut w = SegmentWriter::create(&path).unwrap();
        let times = [SimTime::from_us(1), SimTime::from_us(2)];
        let threads = [ThreadId(0)];
        let sites = [SiteId(0), SiteId(0)];
        let kinds = [AccessKind::Use, AccessKind::Use];
        let clocks = [ClockId::EMPTY, ClockId::EMPTY];
        let ragged = ColumnSlice {
            object: ObjectId(0),
            times: &times,
            threads: &threads,
            sites: &sites,
            kinds: &kinds,
            clocks: &clocks,
        };
        let err = w.append(SegmentClass::MemOrder, ragged).unwrap_err();
        assert!(err.to_string().contains("ragged"), "{err}");
        let empty = ColumnSlice {
            object: ObjectId(0),
            times: &[],
            threads: &[],
            sites: &[],
            kinds: &[],
            clocks: &[],
        };
        let err = w.append(SegmentClass::MemOrder, empty).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn missing_file_stays_not_found_not_invalid() {
        let err = SegmentReader::open(tmpfile("absent")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn garbage_file_is_invalid_data() {
        let path = tmpfile("garbage");
        fs::write(&path, b"this is not a segment file at all........").unwrap();
        let err = SegmentReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_file(&path);
    }
}
