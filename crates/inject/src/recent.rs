//! Sliding window of recent accesses, shared by the online policies.

use std::collections::HashMap;

use waffle_mem::{AccessKind, ObjectId, SiteId};
use waffle_sim::{SimTime, ThreadId};
use waffle_vclock::ClockSnapshot;

/// One recent access, as remembered by an online policy.
#[derive(Debug, Clone)]
pub struct RecentAccess {
    /// Execution time of the access.
    pub time: SimTime,
    /// Static location.
    pub site: SiteId,
    /// Operation class.
    pub kind: AccessKind,
    /// Accessing thread.
    pub thread: ThreadId,
    /// The accessing thread's vector clock at access time. Empty for
    /// policies that do not track clocks (only the no-preparation-run
    /// variant consumes this field).
    pub clock: ClockSnapshot<ThreadId>,
}

/// Per-object sliding windows of the last δ of accesses.
#[derive(Debug, Default)]
pub struct RecentWindow {
    delta: SimTime,
    per_obj: HashMap<ObjectId, Vec<RecentAccess>>,
}

impl RecentWindow {
    /// Creates a window of width `delta`.
    pub fn new(delta: SimTime) -> Self {
        Self {
            delta,
            per_obj: HashMap::new(),
        }
    }

    /// Records an access and prunes entries older than δ.
    pub fn push(&mut self, obj: ObjectId, access: RecentAccess) {
        let v = self.per_obj.entry(obj).or_default();
        let cutoff = access.time.saturating_sub(self.delta);
        v.retain(|a| a.time >= cutoff);
        v.push(access);
    }

    /// Recent accesses to `obj` from threads other than `thread`, still
    /// within δ of `now`.
    pub fn others(
        &self,
        obj: ObjectId,
        thread: ThreadId,
        now: SimTime,
    ) -> impl Iterator<Item = &RecentAccess> {
        let cutoff = now.saturating_sub(self.delta);
        self.per_obj
            .get(&obj)
            .into_iter()
            .flatten()
            .filter(move |a| a.thread != thread && a.time >= cutoff && a.time <= now)
    }

    /// Clears all windows (fresh run).
    #[allow(dead_code)]
    pub fn clear(&mut self) {
        self.per_obj.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(t: u64, site: u32, thread: u32, kind: AccessKind) -> RecentAccess {
        RecentAccess {
            time: SimTime::from_us(t),
            site: SiteId(site),
            kind,
            thread: ThreadId(thread),
            clock: ClockSnapshot::new(),
        }
    }

    #[test]
    fn window_prunes_stale_entries() {
        let mut w = RecentWindow::new(SimTime::from_us(100));
        let o = ObjectId(0);
        w.push(o, acc(0, 0, 0, AccessKind::Init));
        w.push(o, acc(300, 1, 0, AccessKind::Use));
        let found: Vec<_> = w
            .others(o, ThreadId(1), SimTime::from_us(300))
            .map(|a| a.site)
            .collect();
        assert_eq!(found, vec![SiteId(1)], "the old init must be pruned");
    }

    #[test]
    fn others_excludes_own_thread() {
        let mut w = RecentWindow::new(SimTime::from_us(100));
        let o = ObjectId(0);
        w.push(o, acc(10, 0, 0, AccessKind::Init));
        w.push(o, acc(20, 1, 1, AccessKind::Use));
        let sites: Vec<_> = w
            .others(o, ThreadId(1), SimTime::from_us(25))
            .map(|a| a.site)
            .collect();
        assert_eq!(sites, vec![SiteId(0)]);
    }

    #[test]
    fn clear_resets_all_windows() {
        let mut w = RecentWindow::new(SimTime::from_us(100));
        w.push(ObjectId(0), acc(10, 0, 0, AccessKind::Init));
        w.clear();
        assert_eq!(
            w.others(ObjectId(0), ThreadId(1), SimTime::from_us(20)).count(),
            0
        );
    }

    #[test]
    fn objects_are_independent() {
        let mut w = RecentWindow::new(SimTime::from_us(100));
        w.push(ObjectId(0), acc(10, 0, 0, AccessKind::Init));
        assert_eq!(
            w.others(ObjectId(1), ThreadId(1), SimTime::from_us(20)).count(),
            0
        );
    }
}
