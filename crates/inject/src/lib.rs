//! Delay-injection policies: Waffle, WaffleBasic, TSVD, ablations, baselines.
//!
//! Each policy is a [`Monitor`](waffle_sim::Monitor): it observes every
//! instrumented access and decides, per dynamic instance, whether to pause
//! the thread (inject a delay) before the access executes. The crate
//! implements the complete design-space matrix of the paper's Table 1:
//!
//! | Policy | Identification | Delay length | Coordination |
//! |---|---|---|---|
//! | [`WafflePolicy`] | preparation run (plan) | per-location `α·gap` | decay + interference skip |
//! | [`WaffleBasicPolicy`] | online (same run) | fixed 100 ms | decay, parallel delays |
//! | [`TsvdPolicy`] | online, TSV sites | fixed 100 ms | decay, parallel delays |
//! | [`NoPrepPolicy`] | online + runtime vclock pruning | `α·observed gap` | decay (Table 7 row 2) |
//! | [`SingleDelayPolicy`] | sampled location | fixed | one delay per run (RaceFuzzer/CTrigger-style) |
//! | [`RandomSleepPolicy`] | none | fixed | coin flip per access |
//!
//! Probability-decay state ([`DecayState`]) persists across runs, as the
//! real tool saves it to disk after each detection run (§5).

pub mod basic;
pub mod baselines;
pub mod clock_tracker;
pub mod decay;
pub mod noprep;
pub(crate) mod recent;
pub mod tsvd;
pub mod waffle;
pub mod waffle_tsv;

pub use basic::{BasicState, WaffleBasicPolicy};
pub use baselines::{RandomSleepPolicy, SingleDelayPolicy};
pub use clock_tracker::ClockTracker;
pub use decay::{DecayConfig, DecayState};
pub use noprep::{NoPrepPolicy, NoPrepState};
pub use tsvd::{TsvdPolicy, TsvdState};
pub use waffle::{WaffleConfig, WafflePolicy};
pub use waffle_tsv::WaffleTsvPolicy;
