//! Probability decay (§2, "When to inject at run time?").
//!
//! Every delay location starts with injection probability 1. Each delay
//! that fails to expose a bug lowers the location's probability by a
//! constant λ; at probability 0 the location is effectively removed from
//! the candidate set. The state is saved after every detection run and
//! bootstraps the next one (§5), which is what makes repeated-miss
//! behaviour converge: once a location's probability hits zero it can never
//! be delayed again.

use std::collections::BTreeMap;

use rand::Rng;
use serde::{Deserialize, Serialize};
use waffle_mem::SiteId;

/// Decay parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DecayConfig {
    /// Initial injection probability, in per-mille (1000 = 100%).
    pub initial_permille: u32,
    /// Decay constant λ, in per-mille, subtracted per failed injection.
    pub lambda_permille: u32,
}

impl Default for DecayConfig {
    fn default() -> Self {
        Self {
            initial_permille: 1000,
            lambda_permille: 150, // λ = 0.15
        }
    }
}

/// Per-site injection probabilities, persisted across runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecayState {
    config: DecayConfig,
    permille: BTreeMap<SiteId, u32>,
}

impl Default for DecayState {
    fn default() -> Self {
        Self::new(DecayConfig::default())
    }
}

impl DecayState {
    /// Creates a fresh state under `config`.
    pub fn new(config: DecayConfig) -> Self {
        Self {
            config,
            permille: BTreeMap::new(),
        }
    }

    /// Current injection probability for `site`, in per-mille.
    pub fn permille(&self, site: SiteId) -> u32 {
        self.permille
            .get(&site)
            .copied()
            .unwrap_or(self.config.initial_permille)
    }

    /// Whether `site` has decayed to zero (removed from consideration).
    pub fn exhausted(&self, site: SiteId) -> bool {
        self.permille(site) == 0
    }

    /// Draws an injection decision for `site`.
    pub fn roll(&self, site: SiteId, rng: &mut impl Rng) -> bool {
        let p = self.permille(site);
        if p == 0 {
            return false;
        }
        if p >= 1000 {
            return true;
        }
        rng.gen_range(0..1000) < p
    }

    /// Records a (presumed) failed injection at `site`: probability drops
    /// by λ, pinned at zero.
    pub fn record_injection(&mut self, site: SiteId) {
        let p = self.permille(site);
        self.permille
            .insert(site, p.saturating_sub(self.config.lambda_permille));
    }

    /// Serializes the state (saved to disk between detection runs, §5).
    /// Errors propagate to the caller so a failing save aborts the one
    /// persistence step, not the whole detection campaign.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a persisted state.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Number of sites that have been decayed at least once.
    pub fn touched_sites(&self) -> usize {
        self.permille.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_sites_start_at_full_probability() {
        let d = DecayState::new(DecayConfig::default());
        assert_eq!(d.permille(SiteId(0)), 1000);
        assert!(!d.exhausted(SiteId(0)));
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(d.roll(SiteId(0), &mut rng));
    }

    #[test]
    fn repeated_failures_exhaust_a_site_at_default_lambda() {
        let mut d = DecayState::new(DecayConfig::default());
        for _ in 0..7 {
            d.record_injection(SiteId(3));
        }
        assert!(d.exhausted(SiteId(3)));
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(!d.roll(SiteId(3), &mut rng));
        // Further failures stay pinned at zero.
        d.record_injection(SiteId(3));
        assert_eq!(d.permille(SiteId(3)), 0);
    }

    #[test]
    fn roll_respects_intermediate_probability() {
        let mut d = DecayState::new(DecayConfig {
            initial_permille: 1000,
            lambda_permille: 100,
        });
        for _ in 0..5 {
            d.record_injection(SiteId(1));
        }
        assert_eq!(d.permille(SiteId(1)), 500);
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| d.roll(SiteId(1), &mut rng)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn state_round_trips_through_json() {
        let mut d = DecayState::new(DecayConfig {
            initial_permille: 800,
            lambda_permille: 50,
        });
        d.record_injection(SiteId(2));
        let back = DecayState::from_json(&d.to_json().unwrap()).unwrap();
        assert_eq!(back.permille(SiteId(2)), 750);
        assert_eq!(back.permille(SiteId(9)), 800);
        assert_eq!(back.touched_sites(), 1);
    }
}
