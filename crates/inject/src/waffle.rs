//! The Waffle detection-run policy (§4).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use waffle_analysis::Plan;
use waffle_sim::{AccessCtx, AccessRecord, Monitor, PreAction, SimTime};
use waffle_telemetry::{RunJournal, RunTelemetry};

use crate::decay::DecayState;

/// Knobs of the detection-run policy (defaults match the paper).
#[derive(Debug, Clone, Copy)]
pub struct WaffleConfig {
    /// Honour the interference set `I`: skip a delay while an interfering
    /// delay is ongoing in another thread (§4.4). Disabled by the "no
    /// interference control" ablation when the plan still carries `I`.
    pub interference_control: bool,
}

impl Default for WaffleConfig {
    fn default() -> Self {
        Self {
            interference_control: true,
        }
    }
}

/// Statistics of one detection run under the Waffle policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaffleRunStats {
    /// Delays injected.
    pub injected: u64,
    /// Delays skipped by the probability roll.
    pub skipped_probability: u64,
    /// Delays skipped by interference control.
    pub skipped_interference: u64,
}

/// Plan-guided delay injection: variable-length delays at the candidate
/// locations of the plan, gated by probability decay and interference
/// avoidance.
#[derive(Debug)]
pub struct WafflePolicy {
    plan: Plan,
    decay: DecayState,
    config: WaffleConfig,
    rng: SmallRng,
    telemetry: RunTelemetry,
}

impl WafflePolicy {
    /// Creates a policy for one detection run. `decay` carries the
    /// persisted probabilities from earlier runs; `seed` drives the
    /// probability rolls.
    pub fn new(plan: Plan, decay: DecayState, seed: u64) -> Self {
        Self::with_config(plan, decay, seed, WaffleConfig::default())
    }

    /// Creates a policy with explicit configuration.
    pub fn with_config(plan: Plan, decay: DecayState, seed: u64, config: WaffleConfig) -> Self {
        Self {
            plan,
            decay,
            config,
            rng: SmallRng::seed_from_u64(seed),
            telemetry: RunTelemetry::counters_only(),
        }
    }

    /// Extracts the evolved decay state (persist it for the next run).
    pub fn into_decay(self) -> DecayState {
        self.decay
    }

    /// Run statistics, read from the telemetry counters — the journal and
    /// `WaffleRunStats` cannot disagree by construction.
    pub fn stats(&self) -> WaffleRunStats {
        let c = self.telemetry.journal().counters;
        WaffleRunStats {
            injected: c.injected,
            skipped_probability: c.skipped_probability,
            skipped_interference: c.skipped_interference,
        }
    }

    /// Turns per-decision event journaling on or off (counters stay on).
    pub fn record_events(&mut self, on: bool) {
        self.telemetry.set_events(on);
    }

    /// Takes this run's finished telemetry journal.
    pub fn take_journal(&mut self) -> RunJournal {
        self.telemetry.take_journal()
    }

    /// The telemetry journal recorded so far.
    pub fn journal(&self) -> &RunJournal {
        self.telemetry.journal()
    }

    /// Access to the plan (reporting).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }
}

impl Monitor for WafflePolicy {
    fn instr_overhead(&self, _kind: waffle_mem::AccessKind) -> SimTime {
        // The detection runtime performs a candidate-set lookup per access;
        // cheaper than the preparation run's trace write.
        SimTime::from_us(1)
    }

    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        if !self.plan.is_delay_site(ctx.site) {
            return PreAction::Proceed;
        }
        let len = self.plan.delay_for(ctx.site);
        if len == SimTime::ZERO {
            return PreAction::Proceed;
        }
        // Interference control: no delay at ℓ while a delay at an
        // interfering location is ongoing in another thread (§4.4). Checked
        // *before* the probability roll so a skip consumes neither a decay
        // step nor RNG state.
        if self.config.interference_control {
            let interferes = ctx.active_delays.iter().any(|d| {
                d.thread != ctx.thread
                    && d.end > ctx.time
                    && self.plan.interference.interferes(ctx.site, d.site)
            });
            if interferes {
                self.telemetry
                    .skipped_interference(ctx.site, ctx.thread, ctx.time);
                return PreAction::Proceed;
            }
        }
        // Probability decay.
        let permille = self.decay.permille(ctx.site);
        if !self.decay.roll(ctx.site, &mut self.rng) {
            self.telemetry
                .skipped_probability(ctx.site, ctx.thread, ctx.time, permille);
            return PreAction::Proceed;
        }
        self.decay.record_injection(ctx.site);
        self.telemetry
            .injected(ctx.site, ctx.thread, ctx.time, len, permille);
        self.telemetry
            .decay_step(ctx.site, ctx.thread, ctx.time, self.decay.permille(ctx.site));
        PreAction::Delay(len)
    }

    fn on_access_post(&mut self, rec: &AccessRecord) {
        let overhead = Monitor::instr_overhead(self, rec.kind);
        self.telemetry.instrumented(overhead);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_analysis::{analyze, AnalyzerConfig};
    use waffle_sim::{SimConfig, Simulator, Workload, WorkloadBuilder};
    use waffle_trace::TraceRecorder;

    /// A use-after-free race: worker uses the object shortly before main
    /// disposes it. Clean delay-free; delaying the use past the dispose
    /// manifests it.
    fn uaf_workload() -> Workload {
        let mut b = WorkloadBuilder::new("uaf");
        let o = b.object("conn");
        let started = b.event("started");
        let worker = b.script("worker", move |s| {
            s.wait(started)
                .compute(SimTime::from_us(100))
                .use_(o, "Worker.poll:11", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "Main.ctor:2", SimTime::from_us(10))
                .fork(worker)
                .signal(started)
                .compute(SimTime::from_us(400))
                .dispose(o, "Main.cleanup:8", SimTime::from_us(10))
                .join_children();
        });
        b.main(main);
        b.build()
    }

    fn plan_for(w: &Workload) -> Plan {
        let mut rec = TraceRecorder::with_overhead(w, SimTime::ZERO);
        let _ = Simulator::run(w, SimConfig::with_seed(0).deterministic(), &mut rec);
        analyze(&rec.into_trace(), &AnalyzerConfig::default())
    }

    #[test]
    fn waffle_exposes_uaf_in_first_detection_run() {
        let w = uaf_workload();
        let plan = plan_for(&w);
        assert_eq!(plan.candidates.len(), 1);
        let mut policy = WafflePolicy::new(plan, DecayState::default(), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        assert!(r.manifested(), "delays: {:?}", r.delays);
        assert_eq!(
            r.exceptions[0].error.kind,
            waffle_mem::NullRefKind::UseAfterFree
        );
        assert_eq!(policy.stats().injected, 1);
    }

    #[test]
    fn injected_delay_length_is_alpha_times_gap() {
        let w = uaf_workload();
        let plan = plan_for(&w);
        let expected = plan.candidates[0].max_gap.scale(115, 100);
        let mut policy = WafflePolicy::new(plan, DecayState::default(), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        assert_eq!(r.delays.len(), 1);
        assert_eq!(r.delays[0].dur, expected);
        // Far below the 100ms fixed delay of the basic tool.
        assert!(r.delays[0].dur < SimTime::from_ms(100));
    }

    #[test]
    fn exhausted_decay_stops_injection() {
        let w = uaf_workload();
        let plan = plan_for(&w);
        let site = plan.candidates[0].delay_site;
        let mut decay = DecayState::default();
        for _ in 0..10 {
            decay.record_injection(site);
        }
        let mut policy = WafflePolicy::new(plan, decay, 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        assert!(!r.manifested());
        assert_eq!(policy.stats().injected, 0);
        assert_eq!(policy.stats().skipped_probability, 1);
    }

    #[test]
    fn journal_counters_reconcile_with_stats_and_run_result() {
        let w = uaf_workload();
        let plan = plan_for(&w);
        let mut policy = WafflePolicy::new(plan, DecayState::default(), 1);
        policy.record_events(true);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        let stats = policy.stats();
        let j = policy.take_journal();
        assert_eq!(j.counters.injected, stats.injected);
        assert_eq!(j.counters.skipped_probability, stats.skipped_probability);
        assert_eq!(j.counters.skipped_interference, stats.skipped_interference);
        // Independent cross-checks against the engine's own ledger.
        assert_eq!(j.counters.injected, r.delays.len() as u64);
        assert_eq!(j.counters.instrumented_ops, r.instrumented_ops);
        assert_eq!(j.counters.decay_steps, j.counters.injected);
        assert_eq!(j.delay_hist.count(), j.counters.injected);
        assert_eq!(
            j.events.len() as u64,
            j.counters.decisions() + j.counters.decay_steps
        );
    }

    /// §4.4 ordering: the interference check runs *before* the probability
    /// roll, so a skip consumes neither a decay step nor RNG state — the
    /// subsequent roll outcomes are exactly those of a policy that never
    /// saw the interfering delay.
    #[test]
    fn interference_skip_consumes_no_roll_and_no_decay_state() {
        use std::collections::BTreeMap;
        use waffle_analysis::InterferenceSet;
        use waffle_mem::{AccessKind, ObjectId, SiteId};
        use waffle_sim::{ActiveDelay, ThreadId};

        let l = SiteId(0);
        let l_star = SiteId(7);
        let mut delay_len = BTreeMap::new();
        delay_len.insert(l, SimTime::from_us(115));
        let mut interference = InterferenceSet::new();
        interference.insert(l, l_star);
        let plan = Plan {
            workload: "ordering".into(),
            candidates: vec![],
            delay_len,
            interference,
            delta: SimTime::from_ms(100),
            stats: Default::default(),
            memory_model: Default::default(),
        };
        fn pre(p: &mut WafflePolicy, site: SiteId, t: u64, delays: &[ActiveDelay]) -> PreAction {
            p.on_access_pre(&waffle_sim::AccessCtx {
                time: SimTime::from_us(t),
                thread: ThreadId(0),
                site,
                obj: ObjectId(0),
                kind: AccessKind::Use,
                dyn_index: 0,
                task: None,
                active_delays: delays,
                last_block: None,
            })
        }
        // Intermediate probability so every roll consumes RNG state.
        let decay = || {
            DecayState::new(crate::decay::DecayConfig {
                initial_permille: 500,
                lambda_permille: 150,
            })
        };
        let ongoing = [ActiveDelay {
            thread: ThreadId(1),
            site: l_star,
            end: SimTime::from_ms(50),
        }];

        // The skip alone leaves the decay state untouched.
        let mut skipped = WafflePolicy::new(plan.clone(), decay(), 42);
        assert_eq!(pre(&mut skipped, l, 10, &ongoing), PreAction::Proceed);
        assert_eq!(skipped.stats().skipped_interference, 1);
        assert_eq!(skipped.journal().counters.decay_steps, 0);

        // And the rolls that follow replay bit-for-bit against a control
        // policy that never skipped.
        let mut control = WafflePolicy::new(plan, decay(), 42);
        let after_skip: Vec<PreAction> =
            (0..32).map(|i| pre(&mut skipped, l, 100 + i, &[])).collect();
        let reference: Vec<PreAction> =
            (0..32).map(|i| pre(&mut control, l, 100 + i, &[])).collect();
        assert_eq!(after_skip, reference);
        assert_eq!(
            skipped.into_decay().permille(l),
            control.into_decay().permille(l),
            "decay evolution must be identical after an interference skip"
        );
    }

    #[test]
    fn non_candidate_sites_are_never_delayed() {
        // The init precedes the fork (clock-pruned) and the dispose runs
        // more than δ after the use (not a near miss): the plan is empty
        // and the policy must stay inert.
        let mut b = WorkloadBuilder::new("sync");
        let o = b.object("o");
        let worker = b.script("worker", move |s| {
            s.use_(o, "W.use:1", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(10))
                .fork(worker)
                .join_children()
                .compute(SimTime::from_ms(150))
                .dispose(o, "M.dispose:9", SimTime::from_us(10));
        });
        b.main(main);
        let w = b.build();
        let plan = plan_for(&w);
        assert!(plan.candidates.is_empty());
        let mut policy = WafflePolicy::new(plan, DecayState::default(), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        assert!(r.delays.is_empty());
        assert!(!r.manifested());
    }
}
