//! The Waffle detection-run policy (§4).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use waffle_analysis::Plan;
use waffle_sim::{AccessCtx, Monitor, PreAction, SimTime};

use crate::decay::DecayState;

/// Knobs of the detection-run policy (defaults match the paper).
#[derive(Debug, Clone, Copy)]
pub struct WaffleConfig {
    /// Honour the interference set `I`: skip a delay while an interfering
    /// delay is ongoing in another thread (§4.4). Disabled by the "no
    /// interference control" ablation when the plan still carries `I`.
    pub interference_control: bool,
}

impl Default for WaffleConfig {
    fn default() -> Self {
        Self {
            interference_control: true,
        }
    }
}

/// Statistics of one detection run under the Waffle policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaffleRunStats {
    /// Delays injected.
    pub injected: u64,
    /// Delays skipped by the probability roll.
    pub skipped_probability: u64,
    /// Delays skipped by interference control.
    pub skipped_interference: u64,
}

/// Plan-guided delay injection: variable-length delays at the candidate
/// locations of the plan, gated by probability decay and interference
/// avoidance.
#[derive(Debug)]
pub struct WafflePolicy {
    plan: Plan,
    decay: DecayState,
    config: WaffleConfig,
    rng: SmallRng,
    stats: WaffleRunStats,
}

impl WafflePolicy {
    /// Creates a policy for one detection run. `decay` carries the
    /// persisted probabilities from earlier runs; `seed` drives the
    /// probability rolls.
    pub fn new(plan: Plan, decay: DecayState, seed: u64) -> Self {
        Self::with_config(plan, decay, seed, WaffleConfig::default())
    }

    /// Creates a policy with explicit configuration.
    pub fn with_config(plan: Plan, decay: DecayState, seed: u64, config: WaffleConfig) -> Self {
        Self {
            plan,
            decay,
            config,
            rng: SmallRng::seed_from_u64(seed),
            stats: WaffleRunStats::default(),
        }
    }

    /// Extracts the evolved decay state (persist it for the next run).
    pub fn into_decay(self) -> DecayState {
        self.decay
    }

    /// Run statistics.
    pub fn stats(&self) -> WaffleRunStats {
        self.stats
    }

    /// Access to the plan (reporting).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }
}

impl Monitor for WafflePolicy {
    fn instr_overhead(&self, _kind: waffle_mem::AccessKind) -> SimTime {
        // The detection runtime performs a candidate-set lookup per access;
        // cheaper than the preparation run's trace write.
        SimTime::from_us(1)
    }

    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        if !self.plan.is_delay_site(ctx.site) {
            return PreAction::Proceed;
        }
        let len = self.plan.delay_for(ctx.site);
        if len == SimTime::ZERO {
            return PreAction::Proceed;
        }
        // Interference control: no delay at ℓ while a delay at an
        // interfering location is ongoing in another thread (§4.4).
        if self.config.interference_control {
            let interferes = ctx.active_delays.iter().any(|d| {
                d.thread != ctx.thread
                    && d.end > ctx.time
                    && self.plan.interference.interferes(ctx.site, d.site)
            });
            if interferes {
                self.stats.skipped_interference += 1;
                return PreAction::Proceed;
            }
        }
        // Probability decay.
        if !self.decay.roll(ctx.site, &mut self.rng) {
            self.stats.skipped_probability += 1;
            return PreAction::Proceed;
        }
        self.decay.record_injection(ctx.site);
        self.stats.injected += 1;
        PreAction::Delay(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_analysis::{analyze, AnalyzerConfig};
    use waffle_sim::{SimConfig, Simulator, Workload, WorkloadBuilder};
    use waffle_trace::TraceRecorder;

    /// A use-after-free race: worker uses the object shortly before main
    /// disposes it. Clean delay-free; delaying the use past the dispose
    /// manifests it.
    fn uaf_workload() -> Workload {
        let mut b = WorkloadBuilder::new("uaf");
        let o = b.object("conn");
        let started = b.event("started");
        let worker = b.script("worker", move |s| {
            s.wait(started)
                .compute(SimTime::from_us(100))
                .use_(o, "Worker.poll:11", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "Main.ctor:2", SimTime::from_us(10))
                .fork(worker)
                .signal(started)
                .compute(SimTime::from_us(400))
                .dispose(o, "Main.cleanup:8", SimTime::from_us(10))
                .join_children();
        });
        b.main(main);
        b.build()
    }

    fn plan_for(w: &Workload) -> Plan {
        let mut rec = TraceRecorder::with_overhead(w, SimTime::ZERO);
        let _ = Simulator::run(w, SimConfig::with_seed(0).deterministic(), &mut rec);
        analyze(&rec.into_trace(), &AnalyzerConfig::default())
    }

    #[test]
    fn waffle_exposes_uaf_in_first_detection_run() {
        let w = uaf_workload();
        let plan = plan_for(&w);
        assert_eq!(plan.candidates.len(), 1);
        let mut policy = WafflePolicy::new(plan, DecayState::default(), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        assert!(r.manifested(), "delays: {:?}", r.delays);
        assert_eq!(
            r.exceptions[0].error.kind,
            waffle_mem::NullRefKind::UseAfterFree
        );
        assert_eq!(policy.stats().injected, 1);
    }

    #[test]
    fn injected_delay_length_is_alpha_times_gap() {
        let w = uaf_workload();
        let plan = plan_for(&w);
        let expected = plan.candidates[0].max_gap.scale(115, 100);
        let mut policy = WafflePolicy::new(plan, DecayState::default(), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        assert_eq!(r.delays.len(), 1);
        assert_eq!(r.delays[0].dur, expected);
        // Far below the 100ms fixed delay of the basic tool.
        assert!(r.delays[0].dur < SimTime::from_ms(100));
    }

    #[test]
    fn exhausted_decay_stops_injection() {
        let w = uaf_workload();
        let plan = plan_for(&w);
        let site = plan.candidates[0].delay_site;
        let mut decay = DecayState::default();
        for _ in 0..10 {
            decay.record_injection(site);
        }
        let mut policy = WafflePolicy::new(plan, decay, 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        assert!(!r.manifested());
        assert_eq!(policy.stats().injected, 0);
        assert_eq!(policy.stats().skipped_probability, 1);
    }

    #[test]
    fn non_candidate_sites_are_never_delayed() {
        // The init precedes the fork (clock-pruned) and the dispose runs
        // more than δ after the use (not a near miss): the plan is empty
        // and the policy must stay inert.
        let mut b = WorkloadBuilder::new("sync");
        let o = b.object("o");
        let worker = b.script("worker", move |s| {
            s.use_(o, "W.use:1", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(10))
                .fork(worker)
                .join_children()
                .compute(SimTime::from_ms(150))
                .dispose(o, "M.dispose:9", SimTime::from_us(10));
        });
        b.main(main);
        let w = b.build();
        let plan = plan_for(&w);
        assert!(plan.candidates.is_empty());
        let mut policy = WafflePolicy::new(plan, DecayState::default(), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        assert!(r.delays.is_empty());
        assert!(!r.manifested());
    }
}
