//! Runtime vector-clock tracking for online policies.

use waffle_sim::tls::InheritableTls;
use waffle_sim::ThreadId;
use waffle_vclock::{ClassicClock, ClockSnapshot};

/// Maintains per-thread fork-edge vector clocks at run time, through the
/// inheritable-TLS protocol, for policies that prune candidates online
/// (the "no preparation run" variant of Table 7).
#[derive(Debug)]
pub struct ClockTracker {
    tls: InheritableTls<ClassicClock<ThreadId>>,
}

impl Default for ClockTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockTracker {
    /// Creates a tracker with the root thread (`ThreadId(0)`) installed.
    pub fn new() -> Self {
        let mut tls = InheritableTls::new();
        let root = ThreadId(0);
        tls.init_root(root, ClassicClock::root(root));
        Self { tls }
    }

    /// Fork hook: propagate the parent's clock into the child.
    pub fn on_fork(&mut self, parent: ThreadId, child: ThreadId) {
        self.tls.inherit(parent, child, |pc| pc.fork(parent, child));
    }

    /// Snapshot of `tid`'s current clock (empty if the thread is unknown).
    pub fn snapshot(&self, tid: ThreadId) -> ClockSnapshot<ThreadId> {
        self.tls
            .get(tid)
            .map(|c| c.snapshot())
            .unwrap_or_default()
    }

    /// Whether the current clocks of two threads are ordered (one thread's
    /// knowledge dominates the other's) — the online analogue of the §4.1
    /// pruning test.
    pub fn ordered(&self, a: ThreadId, b: ThreadId) -> bool {
        self.snapshot(a).order(&self.snapshot(b)).is_ordered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_chain_orders_ancestors() {
        let mut t = ClockTracker::new();
        t.on_fork(ThreadId(0), ThreadId(1));
        t.on_fork(ThreadId(1), ThreadId(2));
        // Snapshots taken now: the leaf knows everything its ancestors did
        // at fork time, so sibling-free chains compare as ordered.
        assert!(!t.snapshot(ThreadId(0)).is_empty());
        assert!(!t.snapshot(ThreadId(2)).is_empty());
    }

    #[test]
    fn siblings_are_concurrent() {
        let mut t = ClockTracker::new();
        t.on_fork(ThreadId(0), ThreadId(1));
        t.on_fork(ThreadId(0), ThreadId(2));
        assert!(!t.ordered(ThreadId(1), ThreadId(2)));
    }

    #[test]
    fn unknown_threads_have_empty_clocks() {
        let t = ClockTracker::new();
        assert!(t.snapshot(ThreadId(9)).is_empty());
    }
}
