//! WaffleTSV: the preparation-run design applied to thread-safety
//! violations (an §8-style extension).
//!
//! TSVD identifies candidates online and injects fixed 100 ms delays;
//! this policy instead consumes a [`TsvPlan`] from a delay-free run and
//! injects the *measured gap* at each candidate call — aiming the delayed
//! call's execution window directly at its partner's (the Fig. 2
//! atomicity window), with probability decay across runs.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use waffle_analysis::tsv::TsvPlan;
use waffle_mem::AccessKind;
use waffle_sim::{AccessCtx, AccessRecord, Monitor, PreAction, SimTime};
use waffle_telemetry::{RunJournal, RunTelemetry};

use crate::decay::DecayState;

/// Plan-guided TSV delay injection.
#[derive(Debug)]
pub struct WaffleTsvPolicy {
    plan: TsvPlan,
    decay: DecayState,
    rng: SmallRng,
    telemetry: RunTelemetry,
}

impl WaffleTsvPolicy {
    /// Creates a policy for one detection run.
    pub fn new(plan: TsvPlan, decay: DecayState, seed: u64) -> Self {
        Self {
            plan,
            decay,
            rng: SmallRng::seed_from_u64(seed),
            telemetry: RunTelemetry::counters_only(),
        }
    }

    /// Extracts the evolved decay state.
    pub fn into_decay(self) -> DecayState {
        self.decay
    }

    /// Delays injected this run.
    pub fn injected(&self) -> u64 {
        self.telemetry.journal().counters.injected
    }

    /// Turns per-decision event journaling on or off (counters stay on).
    pub fn record_events(&mut self, on: bool) {
        self.telemetry.set_events(on);
    }

    /// Takes this run's finished telemetry journal.
    pub fn take_journal(&mut self) -> RunJournal {
        self.telemetry.take_journal()
    }
}

impl Monitor for WaffleTsvPolicy {
    fn instr_overhead(&self, kind: AccessKind) -> SimTime {
        if kind.is_tsv() {
            SimTime::from_us(1)
        } else {
            SimTime::ZERO
        }
    }

    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        if !ctx.kind.is_tsv() || !self.plan.is_delay_site(ctx.site) {
            return PreAction::Proceed;
        }
        let len = self.plan.delay_for(ctx.site);
        if len == SimTime::ZERO {
            return PreAction::Proceed;
        }
        let permille = self.decay.permille(ctx.site);
        if !self.decay.roll(ctx.site, &mut self.rng) {
            self.telemetry
                .skipped_probability(ctx.site, ctx.thread, ctx.time, permille);
            return PreAction::Proceed;
        }
        self.decay.record_injection(ctx.site);
        self.telemetry
            .injected(ctx.site, ctx.thread, ctx.time, len, permille);
        self.telemetry
            .decay_step(ctx.site, ctx.thread, ctx.time, self.decay.permille(ctx.site));
        PreAction::Delay(len)
    }

    fn on_access_post(&mut self, rec: &AccessRecord) {
        let overhead = Monitor::instr_overhead(self, rec.kind);
        self.telemetry.instrumented(overhead);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_analysis::tsv::analyze_tsv;
    use waffle_sim::time::{ms, us};
    use waffle_sim::{SimConfig, Simulator, Workload, WorkloadBuilder};
    use waffle_trace::TraceRecorder;

    /// Two calls 30 ms apart with 1 ms windows: TSVD's fixed 100 ms delay
    /// relies on trap semantics; WaffleTSV's planned 30 ms delay lands the
    /// execution windows directly on each other.
    fn workload() -> Workload {
        let mut b = WorkloadBuilder::new("wtsv");
        let dict = b.object("dict");
        let started = b.event("s");
        let worker = b.script("worker", move |s| {
            s.wait(started)
                .pad(ms(1))
                .unsafe_call(dict, "Worker.Add:3", ms(1));
        });
        let main = b.script("main", move |s| {
            s.init(dict, "M.ctor:1", us(20))
                .fork(worker)
                .signal(started)
                .pad(ms(31))
                .unsafe_call(dict, "Main.Get:7", ms(1))
                .join_children();
        });
        b.main(main);
        b.build()
    }

    #[test]
    fn planned_gap_delay_forces_the_overlap_in_one_detection_run() {
        let w = workload();
        let mut rec = TraceRecorder::with_overhead(&w, SimTime::ZERO);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        let plan = analyze_tsv(&rec.into_trace(), ms(100), ms(1));
        assert_eq!(plan.candidates.len(), 1);
        let mut policy = WaffleTsvPolicy::new(plan, DecayState::default(), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        assert!(
            !r.tsv_violations.is_empty(),
            "planned delay must collide the windows (injected {})",
            policy.injected()
        );
        // The injected delay is the measured 30ms gap, not a fixed 100ms.
        assert_eq!(r.delays.len(), 1);
        assert!(r.delays[0].dur < ms(35) && r.delays[0].dur > ms(25));
    }

    #[test]
    fn policy_ignores_mem_order_sites() {
        let w = workload();
        let mut rec = TraceRecorder::with_overhead(&w, SimTime::ZERO);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        let plan = analyze_tsv(&rec.into_trace(), ms(100), ms(1));
        let mut policy = WaffleTsvPolicy::new(plan, DecayState::default(), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(1), &mut policy);
        for d in &r.delays {
            assert_ne!(w.sites.name(d.site), "M.ctor:1");
        }
    }
}
