//! Naive baselines from the pre-TSVD literature (Table 1's left columns).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use waffle_mem::SiteId;
use waffle_sim::{AccessCtx, Monitor, PreAction, SimTime};

/// One delay per run at a single sampled candidate location — the
/// RaceFuzzer/CTrigger-style strategy (§4.4 calls it the "naïve solution"
/// to interference: it avoids all overlap but needs many runs).
#[derive(Debug)]
pub struct SingleDelayPolicy {
    targets: Vec<SiteId>,
    chosen: Option<SiteId>,
    delay: SimTime,
    fired: bool,
}

impl SingleDelayPolicy {
    /// Creates a policy that, this run, delays one site sampled from
    /// `targets` (typically the plan's delay sites).
    pub fn new(targets: Vec<SiteId>, delay: SimTime, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let chosen = if targets.is_empty() {
            None
        } else {
            Some(targets[rng.gen_range(0..targets.len())])
        };
        Self {
            targets,
            chosen,
            delay,
            fired: false,
        }
    }

    /// The site sampled for this run.
    pub fn chosen(&self) -> Option<SiteId> {
        self.chosen
    }

    /// All sites the policy samples from.
    pub fn targets(&self) -> &[SiteId] {
        &self.targets
    }
}

impl Monitor for SingleDelayPolicy {
    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        if !self.fired && Some(ctx.site) == self.chosen {
            self.fired = true;
            return PreAction::Delay(self.delay);
        }
        PreAction::Proceed
    }
}

/// Random sleeping: delay any instrumented access with a small fixed
/// probability, no analysis at all (the DataCollider-style lower bound).
#[derive(Debug)]
pub struct RandomSleepPolicy {
    /// Injection probability in per-mille.
    permille: u32,
    delay: SimTime,
    rng: SmallRng,
    injected: u64,
}

impl RandomSleepPolicy {
    /// Creates a policy injecting `delay` with probability
    /// `permille`/1000 at every instrumented access.
    pub fn new(permille: u32, delay: SimTime, seed: u64) -> Self {
        Self {
            permille,
            delay,
            rng: SmallRng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// Delays injected this run.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl Monitor for RandomSleepPolicy {
    fn on_access_pre(&mut self, _ctx: &AccessCtx<'_>) -> PreAction {
        if self.rng.gen_range(0..1000) < self.permille {
            self.injected += 1;
            return PreAction::Delay(self.delay);
        }
        PreAction::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{SimConfig, Simulator, WorkloadBuilder};

    fn small_workload() -> waffle_sim::Workload {
        let mut b = WorkloadBuilder::new("base");
        let o = b.object("o");
        let main = b.script("main", move |s| {
            s.init(o, "a", SimTime::from_us(10))
                .use_(o, "b", SimTime::from_us(10))
                .use_(o, "c", SimTime::from_us(10))
                .dispose(o, "d", SimTime::from_us(10));
        });
        b.main(main);
        b.build()
    }

    #[test]
    fn single_delay_fires_exactly_once() {
        let w = small_workload();
        let site = w.sites.lookup("b").unwrap();
        let mut p = SingleDelayPolicy::new(vec![site], SimTime::from_ms(1), 3);
        assert_eq!(p.chosen(), Some(site));
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut p);
        assert_eq!(r.delays.len(), 1);
        assert_eq!(r.delays[0].site, site);
    }

    #[test]
    fn single_delay_with_no_targets_is_inert() {
        let w = small_workload();
        let mut p = SingleDelayPolicy::new(vec![], SimTime::from_ms(1), 3);
        assert!(p.chosen().is_none());
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut p);
        assert!(r.delays.is_empty());
    }

    #[test]
    fn random_sleep_rates_scale_with_probability() {
        let w = small_workload();
        let mut never = RandomSleepPolicy::new(0, SimTime::from_ms(1), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut never);
        assert_eq!(r.delays.len(), 0);
        let mut always = RandomSleepPolicy::new(1000, SimTime::from_ms(1), 1);
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut always);
        assert_eq!(r.delays.len(), 4);
        assert_eq!(always.injected(), 4);
    }
}
