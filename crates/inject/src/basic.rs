//! WaffleBasic: the straight adaptation of TSVD to MemOrder bugs (§3).
//!
//! One policy does everything in the same run: near-miss candidate
//! identification, happens-before inference (pair removal when an injected
//! delay propagates through synchronization to the partner location), and
//! injection of fixed 100 ms delays gated by probability decay — with no
//! coordination between parallel delays, which is exactly the interference
//! weakness §3.3/§4.4 analyzes.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, SiteId};
use waffle_sim::{AccessCtx, AccessRecord, Monitor, PreAction, SimTime, ThreadId};
use waffle_telemetry::{RunJournal, RunTelemetry};

use crate::decay::DecayState;
use crate::recent::{RecentAccess, RecentWindow};

/// The cross-run state of WaffleBasic: candidate pairs and decay
/// probabilities (both persist between detection runs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BasicState {
    /// Candidate pairs: delay location → partner locations.
    pub candidates: BTreeMap<SiteId, BTreeSet<SiteId>>,
    /// Pairs removed by happens-before inference. Tombstoned so the
    /// near-miss heuristic does not immediately re-admit them (removal
    /// from `S` is permanent, §2).
    pub removed: BTreeSet<(SiteId, SiteId)>,
    /// Baseline arrival time (µs) of each pair's ℓ2 first dynamic
    /// instance, observed in a run with no delay yet injected at ℓ1 —
    /// the reference the timestamp-shift inference compares against.
    pub tau2_baseline_us: BTreeMap<SiteId, BTreeMap<SiteId, u64>>,
    /// Probability decay state.
    pub decay: DecayState,
}

impl BasicState {
    /// Serializes the state for the next run; errors propagate to the
    /// caller instead of aborting the campaign.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a persisted state.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Number of distinct delay locations currently in `S`.
    pub fn delay_sites(&self) -> usize {
        self.candidates.len()
    }
}

/// Per-run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicRunStats {
    /// Delays injected this run.
    pub injected: u64,
    /// Pairs added to `S` this run.
    pub pairs_added: u64,
    /// Pairs removed by happens-before inference this run.
    pub pairs_removed: u64,
}

#[derive(Debug, Clone, Copy)]
struct OwnDelay {
    site: SiteId,
    thread: ThreadId,
    start: SimTime,
    end: SimTime,
}

/// The WaffleBasic policy (one run). Construct per run with the persisted
/// [`BasicState`]; extract the evolved state with
/// [`into_state`](WaffleBasicPolicy::into_state) afterwards.
#[derive(Debug)]
pub struct WaffleBasicPolicy {
    state: BasicState,
    fixed_delay: SimTime,
    rng: SmallRng,
    window: RecentWindow,
    own_delays: Vec<OwnDelay>,
    stats: BasicRunStats,
    telemetry: RunTelemetry,
}

impl WaffleBasicPolicy {
    /// The fixed delay length (100 ms, exactly as in TSVD, §3.2).
    pub const FIXED_DELAY: SimTime = SimTime::from_ms(100);
    /// The near-miss window δ (100 ms, §6.1).
    pub const DELTA: SimTime = SimTime::from_ms(100);

    /// Creates a policy for one run.
    pub fn new(state: BasicState, seed: u64) -> Self {
        Self::with_params(state, seed, Self::FIXED_DELAY, Self::DELTA)
    }

    /// Creates a policy with explicit delay length and window (used by the
    /// delay-length sensitivity experiments of §4.3).
    pub fn with_params(state: BasicState, seed: u64, fixed_delay: SimTime, delta: SimTime) -> Self {
        Self {
            state,
            fixed_delay,
            rng: SmallRng::seed_from_u64(seed),
            window: RecentWindow::new(delta),
            own_delays: Vec::new(),
            stats: BasicRunStats::default(),
            telemetry: RunTelemetry::counters_only(),
        }
    }

    /// Extracts the evolved cross-run state.
    pub fn into_state(self) -> BasicState {
        self.state
    }

    /// Run statistics. The injection count is read from the telemetry
    /// counters (the single source of truth).
    pub fn stats(&self) -> BasicRunStats {
        BasicRunStats {
            injected: self.telemetry.journal().counters.injected,
            ..self.stats
        }
    }

    /// Turns per-decision event journaling on or off (counters stay on).
    pub fn record_events(&mut self, on: bool) {
        self.telemetry.set_events(on);
    }

    /// Takes this run's finished telemetry journal.
    pub fn take_journal(&mut self) -> RunJournal {
        self.telemetry.take_journal()
    }

    fn remove_pair(&mut self, l1: SiteId, l2: SiteId) -> bool {
        if let Some(partners) = self.state.candidates.get_mut(&l1) {
            if partners.remove(&l2) {
                self.state.removed.insert((l1, l2));
                if partners.is_empty() {
                    self.state.candidates.remove(&l1);
                }
                return true;
            }
        }
        false
    }

    /// Happens-before inference (§2, §3.1): a delay injected before ℓ1 that
    /// shows up as a proportional slowdown before ℓ2 in the other thread
    /// implies a likely ℓ1 → ℓ2 ordering; the pair is removed from `S`.
    ///
    /// Two propagation signals are checked, both used by the real tools:
    ///
    /// 1. the current thread was *blocked* on synchronization for an
    ///    interval substantially overlapping a delay at ℓ1;
    /// 2. ℓ2's arrival time shifted by at least half the delay relative to
    ///    its delay-free baseline (the timestamp signal — which, exactly as
    ///    §4.1 observes, cannot distinguish a real ordering from the effect
    ///    of an unrelated overlapping delay, so dense injection makes it
    ///    unreliable).
    fn infer_happens_before(&mut self, ctx: &AccessCtx<'_>) {
        let mut removed = 0;
        // Signal 1: blocked-interval overlap.
        if let Some(block) = ctx.last_block.filter(|b| !b.is_empty()).copied() {
            let hits: Vec<SiteId> = self
                .own_delays
                .iter()
                .filter(|d| d.thread != block.thread)
                .filter(|d| {
                    let lo = d.start.max(block.start);
                    let hi = d.end.min(block.end);
                    hi > lo && (hi - lo) * 2 >= (d.end - d.start)
                })
                .map(|d| d.site)
                .collect();
            // §4.1: when several delays overlap the observed slowdown, the
            // inference "cannot reliably determine whether the slowdown in
            // Thread 2 is caused by a synchronization operation or is
            // solely the effect of the second delay" — so it only acts on
            // an unambiguous, single-delay explanation.
            if hits.len() == 1
                && self.remove_pair(hits[0], ctx.site) {
                    removed += 1;
                }
        }
        // Signal 2: timestamp shift against the delay-free baseline (first
        // dynamic instance only, to keep the reference stable). The
        // expected arrival accounts for delays injected in ℓ2's *own*
        // thread — those shift ℓ2 trivially and are not propagation.
        if ctx.dyn_index == 0 {
            let own_shift_us: u64 = self
                .own_delays
                .iter()
                .filter(|d| d.thread == ctx.thread && d.start < ctx.time)
                .map(|d| (d.end - d.start).as_us())
                .sum();
            let l1s: Vec<(SiteId, SimTime)> = self
                .own_delays
                .iter()
                .filter(|d| d.thread != ctx.thread && d.start < ctx.time)
                .map(|d| (d.site, d.end - d.start))
                .collect();
            // Same ambiguity rule for the timestamp signal: with several
            // candidate delays the shift cannot be attributed.
            let l1s = if l1s.len() == 1 { l1s } else { Vec::new() };
            for (l1, dur) in l1s {
                let in_s = self
                    .state
                    .candidates
                    .get(&l1)
                    .is_some_and(|p| p.contains(&ctx.site));
                if !in_s {
                    continue;
                }
                let base = self
                    .state
                    .tau2_baseline_us
                    .get(&l1)
                    .and_then(|m| m.get(&ctx.site))
                    .copied();
                if let Some(base) = base {
                    // Floor at 500µs: shifts below measurement precision
                    // cannot be attributed to a delay.
                    let thresh = (dur.as_us() / 2).max(500);
                    if ctx.time.as_us() >= base + own_shift_us + thresh
                        && self.remove_pair(l1, ctx.site)
                    {
                        removed += 1;
                    }
                }
            }
        }
        self.stats.pairs_removed += removed;
    }

    /// Records the delay-free baseline arrival time of ℓ2 for each pair it
    /// participates in (only when no delay was injected at ℓ1 this run).
    fn update_baselines(&mut self, ctx: &AccessCtx<'_>) {
        if ctx.dyn_index != 0 {
            return;
        }
        let l1s: Vec<SiteId> = self
            .state
            .candidates
            .iter()
            .filter(|(_, partners)| partners.contains(&ctx.site))
            .map(|(l1, _)| *l1)
            .collect();
        for l1 in l1s {
            let delayed_this_run = self
                .own_delays
                .iter()
                .any(|d| d.site == l1 && d.start < ctx.time);
            if !delayed_this_run {
                self.state
                    .tau2_baseline_us
                    .entry(l1)
                    .or_default()
                    .entry(ctx.site)
                    .or_insert(ctx.time.as_us());
            }
        }
    }

    /// Near-miss identification (§3.1): executed when this access plays the
    /// role of ℓ2.
    fn identify(&mut self, ctx: &AccessCtx<'_>) {
        let wanted = match ctx.kind {
            AccessKind::Use => AccessKind::Init,
            AccessKind::Dispose => AccessKind::Use,
            _ => return,
        };
        let pairs: Vec<SiteId> = self
            .window
            .others(ctx.obj, ctx.thread, ctx.time)
            .filter(|a| a.kind == wanted)
            .map(|a| a.site)
            .collect();
        for l1 in pairs {
            if self.state.removed.contains(&(l1, ctx.site)) {
                continue;
            }
            let partners = self.state.candidates.entry(l1).or_default();
            if partners.insert(ctx.site) {
                self.stats.pairs_added += 1;
            }
        }
    }
}

impl Monitor for WaffleBasicPolicy {
    fn instr_overhead(&self, _kind: AccessKind) -> SimTime {
        // Online identification does more per-access work than Waffle's
        // plan lookup (history scan + candidate update).
        SimTime::from_us(5)
    }

    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        if !ctx.kind.is_mem_order() {
            return PreAction::Proceed;
        }
        self.infer_happens_before(ctx);
        self.identify(ctx);
        self.update_baselines(ctx);
        // Injection: delay candidate locations with decaying probability;
        // parallel delays are allowed (no coordination).
        if self.state.candidates.contains_key(&ctx.site) {
            let permille = self.state.decay.permille(ctx.site);
            if self.state.decay.roll(ctx.site, &mut self.rng) {
                self.state.decay.record_injection(ctx.site);
                self.telemetry
                    .injected(ctx.site, ctx.thread, ctx.time, self.fixed_delay, permille);
                self.telemetry.decay_step(
                    ctx.site,
                    ctx.thread,
                    ctx.time,
                    self.state.decay.permille(ctx.site),
                );
                self.own_delays.push(OwnDelay {
                    site: ctx.site,
                    thread: ctx.thread,
                    start: ctx.time,
                    end: ctx.time + self.fixed_delay,
                });
                return PreAction::Delay(self.fixed_delay);
            }
            self.telemetry
                .skipped_probability(ctx.site, ctx.thread, ctx.time, permille);
        }
        PreAction::Proceed
    }

    fn on_access_post(&mut self, rec: &AccessRecord) {
        let overhead = Monitor::instr_overhead(self, rec.kind);
        self.telemetry.instrumented(overhead);
        if !rec.kind.is_mem_order() {
            return;
        }
        self.window.push(
            rec.obj,
            RecentAccess {
                time: rec.time,
                site: rec.site,
                kind: rec.kind,
                thread: rec.thread,
                clock: Default::default(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{SimConfig, Simulator, Workload, WorkloadBuilder};

    /// A recurring use-after-free race: `rounds` iterations of worker-uses /
    /// main-disposes on fresh objects, so the candidate identified in round
    /// k can be delayed in round k+1 of the *same* run.
    fn recurring_uaf(rounds: u32) -> Workload {
        let mut b = WorkloadBuilder::new("uaf-recurring");
        let objs = b.objects("conn", rounds);
        let started = b.event("started");
        let objs_w = objs.clone();
        let worker = b.script("worker", move |s| {
            s.wait(started);
            for o in &objs_w {
                s.compute(SimTime::from_us(200))
                    .use_(*o, "Worker.poll:11", SimTime::from_us(10))
                    .compute(SimTime::from_us(790));
            }
        });
        let objs_m = objs.clone();
        let main = b.script("main", move |s| {
            for o in &objs_m {
                s.init(*o, "Main.ctor:2", SimTime::from_us(5));
            }
            s.fork(worker).signal(started);
            for o in &objs_m {
                s.compute(SimTime::from_us(1_000))
                    .dispose(*o, "Main.cleanup:8", SimTime::from_us(5));
            }
            s.join_children();
        });
        b.main(main);
        b.build()
    }

    #[test]
    fn online_identification_then_injection_exposes_bug_in_one_run() {
        let w = recurring_uaf(4);
        // Delay-free: clean.
        let r = Simulator::run(
            &w,
            SimConfig::with_seed(0).deterministic(),
            &mut waffle_sim::NullMonitor,
        );
        assert!(!r.manifested());
        // WaffleBasic: round 1 identifies {Worker.poll, Main.cleanup}; a
        // later round's use gets the 100ms delay and lands after the
        // dispose.
        let mut policy = WaffleBasicPolicy::new(BasicState::default(), 7);
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut policy);
        assert!(r.manifested(), "delays: {:?}", r.delays.len());
        assert!(policy.stats().pairs_added >= 1);
        assert!(policy.stats().injected >= 1);
        assert_eq!(r.delays[0].dur, WaffleBasicPolicy::FIXED_DELAY);
    }

    #[test]
    fn candidates_persist_across_runs() {
        let w = recurring_uaf(1);
        let mut policy = WaffleBasicPolicy::new(BasicState::default(), 7);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut policy);
        let state = policy.into_state();
        // Both the UBI pair (init → use) and the UAF pair (use → dispose)
        // were identified: two delay locations.
        assert_eq!(state.delay_sites(), 2);
        // Round-trip through the persistence format.
        let state = BasicState::from_json(&state.to_json().unwrap()).unwrap();
        // Second run starts with the candidate already known: the single
        // use instance gets delayed and the bug manifests.
        let mut policy = WaffleBasicPolicy::new(state, 7);
        let r = Simulator::run(&w, SimConfig::with_seed(1).deterministic(), &mut policy);
        assert!(r.manifested());
    }

    #[test]
    fn happens_before_inference_removes_synchronized_pairs() {
        // Worker uses the object, signals, main waits for the event and
        // disposes right after: the pair is a near-miss but is ordered by
        // the event. A delay at the use propagates into main's wait, so the
        // inference must remove the pair.
        let mut b = WorkloadBuilder::new("hb");
        let o = b.object("o");
        let started = b.event("started");
        let done = b.event("done");
        let worker = b.script("worker", move |s| {
            s.wait(started)
                .use_(o, "W.use:1", SimTime::from_us(10))
                .signal(done);
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(5))
                .fork(worker)
                .signal(started)
                .wait(done)
                .dispose(o, "M.dispose:9", SimTime::from_us(5))
                .join_children();
        });
        b.main(main);
        let w = b.build();
        // Run 1: identify the pair. Run 2: inject at the use; the delay
        // propagates through the event into main's block before the
        // dispose; the inference removes the pair. Run 3: no candidates.
        let mut state = BasicState::default();
        for run in 0..3u64 {
            let mut policy = WaffleBasicPolicy::new(state, run);
            let r = Simulator::run(&w, SimConfig::with_seed(run).deterministic(), &mut policy);
            assert!(!r.manifested(), "ordered pair must never manifest");
            let stats = policy.stats();
            state = policy.into_state();
            match run {
                0 => assert!(stats.pairs_added >= 1),
                1 => {
                    assert!(stats.injected >= 1);
                    assert!(
                        stats.pairs_removed >= 1,
                        "delay propagation must trigger pair removal"
                    );
                    assert_eq!(
                        state.delay_sites(),
                        0,
                        "all pairs are ordered and must be inferred away: {:?}",
                        state.candidates
                    );
                }
                _ => assert_eq!(stats.injected, 0),
            }
        }
    }

    #[test]
    fn decay_eventually_silences_fruitless_sites() {
        let w = recurring_uaf(1);
        // Make the bug un-exposable by using a tiny delay; the site decays
        // to zero across runs and injections stop.
        let mut state = BasicState::default();
        let mut total_injected = 0;
        for run in 0..30u64 {
            let mut policy = WaffleBasicPolicy::with_params(
                state,
                run,
                SimTime::from_us(10),
                WaffleBasicPolicy::DELTA,
            );
            let r = Simulator::run(&w, SimConfig::with_seed(run).deterministic(), &mut policy);
            assert!(!r.manifested());
            total_injected += policy.stats().injected;
            state = policy.into_state();
        }
        // Two delay sites (the UBI init and the UAF use), each with a decay
        // budget of 10 injections.
        assert!(total_injected <= 20, "injected {total_injected} > decay budget");
        assert!(state.decay.exhausted(
            *state.candidates.keys().next().expect("candidate survives")
        ));
    }
}
