//! The "no preparation run" variant (Table 7, row 2).
//!
//! Keeps as much of Waffle as is possible without a dedicated delay-free
//! run: online near-miss identification with *runtime* vector-clock pruning
//! (the TLS-propagated clocks are available at run time, §4.1), variable
//! delay lengths derived from the gaps observed online (§4.3), and
//! probability decay. What it cannot have is the interference set `I`,
//! which §4.4 derives from the unperturbed trace — so parallel delays go
//! uncoordinated, and the observed gaps themselves are perturbed by the
//! delays already injected (the measurement-interference problem of §4.2).

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, SiteId};
use waffle_sim::{AccessCtx, AccessRecord, Monitor, PreAction, SimTime, ThreadId};
use waffle_telemetry::{RunJournal, RunTelemetry};

use crate::clock_tracker::ClockTracker;
use crate::decay::DecayState;
use crate::recent::{RecentAccess, RecentWindow};

/// Cross-run state for the no-preparation-run variant.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NoPrepState {
    /// Candidate pairs: delay location → partner locations.
    pub candidates: BTreeMap<SiteId, BTreeSet<SiteId>>,
    /// Per-delay-location observed gap maximum (µs), the online analogue
    /// of the plan's delay lengths.
    pub max_gap_us: BTreeMap<SiteId, u64>,
    /// Probability decay state.
    pub decay: DecayState,
}

/// The no-preparation-run policy.
#[derive(Debug)]
pub struct NoPrepPolicy {
    state: NoPrepState,
    alpha_num: u64,
    alpha_den: u64,
    rng: SmallRng,
    window: RecentWindow,
    clocks: ClockTracker,
    telemetry: RunTelemetry,
}

impl NoPrepPolicy {
    /// Creates a policy for one run.
    pub fn new(state: NoPrepState, seed: u64) -> Self {
        Self {
            state,
            alpha_num: 115,
            alpha_den: 100,
            rng: SmallRng::seed_from_u64(seed),
            window: RecentWindow::new(SimTime::from_ms(100)),
            clocks: ClockTracker::new(),
            telemetry: RunTelemetry::counters_only(),
        }
    }

    /// Extracts the evolved cross-run state.
    pub fn into_state(self) -> NoPrepState {
        self.state
    }

    /// Delays injected this run.
    pub fn injected(&self) -> u64 {
        self.telemetry.journal().counters.injected
    }

    /// Turns per-decision event journaling on or off (counters stay on).
    pub fn record_events(&mut self, on: bool) {
        self.telemetry.set_events(on);
    }

    /// Takes this run's finished telemetry journal.
    pub fn take_journal(&mut self) -> RunJournal {
        self.telemetry.take_journal()
    }

    fn identify(&mut self, ctx: &AccessCtx<'_>) {
        let wanted = match ctx.kind {
            AccessKind::Use => AccessKind::Init,
            AccessKind::Dispose => AccessKind::Use,
            _ => return,
        };
        let my_clock = self.clocks.snapshot(ctx.thread);
        let found: Vec<(SiteId, SimTime)> = self
            .window
            .others(ctx.obj, ctx.thread, ctx.time)
            .filter(|a| a.kind == wanted)
            // Online pruning (§4.1, applied at run time): the recorded
            // access carries its thread's clock at access time; skip the
            // pair when that clock is ordered against this thread's
            // current clock.
            .filter(|a| !a.clock.order(&my_clock).is_ordered())
            .map(|a| (a.site, a.time))
            .collect();
        for (l1, t1) in found {
            self.state.candidates.entry(l1).or_default().insert(ctx.site);
            let gap = ctx.time.saturating_sub(t1).as_us();
            let e = self.state.max_gap_us.entry(l1).or_insert(0);
            *e = (*e).max(gap);
        }
    }
}

impl Monitor for NoPrepPolicy {
    fn instr_overhead(&self, _kind: AccessKind) -> SimTime {
        SimTime::from_us(5)
    }

    fn on_fork(&mut self, parent: ThreadId, child: ThreadId, _time: SimTime) {
        self.clocks.on_fork(parent, child);
    }

    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        if !ctx.kind.is_mem_order() {
            return PreAction::Proceed;
        }
        self.identify(ctx);
        if self.state.candidates.contains_key(&ctx.site) {
            let permille = self.state.decay.permille(ctx.site);
            if self.state.decay.roll(ctx.site, &mut self.rng) {
                let gap = self
                    .state
                    .max_gap_us
                    .get(&ctx.site)
                    .copied()
                    .unwrap_or(0);
                let len = SimTime::from_us(gap).scale(self.alpha_num, self.alpha_den);
                if len > SimTime::ZERO {
                    self.state.decay.record_injection(ctx.site);
                    self.telemetry
                        .injected(ctx.site, ctx.thread, ctx.time, len, permille);
                    self.telemetry.decay_step(
                        ctx.site,
                        ctx.thread,
                        ctx.time,
                        self.state.decay.permille(ctx.site),
                    );
                    return PreAction::Delay(len);
                }
            } else {
                self.telemetry
                    .skipped_probability(ctx.site, ctx.thread, ctx.time, permille);
            }
        }
        PreAction::Proceed
    }

    fn on_access_post(&mut self, rec: &AccessRecord) {
        let overhead = Monitor::instr_overhead(self, rec.kind);
        self.telemetry.instrumented(overhead);
        if !rec.kind.is_mem_order() {
            return;
        }
        let clock = self.clocks.snapshot(rec.thread);
        self.window.push(
            rec.obj,
            RecentAccess {
                time: rec.time,
                site: rec.site,
                kind: rec.kind,
                thread: rec.thread,
                clock,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{SimConfig, Simulator, WorkloadBuilder};

    #[test]
    fn noprep_exposes_recurring_bug_with_variable_delay() {
        // Recurring use-after-free: identified in round 1, the use gets a
        // gap-proportional delay in a later round.
        let mut b = WorkloadBuilder::new("noprep");
        let objs = b.objects("conn", 4);
        let started = b.event("s");
        let objs_w = objs.clone();
        let worker = b.script("worker", move |s| {
            s.wait(started);
            for o in &objs_w {
                s.compute(SimTime::from_us(200))
                    .use_(*o, "W.poll:1", SimTime::from_us(10))
                    .compute(SimTime::from_us(790));
            }
        });
        let objs_m = objs.clone();
        let main = b.script("main", move |s| {
            for o in &objs_m {
                s.init(*o, "M.ctor:1", SimTime::from_us(5));
            }
            s.fork(worker).signal(started);
            for o in &objs_m {
                s.compute(SimTime::from_us(1_000))
                    .dispose(*o, "M.free:9", SimTime::from_us(5));
            }
            s.join_children();
        });
        b.main(main);
        let w = b.build();
        let mut state = NoPrepState::default();
        let mut manifested = false;
        for run in 0..5u64 {
            let mut policy = NoPrepPolicy::new(state, run);
            let r = Simulator::run(&w, SimConfig::with_seed(run).deterministic(), &mut policy);
            state = policy.into_state();
            if r.manifested() {
                // The injected delay was gap-proportional, not 100 ms.
                assert!(r.delays.iter().all(|d| d.dur < SimTime::from_ms(100)));
                manifested = true;
                break;
            }
        }
        assert!(manifested, "no-prep variant must expose the recurring bug");
    }

    #[test]
    fn runtime_clock_pruning_skips_fork_ordered_pairs() {
        // Parent inits then forks the child that uses: the online clocks
        // are ordered, so no candidate is admitted.
        let mut b = WorkloadBuilder::new("ordered");
        let o = b.object("o");
        let child = b.script("child", move |s| {
            s.use_(o, "C.use:1", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(5))
                .fork(child)
                .join_children();
        });
        b.main(main);
        let w = b.build();
        let mut policy = NoPrepPolicy::new(NoPrepState::default(), 0);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut policy);
        assert!(policy.into_state().candidates.is_empty());
    }
}
