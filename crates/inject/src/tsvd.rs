//! TSVD: the thread-safety-violation detector of §2, re-implemented as the
//! comparison baseline for Table 2 and the §3.3 overlap measurements.
//!
//! TSVD instruments only thread-unsafe API call sites. Two calls on the
//! same object from different threads within the near-miss window δ form a
//! candidate pair — in *both* directions, since delaying either call can
//! make the execution windows overlap. Delays are fixed-length (100 ms),
//! gated by probability decay; happens-before inference removes pairs whose
//! delays propagate.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, SiteId};
use waffle_sim::{AccessCtx, AccessRecord, Monitor, PreAction, SimTime, ThreadId};
use waffle_telemetry::{RunJournal, RunTelemetry};

use crate::decay::DecayState;
use crate::recent::{RecentAccess, RecentWindow};

/// Cross-run TSVD state (candidates + decay), persisted between runs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TsvdState {
    /// Candidate pairs: delay location → partner locations.
    pub candidates: BTreeMap<SiteId, BTreeSet<SiteId>>,
    /// Pairs removed by happens-before inference (tombstones).
    pub removed: BTreeSet<(SiteId, SiteId)>,
    /// Baseline arrival time (µs) of each pair's ℓ2 first dynamic
    /// instance, from delay-free observations (timestamp-shift inference).
    pub tau2_baseline_us: BTreeMap<SiteId, BTreeMap<SiteId, u64>>,
    /// Probability decay state.
    pub decay: DecayState,
}

impl TsvdState {
    /// Number of distinct delay locations currently in `S`.
    pub fn delay_sites(&self) -> usize {
        self.candidates.len()
    }
}

/// Per-run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TsvdRunStats {
    /// Delays injected this run.
    pub injected: u64,
    /// Pairs added this run.
    pub pairs_added: u64,
    /// Pairs removed by inference this run.
    pub pairs_removed: u64,
}

#[derive(Debug, Clone, Copy)]
struct OwnDelay {
    site: SiteId,
    thread: ThreadId,
    start: SimTime,
    end: SimTime,
}

/// The TSVD policy (one run).
#[derive(Debug)]
pub struct TsvdPolicy {
    state: TsvdState,
    fixed_delay: SimTime,
    rng: SmallRng,
    window: RecentWindow,
    own_delays: Vec<OwnDelay>,
    stats: TsvdRunStats,
    telemetry: RunTelemetry,
}

impl TsvdPolicy {
    /// Fixed delay length (100 ms).
    pub const FIXED_DELAY: SimTime = SimTime::from_ms(100);
    /// Near-miss window δ (100 ms).
    pub const DELTA: SimTime = SimTime::from_ms(100);

    /// Creates a policy for one run.
    pub fn new(state: TsvdState, seed: u64) -> Self {
        Self {
            state,
            fixed_delay: Self::FIXED_DELAY,
            rng: SmallRng::seed_from_u64(seed),
            window: RecentWindow::new(Self::DELTA),
            own_delays: Vec::new(),
            stats: TsvdRunStats::default(),
            telemetry: RunTelemetry::counters_only(),
        }
    }

    /// Extracts the evolved cross-run state.
    pub fn into_state(self) -> TsvdState {
        self.state
    }

    /// Run statistics. The injection count is read from the telemetry
    /// counters (the single source of truth).
    pub fn stats(&self) -> TsvdRunStats {
        TsvdRunStats {
            injected: self.telemetry.journal().counters.injected,
            ..self.stats
        }
    }

    /// Turns per-decision event journaling on or off (counters stay on).
    pub fn record_events(&mut self, on: bool) {
        self.telemetry.set_events(on);
    }

    /// Takes this run's finished telemetry journal.
    pub fn take_journal(&mut self) -> RunJournal {
        self.telemetry.take_journal()
    }

    fn remove_pair(&mut self, l1: SiteId, l2: SiteId) -> bool {
        if let Some(partners) = self.state.candidates.get_mut(&l1) {
            if partners.remove(&l2) {
                self.state.removed.insert((l1, l2));
                if partners.is_empty() {
                    self.state.candidates.remove(&l1);
                }
                return true;
            }
        }
        false
    }

    fn infer_happens_before(&mut self, ctx: &AccessCtx<'_>) {
        let mut removed = 0;
        // Blocked-interval propagation.
        if let Some(block) = ctx.last_block.filter(|b| !b.is_empty()).copied() {
            let hits: Vec<SiteId> = self
                .own_delays
                .iter()
                .filter(|d| d.thread != ctx.thread)
                .filter(|d| {
                    let lo = d.start.max(block.start);
                    let hi = d.end.min(block.end);
                    hi > lo && (hi - lo) * 2 >= (d.end - d.start)
                })
                .map(|d| d.site)
                .collect();
            // §4.1: overlapping delays make the inference ambiguous; only
            // a single-delay explanation is acted upon.
            if hits.len() == 1
                && self.remove_pair(hits[0], ctx.site) {
                    removed += 1;
                }
        }
        // Timestamp-shift propagation (first dynamic instance only). The
        // expected arrival accounts for delays injected in ℓ2's *own*
        // thread — those shift ℓ2 trivially and are not propagation.
        if ctx.dyn_index == 0 {
            let own_shift_us: u64 = self
                .own_delays
                .iter()
                .filter(|d| d.thread == ctx.thread && d.start < ctx.time)
                .map(|d| (d.end - d.start).as_us())
                .sum();
            let l1s: Vec<(SiteId, SimTime)> = self
                .own_delays
                .iter()
                .filter(|d| d.thread != ctx.thread && d.start < ctx.time)
                .map(|d| (d.site, d.end - d.start))
                .collect();
            // Same ambiguity rule for the timestamp signal: with several
            // candidate delays the shift cannot be attributed.
            let l1s = if l1s.len() == 1 { l1s } else { Vec::new() };
            for (l1, dur) in l1s {
                let in_s = self
                    .state
                    .candidates
                    .get(&l1)
                    .is_some_and(|p| p.contains(&ctx.site));
                if !in_s {
                    continue;
                }
                let base = self
                    .state
                    .tau2_baseline_us
                    .get(&l1)
                    .and_then(|m| m.get(&ctx.site))
                    .copied();
                if let Some(base) = base {
                    // Floor at 500µs: shifts below measurement precision
                    // cannot be attributed to a delay.
                    let thresh = (dur.as_us() / 2).max(500);
                    if ctx.time.as_us() >= base + own_shift_us + thresh
                        && self.remove_pair(l1, ctx.site)
                    {
                        removed += 1;
                    }
                }
            }
        }
        self.stats.pairs_removed += removed;
    }

    fn update_baselines(&mut self, ctx: &AccessCtx<'_>) {
        if ctx.dyn_index != 0 {
            return;
        }
        let l1s: Vec<SiteId> = self
            .state
            .candidates
            .iter()
            .filter(|(_, partners)| partners.contains(&ctx.site))
            .map(|(l1, _)| *l1)
            .collect();
        for l1 in l1s {
            let delayed_this_run = self
                .own_delays
                .iter()
                .any(|d| d.site == l1 && d.start < ctx.time);
            if !delayed_this_run {
                self.state
                    .tau2_baseline_us
                    .entry(l1)
                    .or_default()
                    .entry(ctx.site)
                    .or_insert(ctx.time.as_us());
            }
        }
    }

    fn identify(&mut self, ctx: &AccessCtx<'_>) {
        let pairs: Vec<SiteId> = self
            .window
            .others(ctx.obj, ctx.thread, ctx.time)
            .filter(|a| a.kind == AccessKind::UnsafeApiCall)
            .map(|a| a.site)
            .collect();
        for other in pairs {
            // Both directions: delaying either call can force the overlap.
            for (l1, l2) in [(other, ctx.site), (ctx.site, other)] {
                if self.state.removed.contains(&(l1, l2)) {
                    continue;
                }
                if self.state.candidates.entry(l1).or_default().insert(l2) {
                    self.stats.pairs_added += 1;
                }
            }
        }
    }
}

impl Monitor for TsvdPolicy {
    fn instr_overhead(&self, kind: AccessKind) -> SimTime {
        // TSVD only instruments thread-unsafe API call sites.
        if kind.is_tsv() {
            SimTime::from_us(2)
        } else {
            SimTime::ZERO
        }
    }

    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        if !ctx.kind.is_tsv() {
            return PreAction::Proceed;
        }
        self.infer_happens_before(ctx);
        self.identify(ctx);
        self.update_baselines(ctx);
        if self.state.candidates.contains_key(&ctx.site) {
            let permille = self.state.decay.permille(ctx.site);
            if self.state.decay.roll(ctx.site, &mut self.rng) {
                self.state.decay.record_injection(ctx.site);
                self.telemetry
                    .injected(ctx.site, ctx.thread, ctx.time, self.fixed_delay, permille);
                self.telemetry.decay_step(
                    ctx.site,
                    ctx.thread,
                    ctx.time,
                    self.state.decay.permille(ctx.site),
                );
                self.own_delays.push(OwnDelay {
                    site: ctx.site,
                    thread: ctx.thread,
                    start: ctx.time,
                    end: ctx.time + self.fixed_delay,
                });
                return PreAction::Delay(self.fixed_delay);
            }
            self.telemetry
                .skipped_probability(ctx.site, ctx.thread, ctx.time, permille);
        }
        PreAction::Proceed
    }

    fn on_access_post(&mut self, rec: &AccessRecord) {
        let overhead = Monitor::instr_overhead(self, rec.kind);
        self.telemetry.instrumented(overhead);
        if !rec.kind.is_tsv() {
            return;
        }
        self.window.push(
            rec.obj,
            RecentAccess {
                time: rec.time,
                site: rec.site,
                kind: rec.kind,
                thread: rec.thread,
                clock: Default::default(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{SimConfig, Simulator, Workload, WorkloadBuilder};

    /// Two threads each make `rounds` thread-unsafe calls on the same
    /// dictionary, offset so the windows never overlap without delays.
    fn tsv_workload(rounds: u32) -> Workload {
        let mut b = WorkloadBuilder::new("tsv");
        let dict = b.object("dict");
        let started = b.event("started");
        let worker = b.script("worker", move |s| {
            s.wait(started);
            s.repeat(rounds, |s, _| {
                s.compute(SimTime::from_us(500))
                    .unsafe_call(dict, "Worker.Add:3", SimTime::from_us(50));
            });
        });
        let main = b.script("main", move |s| {
            s.init(dict, "Main.ctor:1", SimTime::from_us(5))
                .fork(worker)
                .signal(started);
            s.repeat(rounds, |s, _| {
                s.compute(SimTime::from_us(200))
                    .unsafe_call(dict, "Main.Add:7", SimTime::from_us(50))
                    .compute(SimTime::from_us(350));
            });
            s.join_children();
        });
        b.main(main);
        b.build()
    }

    #[test]
    fn delay_free_run_has_no_violation_but_near_misses() {
        let w = tsv_workload(3);
        let r = Simulator::run(
            &w,
            SimConfig::with_seed(0).deterministic(),
            &mut waffle_sim::NullMonitor,
        );
        assert!(r.tsv_violations.is_empty());
    }

    #[test]
    fn tsvd_exposes_overlap_within_one_run() {
        let w = tsv_workload(6);
        let mut policy = TsvdPolicy::new(TsvdState::default(), 3);
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut policy);
        assert!(
            !r.tsv_violations.is_empty(),
            "injected={} pairs={}",
            policy.stats().injected,
            policy.stats().pairs_added
        );
        assert!(policy.stats().injected >= 1);
    }

    #[test]
    fn tsvd_ignores_mem_order_accesses() {
        let mut b = WorkloadBuilder::new("mo-only");
        let o = b.object("o");
        let started = b.event("s");
        let worker = b.script("worker", move |s| {
            s.wait(started).use_(o, "W.use:1", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(5))
                .fork(worker)
                .signal(started)
                .compute(SimTime::from_us(500))
                .dispose(o, "M.dispose:2", SimTime::from_us(5))
                .join_children();
        });
        b.main(main);
        let w = b.build();
        let mut policy = TsvdPolicy::new(TsvdState::default(), 0);
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut policy);
        assert!(r.delays.is_empty());
        assert_eq!(policy.into_state().delay_sites(), 0);
    }
}
