//! Property tests for the injection policies.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_inject::{DecayConfig, DecayState, WaffleBasicPolicy, WafflePolicy};
use waffle_mem::SiteId;
use waffle_sim::time::{ms, us};
use waffle_sim::{SimConfig, SimTime, Simulator, Workload, WorkloadBuilder};
use waffle_trace::TraceRecorder;

proptest! {
    /// Decay never rises, never goes below zero, and exhausts in exactly
    /// ⌈initial/λ⌉ injections.
    #[test]
    fn decay_is_monotone_and_bounded(
        initial in 1u32..1000,
        lambda in 1u32..500,
        injections in 0u32..40,
    ) {
        let mut d = DecayState::new(DecayConfig {
            initial_permille: initial,
            lambda_permille: lambda,
        });
        let site = SiteId(1);
        let mut prev = d.permille(site);
        prop_assert_eq!(prev, initial);
        for _ in 0..injections {
            d.record_injection(site);
            let cur = d.permille(site);
            prop_assert!(cur <= prev);
            prev = cur;
        }
        let exhausted_at = initial.div_ceil(lambda);
        prop_assert_eq!(d.exhausted(site), injections >= exhausted_at);
    }

    /// A roll at probability 0 never fires; at ≥1000 it always fires.
    #[test]
    fn roll_extremes_are_deterministic(seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let zero = {
            let mut d = DecayState::new(DecayConfig {
                initial_permille: 100,
                lambda_permille: 100,
            });
            d.record_injection(SiteId(0));
            d
        };
        prop_assert!(!zero.roll(SiteId(0), &mut rng));
        let full = DecayState::default();
        prop_assert!(full.roll(SiteId(9), &mut rng));
    }

    /// The Waffle policy only ever delays the plan's candidate locations,
    /// and never injects more than the decay budget per site.
    #[test]
    fn waffle_policy_respects_plan_and_budget(
        gap_ms in 2u64..40,
        seed in 0u64..200,
    ) {
        let w = racy(gap_ms);
        let plan = plan_for(&w);
        let delay_sites: std::collections::HashSet<SiteId> =
            plan.delay_sites().collect();
        let mut decay = DecayState::default();
        let mut total: std::collections::HashMap<SiteId, u32> = Default::default();
        for run in 0..12u64 {
            let mut p = WafflePolicy::new(plan.clone(), decay, seed + run);
            let r = Simulator::run(&w, SimConfig::with_seed(seed + run), &mut p);
            decay = p.into_decay();
            for d in &r.delays {
                prop_assert!(
                    delay_sites.contains(&d.site),
                    "delayed non-candidate {}",
                    d.site
                );
                *total.entry(d.site).or_default() += 1;
            }
            if r.manifested() {
                break;
            }
        }
        for (site, n) in total {
            prop_assert!(n <= 7, "site {site} injected {n} times past the budget");
        }
    }

    /// WaffleBasic's candidate set only contains sites that actually
    /// executed, and the delay ledger matches its own injection counter.
    #[test]
    fn basic_policy_bookkeeping_is_consistent(seed in 0u64..200) {
        let w = racy(10);
        let mut p = WaffleBasicPolicy::new(Default::default(), seed);
        let r = Simulator::run(&w, SimConfig::with_seed(seed), &mut p);
        let stats = p.stats();
        let state = p.into_state();
        prop_assert_eq!(stats.injected as usize, r.delays.len());
        for (l1, partners) in &state.candidates {
            prop_assert!(r.site_dyn_counts.contains_key(l1));
            for l2 in partners {
                prop_assert!(r.site_dyn_counts.contains_key(l2));
            }
        }
    }
}

/// A small racy workload parameterized by its gap.
fn racy(gap_ms: u64) -> Workload {
    let mut b = WorkloadBuilder::new("prop.racy");
    let o = b.object("o");
    let started = b.event("s");
    let worker = b.script("worker", move |s| {
        s.wait(started).pad(ms(3)).use_(o, "W.use:1", us(30));
    });
    let main = b.script("main", move |s| {
        s.init(o, "M.init:1", us(30))
            .fork(worker)
            .signal(started)
            .pad(ms(3) + ms(gap_ms))
            .dispose(o, "M.dispose:9", us(30))
            .join_children();
    });
    b.main(main);
    b.build()
}

fn plan_for(w: &Workload) -> waffle_analysis::Plan {
    let mut rec = TraceRecorder::with_overhead(w, SimTime::ZERO);
    let _ = Simulator::run(w, SimConfig::with_seed(0), &mut rec);
    analyze(&rec.into_trace(), &AnalyzerConfig::default())
}
