//! Bug reports and detection outcomes.

use serde::value::Value;
use serde::{Deserialize, Serialize};
use waffle_mem::{NullRefKind, ObjectId};
use waffle_sim::{MemoryModel, RunResult, SimTime, ThreadContext};
use waffle_telemetry::RunJournal;

/// A confirmed MemOrder bug, reported only after it manifested under
/// injected delays (zero false positives by construction, §6.4).
#[derive(Debug, Clone)]
pub struct BugReport {
    /// Workload (test input) that exposed the bug.
    pub workload: String,
    /// Bug class of the manifestation.
    pub kind: NullRefKind,
    /// Name of the faulting site.
    pub site: String,
    /// The object whose reference was NULL.
    pub obj: ObjectId,
    /// Virtual time of the fault within the exposing run.
    pub time: SimTime,
    /// Which run exposed it: 1 = first run (preparation for Waffle,
    /// detection run for online tools).
    pub exposed_in_run: u32,
    /// Total runs used including the preparation run, when one exists.
    pub total_runs: u32,
    /// Delays injected in the exposing run.
    pub delays_in_run: u64,
    /// Names of the sites delayed in the exposing run (deduplicated).
    pub delayed_sites: Vec<String>,
    /// Every thread's recent-access context at the manifestation (the §5
    /// "stack traces for all threads").
    pub thread_contexts: Vec<ThreadContext>,
    /// Memory model the detection runs simulated. Provenance: a `tso`/
    /// `pso` report is only reproducible under that model. Omitted from
    /// JSON under `Sc` so pre-weak-memory reports keep their bytes.
    pub memory_model: MemoryModel,
}

// Hand-written (de)serialization: the vendored `serde_derive` has no
// `#[serde(...)]` helper attributes, and `memory_model` must be absent
// from `Sc` reports (byte-identity with historical report files) yet
// default to `Sc` when reading such a report back.
impl Serialize for BugReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            (String::from("workload"), self.workload.to_value()),
            (String::from("kind"), self.kind.to_value()),
            (String::from("site"), self.site.to_value()),
            (String::from("obj"), self.obj.to_value()),
            (String::from("time"), self.time.to_value()),
            (String::from("exposed_in_run"), self.exposed_in_run.to_value()),
            (String::from("total_runs"), self.total_runs.to_value()),
            (String::from("delays_in_run"), self.delays_in_run.to_value()),
            (String::from("delayed_sites"), self.delayed_sites.to_value()),
            (
                String::from("thread_contexts"),
                self.thread_contexts.to_value(),
            ),
        ];
        if !self.memory_model.is_sc() {
            fields.push((String::from("memory_model"), self.memory_model.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for BugReport {
    fn from_value(v: &Value) -> Result<Self, serde::value::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::value::Error::expected("map", v))?;
        fn req<T: Deserialize>(
            m: &[(String, Value)],
            name: &'static str,
        ) -> Result<T, serde::value::Error> {
            match serde::value::get(m, name) {
                Some(x) => T::from_value(x),
                None => Deserialize::missing_field(name),
            }
        }
        Ok(BugReport {
            workload: req(m, "workload")?,
            kind: req(m, "kind")?,
            site: req(m, "site")?,
            obj: req(m, "obj")?,
            time: req(m, "time")?,
            exposed_in_run: req(m, "exposed_in_run")?,
            total_runs: req(m, "total_runs")?,
            delays_in_run: req(m, "delays_in_run")?,
            delayed_sites: req(m, "delayed_sites")?,
            thread_contexts: req(m, "thread_contexts")?,
            memory_model: match serde::value::get(m, "memory_model") {
                Some(x) => MemoryModel::from_value(x)?,
                None => MemoryModel::Sc,
            },
        })
    }
}

impl BugReport {
    /// Renders the report as a human-readable multi-line block (what the
    /// real tool writes to its bug-report file).
    pub fn render(&self, sites: &waffle_mem::SiteRegistry) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "MemOrder bug: {} at {}", self.kind.label(), self.site);
        if !self.memory_model.is_sc() {
            let _ = writeln!(out, "  memory model: {}", self.memory_model);
        }
        let _ = writeln!(
            out,
            "  workload {} | object {} | time {} | run {}/{}",
            self.workload, self.obj, self.time, self.exposed_in_run, self.total_runs
        );
        let _ = writeln!(
            out,
            "  {} delays in the exposing run at: {}",
            self.delays_in_run,
            self.delayed_sites.join(", ")
        );
        for ctx in &self.thread_contexts {
            let _ = writeln!(
                out,
                "  {} [{}]{}:",
                ctx.thread,
                ctx.script,
                if ctx.faulting { " <- faulted" } else { "" }
            );
            for op in &ctx.recent {
                let _ = writeln!(
                    out,
                    "    {} {} {} @ {}",
                    op.kind,
                    sites.name(op.site),
                    op.obj,
                    op.time
                );
            }
        }
        out
    }
}

/// A thread-safety violation exposed by the TSVD baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TsvReport {
    /// Workload (test input) that exposed the violation.
    pub workload: String,
    /// The earlier call's site name.
    pub first_site: String,
    /// The later (overlapping) call's site name.
    pub second_site: String,
    /// The shared object.
    pub obj: ObjectId,
    /// Virtual time of the overlap.
    pub time: SimTime,
    /// Run in which the overlap was forced.
    pub exposed_in_run: u32,
}

/// One run's summary statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunSummary {
    /// End-to-end virtual time.
    pub time: SimTime,
    /// Delays injected.
    pub delays: u64,
    /// Cumulative injected delay.
    pub delay_total: SimTime,
    /// The §3.3 delay-overlap ratio.
    pub overlap_ratio: f64,
    /// Whether the run hit the deadline.
    pub timed_out: bool,
    /// Whether an unhandled NULL-reference exception occurred.
    pub manifested: bool,
    /// Instrumented accesses executed.
    pub instrumented_ops: u64,
}

impl RunSummary {
    /// Builds a summary from a raw run result.
    pub fn from_run(r: &RunResult) -> Self {
        Self {
            time: r.end_time,
            delays: r.delays.len() as u64,
            delay_total: r.total_delay(),
            overlap_ratio: r.delay_overlap_ratio(),
            timed_out: r.timed_out,
            manifested: r.manifested(),
            instrumented_ops: r.instrumented_ops,
        }
    }
}

/// The outcome of one full detection attempt on one workload.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// Workload name.
    pub workload: String,
    /// Uninstrumented ("base") end-to-end time of the input.
    pub base_time: SimTime,
    /// The preparation run, when the tool uses one.
    pub prep: Option<RunSummary>,
    /// Every detection run performed, in order.
    pub detection_runs: Vec<RunSummary>,
    /// The bug report, when a bug was exposed.
    pub exposed: Option<BugReport>,
    /// A manifestation that occurred with *no* delays injected in the run
    /// (spontaneous — not credited to the tool).
    pub spontaneous: bool,
    /// A thread-safety violation, when the tool is the TSVD baseline.
    pub tsv_exposed: Option<TsvReport>,
    /// Per-detection-run telemetry journals, parallel to
    /// `detection_runs` (empty for tools that are not telemetry-wired).
    pub telemetry: Vec<RunJournal>,
}

impl DetectionOutcome {
    /// Total runs used (preparation + detection).
    pub fn total_runs(&self) -> u32 {
        self.prep.iter().len() as u32 + self.detection_runs.len() as u32
    }

    /// End-to-end slowdown versus running the input once without
    /// instrumentation (the Table 4 metric): total time across all runs,
    /// divided by the base time.
    pub fn slowdown(&self) -> f64 {
        if self.base_time == SimTime::ZERO {
            return 0.0;
        }
        let total: SimTime = self
            .prep
            .iter()
            .map(|r| r.time)
            .chain(self.detection_runs.iter().map(|r| r.time))
            .sum();
        total.as_us() as f64 / self.base_time.as_us() as f64
    }

    /// Cumulative delays injected across all detection runs.
    pub fn total_delays(&self) -> u64 {
        self.detection_runs.iter().map(|r| r.delays).sum()
    }

    /// Cumulative injected delay duration across all detection runs.
    pub fn total_delay_duration(&self) -> SimTime {
        self.detection_runs.iter().map(|r| r.delay_total).sum()
    }

    /// Whether any detection run timed out.
    pub fn any_timeout(&self) -> bool {
        self.detection_runs.iter().any(|r| r.timed_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(time_us: u64, delays: u64) -> RunSummary {
        RunSummary {
            time: SimTime::from_us(time_us),
            delays,
            delay_total: SimTime::from_us(delays * 100),
            ..RunSummary::default()
        }
    }

    #[test]
    fn slowdown_is_total_over_base() {
        let o = DetectionOutcome {
            workload: "w".into(),
            base_time: SimTime::from_us(1_000),
            prep: Some(run(1_100, 0)),
            detection_runs: vec![run(1_400, 3)],
            ..DetectionOutcome::default()
        };
        assert!((o.slowdown() - 2.5).abs() < 1e-9);
        assert_eq!(o.total_runs(), 2);
        assert_eq!(o.total_delays(), 3);
        assert_eq!(o.total_delay_duration(), SimTime::from_us(300));
    }

    #[test]
    fn slowdown_handles_zero_base() {
        let o = DetectionOutcome::default();
        assert_eq!(o.slowdown(), 0.0);
        assert_eq!(o.total_runs(), 0);
    }

    fn report(model: MemoryModel) -> BugReport {
        BugReport {
            workload: "w".into(),
            kind: NullRefKind::UseAfterFree,
            site: "X.use:1".into(),
            obj: ObjectId(0),
            time: SimTime::from_us(5),
            exposed_in_run: 2,
            total_runs: 2,
            delays_in_run: 1,
            delayed_sites: vec!["X.use:1".into()],
            thread_contexts: vec![],
            memory_model: model,
        }
    }

    /// The rendered report names the memory model for weak-memory runs —
    /// without it a `tso` exposure is indistinguishable from an `sc` one
    /// in text output — while `Sc` renders and JSON bytes are unchanged
    /// from the pre-weak-memory layout.
    #[test]
    fn weak_memory_reports_render_their_model_and_sc_stays_byte_stable() {
        let sites = waffle_mem::SiteRegistry::default();
        let sc = report(MemoryModel::Sc);
        let tso = report(MemoryModel::Tso);
        let sc_text = sc.render(&sites);
        let tso_text = tso.render(&sites);
        assert!(sc_text.starts_with("MemOrder bug: use-after-free at X.use:1"));
        assert!(tso_text.starts_with("MemOrder bug: use-after-free at X.use:1"));
        assert!(!sc_text.contains("memory model"));
        assert!(tso_text.contains("memory model: tso"));

        let sc_json = serde_json::to_string(&sc).unwrap();
        assert!(!sc_json.contains("memory_model"), "{sc_json}");
        let tso_json = serde_json::to_string(&tso).unwrap();
        assert!(tso_json.contains("\"memory_model\""), "{tso_json}");
        // Round-trips, and a legacy report with no field reads back as Sc.
        let back: BugReport = serde_json::from_str(&tso_json).unwrap();
        assert_eq!(back.memory_model, MemoryModel::Tso);
        let legacy: BugReport = serde_json::from_str(&sc_json).unwrap();
        assert_eq!(legacy.memory_model, MemoryModel::Sc);
    }
}
