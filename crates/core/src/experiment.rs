//! The paper's repetition methodology (§6.1): each experiment runs 15
//! times; a bug is reported as "detected in k runs" when that holds in a
//! majority (≥10/15) of the attempts; otherwise the median is reported.

use serde::{Deserialize, Serialize};
use waffle_sim::Workload;
use waffle_telemetry::TelemetrySummary;

use crate::detector::Detector;
use crate::report::DetectionOutcome;

/// Aggregated result of repeated detection attempts on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSummary {
    /// Workload name.
    pub workload: String,
    /// Tool name.
    pub tool: String,
    /// Attempts performed.
    pub attempts: u32,
    /// Attempts in which the bug was exposed.
    pub exposed_attempts: u32,
    /// Attempts in which a thread-safety violation was exposed instead of
    /// a MemOrder bug (only the TSVD baseline reports these).
    pub tsv_attempts: u32,
    /// Runs-to-exposure when a strict majority of attempts agree on the
    /// same count (the paper's reporting rule); otherwise `None`.
    pub majority_runs: Option<u32>,
    /// Median runs-to-exposure across successful attempts.
    pub median_runs: Option<u32>,
    /// Median end-to-end slowdown across successful attempts.
    pub median_slowdown: Option<f64>,
    /// Whether any attempt saw a timed-out run.
    pub any_timeout: bool,
    /// Telemetry aggregated across every detection run of every attempt,
    /// folded in attempt order (deterministic at any worker count).
    pub telemetry: TelemetrySummary,
}

impl ExperimentSummary {
    /// Whether the tool is credited with detecting the bug: exposed in a
    /// majority of attempts.
    pub fn detected(&self) -> bool {
        self.exposed_attempts * 2 > self.attempts
    }

    /// The runs-to-exposure figure the paper reports: the majority count
    /// when one exists, the median otherwise.
    pub fn reported_runs(&self) -> Option<u32> {
        self.majority_runs.or(self.median_runs)
    }
}

fn median<T: Copy + Ord>(values: &mut [T]) -> Option<T> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    Some(values[values.len() / 2])
}

/// Runs `attempts` independent detection attempts (distinct seeds) and
/// summarizes them per §6.1. Seeds come from the same
/// [`attempt_seed`](crate::engine::attempt_seed) ladder as the parallel
/// engine and the campaign runner, so all three paths are interchangeable.
pub fn run_experiment(
    detector: &Detector,
    workload: &Workload,
    attempts: u32,
) -> ExperimentSummary {
    let outcomes: Vec<DetectionOutcome> = (0..attempts)
        .map(|a| detector.detect(workload, crate::engine::attempt_seed(a)))
        .collect();
    summarize(detector, workload, &outcomes)
}

/// Summarizes already-computed outcomes (used when callers also need the
/// raw outcomes, e.g. for the overhead tables).
pub fn summarize(
    detector: &Detector,
    workload: &Workload,
    outcomes: &[DetectionOutcome],
) -> ExperimentSummary {
    let mut runs: Vec<u32> = outcomes
        .iter()
        .filter_map(|o| o.exposed.as_ref().map(|b| b.total_runs))
        .collect();
    // Round to the nearest millislowdown: truncation would report a
    // 1.9996× attempt as 1.999× and bias the median low.
    let mut slowdowns_milli: Vec<u64> = outcomes
        .iter()
        .filter(|o| o.exposed.is_some())
        .map(|o| (o.slowdown() * 1000.0).round() as u64)
        .collect();
    let exposed_attempts = runs.len() as u32;
    // Majority rule: at least ⌈2/3⌉ of attempts (10 of 15) agree.
    let majority_runs = {
        let mut counts = std::collections::HashMap::new();
        for r in &runs {
            *counts.entry(*r).or_insert(0u32) += 1;
        }
        counts
            .into_iter()
            .find(|(_, c)| *c * 3 >= outcomes.len() as u32 * 2)
            .map(|(r, _)| r)
    };
    // Fold journals in outcome (= attempt) order, runs in run order: the
    // same order at any `--jobs`, so aggregation is bit-identical.
    let mut telemetry = TelemetrySummary::default();
    for o in outcomes {
        for j in &o.telemetry {
            telemetry.absorb_run(j);
        }
    }
    ExperimentSummary {
        workload: workload.name.clone(),
        tool: detector.tool().name().to_owned(),
        attempts: outcomes.len() as u32,
        exposed_attempts,
        tsv_attempts: outcomes.iter().filter(|o| o.tsv_exposed.is_some()).count() as u32,
        majority_runs,
        median_runs: median(&mut runs),
        median_slowdown: median(&mut slowdowns_milli).map(|m| m as f64 / 1000.0),
        any_timeout: outcomes.iter().any(|o| o.any_timeout()),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Tool;
    use waffle_sim::{SimTime, WorkloadBuilder};

    fn racy() -> Workload {
        let mut b = WorkloadBuilder::new("exp.racy");
        let o = b.object("o");
        let started = b.event("s");
        let worker = b.script("worker", move |s| {
            s.wait(started)
                .compute(SimTime::from_us(150))
                .use_(o, "W.use:1", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(10))
                .fork(worker)
                .signal(started)
                .compute(SimTime::from_us(700))
                .dispose(o, "M.dispose:9", SimTime::from_us(10))
                .join_children();
        });
        b.main(main);
        b.build()
    }

    #[test]
    fn fifteen_attempts_agree_on_two_runs() {
        let det = Detector::new(Tool::waffle());
        let summary = run_experiment(&det, &racy(), 15);
        assert!(summary.detected());
        assert_eq!(summary.exposed_attempts, 15);
        assert_eq!(summary.majority_runs, Some(2));
        assert_eq!(summary.reported_runs(), Some(2));
        assert!(summary.median_slowdown.unwrap() > 1.0);
    }

    #[test]
    fn clean_workload_is_never_detected() {
        let mut b = WorkloadBuilder::new("exp.clean");
        let o = b.object("o");
        let main = b.script("main", move |s| {
            s.init(o, "i", SimTime::from_us(5))
                .use_(o, "u", SimTime::from_us(5))
                .dispose(o, "d", SimTime::from_us(5));
        });
        b.main(main);
        let w = b.build();
        let det = Detector::with_config(
            Tool::waffle(),
            crate::detector::DetectorConfig {
                max_detection_runs: 3,
                ..Default::default()
            },
        );
        let summary = run_experiment(&det, &w, 5);
        assert!(!summary.detected());
        assert_eq!(summary.exposed_attempts, 0);
        assert_eq!(summary.reported_runs(), None);
    }

    #[test]
    fn median_helper_handles_odd_and_even() {
        assert_eq!(median(&mut [3, 1, 2]), Some(2));
        assert_eq!(median(&mut [4, 1, 2, 3]), Some(3));
        assert_eq!(median::<u32>(&mut []), None);
    }

    /// Regression: the median slowdown is rounded to the nearest
    /// millislowdown, not floored. A 1.9996× attempt must report as
    /// 2.000, not 1.999.
    #[test]
    fn median_slowdown_rounds_to_nearest_millislowdown() {
        use crate::report::{BugReport, RunSummary};
        let base_us = 10_000u64;
        // total/base = 19_996/10_000 = 1.9996.
        let outcome = DetectionOutcome {
            workload: "round".into(),
            base_time: SimTime::from_us(base_us),
            detection_runs: vec![RunSummary {
                time: SimTime::from_us(19_996),
                ..RunSummary::default()
            }],
            exposed: Some(BugReport {
                workload: "round".into(),
                kind: waffle_mem::NullRefKind::UseAfterFree,
                site: "X".into(),
                obj: waffle_mem::ObjectId(0),
                time: SimTime::from_us(1),
                exposed_in_run: 1,
                total_runs: 1,
                delays_in_run: 1,
                delayed_sites: vec!["X".into()],
                thread_contexts: vec![],
                memory_model: waffle_sim::MemoryModel::Sc,
            }),
            ..DetectionOutcome::default()
        };
        assert!((outcome.slowdown() - 1.9996).abs() < 1e-9);
        let det = Detector::new(Tool::waffle());
        let summary = summarize(&det, &racy(), &[outcome]);
        assert_eq!(summary.median_slowdown, Some(2.0));
    }
}
